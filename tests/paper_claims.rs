//! The paper's qualitative claims, checked end to end on the calibrated
//! benchmark workloads (scaled down for test speed). These are the
//! "shape" assertions of the reproduction: who wins, where, and why.

use ringsim::analytic::{BusModel, ModelInput, RingModel};
use ringsim::bus::BusConfig;
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{characterize, Benchmark};
use ringsim::types::Time;

const REFS: u64 = 12_000;

fn input_for(bench: Benchmark, procs: usize) -> ModelInput {
    let ch = characterize(&bench.spec(procs).unwrap().with_refs(REFS)).unwrap();
    ModelInput::from_characteristics(&ch)
}

/// §4.2 / §6: "the snooping strategy outperforms the directory-based
/// strategy for nearly all system configurations analyzed" — in particular
/// for MP3D at every size.
#[test]
fn snooping_beats_directory_on_mp3d() {
    for procs in [8usize, 16, 32] {
        let input = input_for(Benchmark::Mp3d, procs);
        let ring = RingConfig::standard_500mhz(procs);
        for ns in [5u64, 10, 20] {
            let s =
                RingModel::new(ring, ProtocolKind::Snooping).evaluate(&input, Time::from_ns(ns));
            let d =
                RingModel::new(ring, ProtocolKind::Directory).evaluate(&input, Time::from_ns(ns));
            assert!(
                s.proc_util > d.proc_util,
                "mp3d.{procs} at {ns} ns: snooping {} <= directory {}",
                s.proc_util,
                d.proc_util
            );
        }
    }
}

/// §4.2: "ring utilization levels are always higher for snooping".
#[test]
fn snooping_always_loads_the_ring_more() {
    for (bench, procs) in [(Benchmark::Mp3d, 16), (Benchmark::Water, 16), (Benchmark::Cholesky, 16)]
    {
        let input = input_for(bench, procs);
        let ring = RingConfig::standard_500mhz(procs);
        let s = RingModel::new(ring, ProtocolKind::Snooping).evaluate(&input, Time::from_ns(10));
        let d = RingModel::new(ring, ProtocolKind::Directory).evaluate(&input, Time::from_ns(10));
        assert!(s.net_util > d.net_util, "{bench:?}.{procs}");
    }
}

/// §4.2: "For WATER, the high hit ratio hides most differences between the
/// snooping and directory-based protocols in terms of processor ...
/// utilizations."
#[test]
fn water_hides_protocol_differences() {
    let gap = |bench| {
        let input = input_for(bench, 8);
        let ring = RingConfig::standard_500mhz(8);
        let s = RingModel::new(ring, ProtocolKind::Snooping).evaluate(&input, Time::from_ns(10));
        let d = RingModel::new(ring, ProtocolKind::Directory).evaluate(&input, Time::from_ns(10));
        (s.proc_util - d.proc_util, s.proc_util)
    };
    let (water_gap, water_util) = gap(Benchmark::Water);
    let (mp3d_gap, _) = gap(Benchmark::Mp3d);
    assert!(water_gap.abs() < 0.08, "water.8 gap too large: {water_gap}");
    assert!(
        water_gap.abs() < mp3d_gap.abs() / 1.5,
        "water gap {water_gap} not much smaller than mp3d gap {mp3d_gap}"
    );
    assert!(water_util > 0.85, "water runs near full speed: {water_util}");
}

/// §4.1 / Figure 5: the fraction of 1-cycle clean misses increases with
/// system size for the SPLASH benchmarks (random page placement: more
/// remote homes).
#[test]
fn one_cycle_clean_fraction_grows_with_system_size() {
    for bench in [Benchmark::Mp3d, Benchmark::Cholesky] {
        let frac = |procs: usize| {
            let ch = characterize(&bench.spec(procs).unwrap().with_refs(REFS)).unwrap();
            let e = ch.events;
            e.fig5_one_cycle_clean() as f64 / e.remote_misses().max(1) as f64
        };
        let f8 = frac(8);
        let f32 = frac(32);
        assert!(f32 > f8, "{bench:?}: clean frac did not grow: {f8} -> {f32}");
    }
}

/// §4.3 / Figure 6: for MP3D-16 the buses saturate with fast processors
/// while the ring stays under 50% utilisation.
#[test]
fn buses_saturate_on_mp3d16_while_ring_does_not() {
    let input = input_for(Benchmark::Mp3d, 16);
    let fast = Time::from_ns(2); // 500 MIPS
    let ring = RingModel::new(RingConfig::standard_500mhz(16), ProtocolKind::Snooping)
        .evaluate(&input, fast);
    let bus50 = BusModel::new(BusConfig::bus_50mhz(16)).evaluate(&input, fast);
    let bus100 = BusModel::new(BusConfig::bus_100mhz(16)).evaluate(&input, fast);
    assert!(ring.net_util < 0.55, "ring util {}", ring.net_util);
    assert!(bus50.net_util > 0.9, "50 MHz bus util {}", bus50.net_util);
    assert!(bus100.net_util > 0.85, "100 MHz bus util {}", bus100.net_util);
    assert!(ring.proc_util > bus50.proc_util);
    assert!(ring.proc_util > bus100.proc_util);
}

/// §4.3: for WATER (light interconnect load) the bus's shorter pure latency
/// lets it match or beat the ring at slow processor speeds.
#[test]
fn bus_competitive_on_water_with_slow_processors() {
    let input = input_for(Benchmark::Water, 8);
    let slow = Time::from_ns(20); // 50 MIPS
    let ring = RingModel::new(RingConfig::standard_250mhz(8), ProtocolKind::Snooping)
        .evaluate(&input, slow);
    let bus = BusModel::new(BusConfig::bus_100mhz(8)).evaluate(&input, slow);
    assert!(
        bus.proc_util > ring.proc_util - 0.02,
        "bus {} much worse than ring {}",
        bus.proc_util,
        ring.proc_util
    );
}

/// §6: "there is latency to be tolerated despite the fact that the network
/// is often underutilized" — at 100 MIPS the ring's latency is dominated by
/// pure delay, not contention.
#[test]
fn ring_latency_is_pure_delay_not_contention() {
    let input = input_for(Benchmark::Cholesky, 16);
    let m = RingModel::new(RingConfig::standard_500mhz(16), ProtocolKind::Snooping);
    let loaded = m.evaluate(&input, Time::from_ns(10));
    // Contention-free latency: evaluate a nearly idle system (100x slower
    // processors) — the latency barely changes.
    let idle = m.evaluate(&input, Time::from_ns(1000).max(Time::from_ns(20)));
    let contention_part = (loaded.miss_latency_ns - idle.miss_latency_ns) / loaded.miss_latency_ns;
    assert!(
        contention_part < 0.25,
        "contention dominates: loaded {} vs idle {}",
        loaded.miss_latency_ns,
        idle.miss_latency_ns
    );
    assert!(loaded.net_util < 0.5);
}

/// Figure 5 shape: MP3D and FFT have large dirty/2-cycle populations;
/// WEATHER and SIMPLE have tiny ones.
#[test]
fn fig5_dirty_population_shapes() {
    let dirty_frac = |bench: Benchmark, procs: usize| {
        let ch = characterize(&bench.spec(procs).unwrap().with_refs(REFS)).unwrap();
        let e = ch.events;
        (e.fig5_one_cycle_dirty() + e.fig5_two_cycle()) as f64 / e.remote_misses().max(1) as f64
    };
    assert!(dirty_frac(Benchmark::Mp3d, 16) > 0.4);
    assert!(dirty_frac(Benchmark::Fft, 64) > 0.4);
    assert!(dirty_frac(Benchmark::Weather, 64) < 0.15);
    assert!(dirty_frac(Benchmark::Simple, 64) < 0.15);
}

/// Table 4's headline: every bus that matches a ring configuration's
/// performance runs at far higher utilisation than the ring it matches.
#[test]
fn matched_buses_run_hotter_than_rings() {
    use ringsim::analytic::match_bus_clock;
    for (bench, procs) in [(Benchmark::Mp3d, 16), (Benchmark::Cholesky, 16)] {
        let input = input_for(bench, procs);
        for mips in [100u64, 400] {
            let m = match_bus_clock(
                &input,
                RingConfig::standard_500mhz(procs),
                ProtocolKind::Snooping,
                Time::from_ps(1_000_000 / mips),
            );
            assert!(
                m.bus_net_util > m.ring_net_util,
                "{bench:?}.{procs} at {mips} MIPS: bus {} <= ring {}",
                m.bus_net_util,
                m.ring_net_util
            );
            assert!((m.bus_proc_util - m.ring_proc_util).abs() < 0.01, "match quality degraded");
        }
    }
}

/// §2/§4.2: the snooping ring is a UMA interconnect — the modelled miss
/// latency is the same whether the dirty node is fortunately or
/// unfortunately placed (it only matters for the directory).
#[test]
fn snooping_latency_is_position_independent() {
    use ringsim::analytic::ClassFreqs;
    let mk = |fortunate: bool| {
        let freqs = if fortunate {
            ClassFreqs { read_dirty_1: 0.02, ..ClassFreqs::default() }
        } else {
            ClassFreqs { read_dirty_2: 0.02, ..ClassFreqs::default() }
        };
        let input = ModelInput { procs: 16, instr_per_data: 2.0, freqs };
        let ring = RingConfig::standard_500mhz(16);
        let s = RingModel::new(ring, ProtocolKind::Snooping)
            .evaluate(&input, Time::from_ns(10))
            .miss_latency_ns;
        let d = RingModel::new(ring, ProtocolKind::Directory)
            .evaluate(&input, Time::from_ns(10))
            .miss_latency_ns;
        (s, d)
    };
    let (snoop_fort, dir_fort) = mk(true);
    let (snoop_unfort, dir_unfort) = mk(false);
    assert!(
        (snoop_fort - snoop_unfort).abs() < 1e-9,
        "snooping must not care about placement: {snoop_fort} vs {snoop_unfort}"
    );
    assert!(
        dir_unfort > dir_fort + 50.0,
        "directory must pay for unfortunate placement: {dir_fort} vs {dir_unfort}"
    );
}

/// §6 latency tolerance: write tolerance helps the ring much more than the
/// saturated bus, and the bus pays a much larger read-latency penalty.
#[test]
fn write_tolerance_is_self_defeating_on_saturated_bus() {
    let input = input_for(Benchmark::Mp3d, 16);
    let fast = Time::from_ns(5);
    let ring = RingModel::new(RingConfig::standard_500mhz(16), ProtocolKind::Snooping);
    let ring_gain = ring.with_write_tolerance(true).evaluate(&input, fast).proc_util
        - ring.evaluate(&input, fast).proc_util;
    let bus = BusModel::new(BusConfig::bus_50mhz(16));
    let bus_base = bus.evaluate(&input, fast);
    let bus_tol = bus.with_write_tolerance(true).evaluate(&input, fast);
    let bus_gain = bus_tol.proc_util - bus_base.proc_util;
    assert!(
        ring_gain > 4.0 * bus_gain.max(0.0) || bus_gain <= 0.0,
        "ring gain {ring_gain} should dwarf bus gain {bus_gain}"
    );
    let bus_penalty = bus_tol.miss_latency_ns / bus_base.miss_latency_ns;
    assert!(bus_penalty > 1.2, "saturated bus read latency should inflate: {bus_penalty}");
}
