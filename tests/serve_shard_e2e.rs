//! End-to-end test of the multi-process sweep coordinator: a service
//! configured with `--shards 4` spawns real `ringsim serve-worker`
//! processes (the actual CLI binary, via `CARGO_BIN_EXE_ringsim`), and the
//! folded artifacts are byte-identical to a direct in-process run — the
//! cache-as-merge-substrate contract, one level above `--jobs` invariance.
//!
//! The same run also locks the SSE surface over real sockets: the event
//! stream replays monotonically non-decreasing progress and ends with a
//! terminal `done` event that matches `GET /runs/:id`, and `POST
//! /runs/:id/pin` drops the retention marker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ringsim::serve::{ServeConfig, Server};
use ringsim::sweep::{run_experiment, SweepConfig};
use ringsim_bench::experiments;
use serde::Value;

const REFS: u64 = 2_000;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ringsim-shard-e2e-{tag}-{}", std::process::id()))
}

/// One raw HTTP/1.1 request; reads to EOF (the server always closes).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body separator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("ASCII headers");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line");
    (status, raw[header_end + 4..].to_vec())
}

fn json(body: &[u8]) -> Value {
    serde_json::parse_value(std::str::from_utf8(body).expect("UTF-8 body")).expect("valid JSON")
}

fn str_of<'v>(v: &'v Value, key: &str) -> &'v str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("expected string `{key}`, got {other:?}"),
    }
}

fn u64_of(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("expected integer `{key}`, got {other:?}"),
    }
}

fn wait_done(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http(addr, "GET", &format!("/runs/{id}"), "");
        assert_eq!(status, 200, "poll failed: {}", String::from_utf8_lossy(&body));
        let v = json(&body);
        match str_of(&v, "state") {
            "done" => return v,
            "failed" => panic!("job failed: {v:?}"),
            _ => assert!(Instant::now() < deadline, "job did not finish: {v:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Reads the full SSE stream of a run (the server closes it after the
/// terminal event) and returns the decoded `(event, data)` frames.
fn read_stream(addr: &str, id: &str) -> Vec<(String, String)> {
    let mut stream = TcpStream::connect(addr).expect("connect stream");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let req = format!(
        "GET /runs/{id}/events HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n"
    );
    stream.write_all(req.as_bytes()).expect("send stream request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read stream to close");
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("stream headers");
    assert!(head.starts_with("HTTP/1.1 200"), "stream status: {head}");
    assert!(
        head.to_ascii_lowercase().contains("content-type: text/event-stream"),
        "stream content type: {head}"
    );
    assert!(
        head.to_ascii_lowercase().contains("transfer-encoding: chunked"),
        "stream must be chunked: {head}"
    );
    // Undo chunked framing, then split SSE frames on blank lines.
    let mut decoded = String::new();
    let mut rest = body;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size");
        if size == 0 {
            break;
        }
        decoded.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or("");
    }
    decoded
        .split("\n\n")
        .filter(|frame| !frame.trim().is_empty() && !frame.starts_with(':'))
        .map(|frame| {
            let mut event = String::new();
            let mut data = String::new();
            for line in frame.lines() {
                if let Some(v) = line.strip_prefix("event: ") {
                    event = v.to_owned();
                } else if let Some(v) = line.strip_prefix("data: ") {
                    data = v.to_owned();
                }
            }
            (event, data)
        })
        .collect()
}

#[test]
fn four_shard_workers_fold_to_byte_identical_artifacts() {
    // Reference: a direct, serial, in-process run of the same submission.
    let ref_dir = tmp("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let exp = experiments::find("fig3").expect("fig3 registered");
    let report = run_experiment(exp, &SweepConfig::new(REFS).jobs(1).out_dir(&ref_dir));
    assert!(!report.artifacts.is_empty());

    // Service under test: every run fans out across 4 worker processes of
    // the real CLI binary.
    let out_dir = tmp("service");
    let _ = std::fs::remove_dir_all(&out_dir);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        out_dir: out_dir.clone(),
        workers: 1,
        queue_cap: 4,
        sweep_jobs: 2,
        default_refs: REFS,
        shards: 4,
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_ringsim"))),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let submission = format!("{{\"experiment\": \"fig3\", \"refs\": {REFS}}}");
    let (status, body) = http(&addr, "POST", "/runs", &submission);
    assert_eq!(status, 202, "submit: {}", String::from_utf8_lossy(&body));
    let id = str_of(&json(&body), "id").to_owned();

    let status_doc = wait_done(&addr, &id);
    let points = status_doc.get("points").expect("points progress");
    let total = u64_of(points, "total");
    assert!(total > 0);
    assert_eq!(total, u64_of(points, "completed"), "sharded progress must sum to the sweep size");
    // Cold sharded run: each point is computed exactly once across the
    // workers (misses == total, no duplicated compute), and nothing was
    // pre-warmed. The fold's own cache hits are bookkeeping, not work, and
    // are deliberately not counted.
    let cache = status_doc.get("cache").expect("cache counts");
    assert_eq!(u64_of(cache, "misses"), total, "duplicated compute: {status_doc:?}");
    assert_eq!(u64_of(cache, "hits"), 0, "cold run must not report hits: {status_doc:?}");

    // The shard scratch directories are cleaned up after the fold.
    assert!(
        !out_dir.join("runs").join(&id).join("shards").exists(),
        "shard scratch dirs must be removed after a successful fold"
    );

    // Byte-identity against the direct run, through the artifact route.
    for artifact in &report.artifacts {
        let file = artifact.path.file_name().unwrap().to_string_lossy().into_owned();
        let (status, served) = http(&addr, "GET", &format!("/runs/{id}/artifacts/{file}"), "");
        assert_eq!(status, 200, "artifact {file}");
        let direct = std::fs::read(&artifact.path).expect("reference artifact");
        assert_eq!(served, direct, "artifact {file} differs between sharded and direct runs");
    }

    // The SSE stream (late subscriber: the run is already done) replays the
    // whole history — monotone progress, then a terminal event that agrees
    // with the status document.
    let frames = read_stream(&addr, &id);
    assert!(frames.len() >= 2, "stream too short: {frames:?}");
    let mut last_completed = 0;
    let mut progress_events = 0;
    for (event, data) in &frames[..frames.len() - 1] {
        assert_ne!(event.as_str(), "done", "terminal event must be last");
        if event == "progress" {
            let v = serde_json::parse_value(data).expect("progress data is JSON");
            let completed = u64_of(&v, "completed");
            assert!(
                completed > last_completed,
                "progress must be strictly increasing: {completed} after {last_completed}"
            );
            last_completed = completed;
            progress_events += 1;
        }
    }
    assert_eq!(progress_events, total, "one progress event per point");
    let (last_event, last_data) = frames.last().unwrap();
    assert_eq!(last_event.as_str(), "done");
    let terminal = serde_json::parse_value(last_data).expect("terminal data is JSON");
    assert_eq!(u64_of(&terminal, "points"), total);
    assert_eq!(u64_of(&terminal, "hits"), u64_of(cache, "hits"));
    assert_eq!(u64_of(&terminal, "misses"), u64_of(cache, "misses"));

    // Pinning drops the retention marker.
    let (status, body) = http(&addr, "POST", &format!("/runs/{id}/pin"), "");
    assert_eq!(status, 200, "pin: {}", String::from_utf8_lossy(&body));
    assert!(out_dir.join("runs").join(&id).join(".pinned").is_file());

    // /metrics advertises the worker-pool shape and the (idle) GC counters.
    let (status, body) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = json(&body);
    let pool = metrics.get("pool").expect("pool stats");
    assert_eq!(u64_of(pool, "shards"), 4);
    assert_eq!(u64_of(pool, "workers"), 1);
    let gc = metrics.get("gc").expect("gc stats");
    assert_eq!(u64_of(gc, "deleted_runs"), 0);

    server.join();
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&out_dir);
}
