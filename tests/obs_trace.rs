//! End-to-end checks of the observability recorder against reported
//! metrics: the trace must *explain* the numbers in the report, and
//! attaching telemetry must not change any simulation result.

use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::obs::{json, ObsConfig, Recorder};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{Workload, WorkloadSpec};

fn workload(procs: usize, refs: u64) -> Workload {
    Workload::new(WorkloadSpec::demo(procs).with_refs(refs)).unwrap()
}

fn big_trace() -> ObsConfig {
    ObsConfig { trace_capacity: 1 << 22, ..Default::default() }
}

/// Acceptance check: every measured miss appears as one top-level `"miss"`
/// span, and the spans' durations sum (within floating-point rounding) to
/// the run's reported total miss latency.
fn assert_spans_explain_report(rec: &Recorder, report: &ringsim::core::SimReport) {
    assert_eq!(rec.trace.dropped(), 0, "trace buffer overflowed");
    let miss_spans: Vec<_> =
        rec.trace.events().filter(|e| e.cat == "txn" && e.name == "miss").collect();
    assert_eq!(miss_spans.len() as u64, report.miss_latency.count());
    let span_sum_ns: f64 = miss_spans.iter().map(|e| e.dur_ps as f64 / 1000.0).sum();
    let reported_ns = report.miss_latency.mean() * report.miss_latency.count() as f64;
    let rel = (span_sum_ns - reported_ns).abs() / reported_ns.max(1.0);
    assert!(rel < 1e-6, "miss spans sum to {span_sum_ns} ns, report says {reported_ns} ns");
    let upgrades = rec.trace.events().filter(|e| e.cat == "txn" && e.name == "upgrade").count();
    assert_eq!(upgrades as u64, report.upgrade_latency.count());
    // Phase spans tile each transaction exactly, so they carry the same
    // total time as the top-level spans.
    let phase_sum_ps: u64 = rec.trace.events().filter(|e| e.cat == "phase").map(|e| e.dur_ps).sum();
    let txn_sum_ps: u64 = rec.trace.events().filter(|e| e.cat == "txn").map(|e| e.dur_ps).sum();
    assert_eq!(phase_sum_ps, txn_sum_ps);
}

#[test]
fn ring_trace_spans_sum_to_reported_miss_latency() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4);
    let mut sys = RingSystem::new(cfg, workload(4, 3_000)).unwrap();
    sys.attach_obs(big_trace());
    let report = sys.run();
    let rec = sys.take_obs().unwrap();
    assert_spans_explain_report(&rec, &report);
}

#[test]
fn directory_trace_spans_sum_to_reported_miss_latency() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Directory, 4);
    let mut sys = RingSystem::new(cfg, workload(4, 3_000)).unwrap();
    sys.attach_obs(big_trace());
    let report = sys.run();
    let rec = sys.take_obs().unwrap();
    assert_spans_explain_report(&rec, &report);
}

#[test]
fn bus_trace_spans_sum_to_reported_miss_latency() {
    let cfg = BusSystemConfig::bus_100mhz(4);
    let mut sys = BusSystem::new(cfg, workload(4, 3_000)).unwrap();
    sys.attach_obs(big_trace());
    let report = sys.run();
    let rec = sys.take_obs().unwrap();
    assert_spans_explain_report(&rec, &report);
}

#[test]
fn chrome_trace_has_required_fields() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4);
    let mut sys = RingSystem::new(cfg, workload(4, 1_000)).unwrap();
    sys.attach_obs(big_trace());
    let _ = sys.run();
    let rec = sys.take_obs().unwrap();
    let doc = json::parse(&rec.trace.to_chrome_json()).unwrap();
    let events = doc.get("traceEvents").and_then(json::JsonValue::as_array).unwrap();
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(json::JsonValue::as_str).expect("ph field");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        assert!(ev.get("ts").and_then(json::JsonValue::as_f64).is_some(), "ts field");
        assert!(ev.get("pid").and_then(json::JsonValue::as_u64).is_some(), "pid field");
        if ph == "X" {
            assert!(ev.get("dur").and_then(json::JsonValue::as_f64).is_some(), "dur field");
        }
    }
}

#[test]
fn gauge_timelines_are_sampled() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4);
    let mut sys = RingSystem::new(cfg, workload(4, 2_000)).unwrap();
    sys.attach_obs(ObsConfig::default());
    let _ = sys.run();
    let rec = sys.take_obs().unwrap();
    let ring_tl = rec.timelines.iter().find(|t| t.name == "ring").expect("ring timeline");
    assert!(!ring_tl.rows.is_empty());
    // Occupancy gauges are fractions.
    for row in &ring_tl.rows {
        assert!(row.values[0] >= 0.0 && row.values[0] <= 1.0);
    }
}

#[test]
fn telemetry_does_not_change_results() {
    // The overhead contract's strong form: attaching the recorder must not
    // perturb a single reported number, for every interconnect.
    let plain =
        RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Directory, 4), workload(4, 2_000))
            .unwrap()
            .run();
    let mut traced =
        RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Directory, 4), workload(4, 2_000))
            .unwrap();
    traced.attach_obs(ObsConfig::default());
    let traced_report = traced.run();
    assert_eq!(plain, traced_report);

    let plain = BusSystem::new(BusSystemConfig::bus_100mhz(4), workload(4, 2_000)).unwrap().run();
    let mut traced = BusSystem::new(BusSystemConfig::bus_100mhz(4), workload(4, 2_000)).unwrap();
    traced.attach_obs(ObsConfig::default());
    let traced_report = traced.run();
    assert_eq!(plain, traced_report);
}
