//! Golden tests for the symmetry-reduced model checker.
//!
//! Locks the canonical state counts, orbit-reduction factors, and
//! parallel-determinism guarantees of `ringsim::check`. The counts are
//! golden on purpose: a canonicalization bug has two failure modes —
//! splitting an orbit across representatives (count grows) or merging
//! distinct orbits (count shrinks, silently pruning real states) — and
//! both move these numbers.

use ringsim::check::{explore, CheckConfig, CheckReport, Fault};
use ringsim::proto::ProtocolKind;

fn check(protocol: ProtocolKind, nodes: usize, blocks: usize) -> CheckConfig {
    CheckConfig::new(protocol, nodes, blocks)
}

fn run(cfg: &CheckConfig) -> CheckReport {
    explore(cfg).expect("valid config")
}

/// Canonical state counts for the small exhaustive configurations. The
/// unreduced counts (in comments) are locked by
/// `reduction_factor_vs_unreduced_run` below for the 3-node config.
#[test]
fn golden_canonical_state_counts() {
    // (protocol, nodes, evictions, states, transitions, depth)
    let golden = [
        (ProtocolKind::Snooping, 3, true, 1279, 5244, 15), // unreduced: 2451
        (ProtocolKind::Snooping, 4, true, 7169, 37468, 21), // unreduced: 37993
        (ProtocolKind::Directory, 4, false, 17784, 50714, 32), // unreduced: 103994
    ];
    for (protocol, nodes, evictions, states, transitions, depth) in golden {
        let mut cfg = check(protocol, nodes, 1);
        cfg.evictions = evictions;
        let report = run(&cfg);
        assert!(report.passed(), "{protocol} {nodes}n must be clean");
        assert!(report.complete, "{protocol} {nodes}n must be exhaustive");
        assert_eq!(report.states, states, "{protocol} {nodes}n canonical states");
        assert_eq!(report.transitions, transitions, "{protocol} {nodes}n transitions");
        assert_eq!(report.depth, depth, "{protocol} {nodes}n depth");
    }
}

/// The reduced run stores strictly fewer states than the raw run, by the
/// locked factor, and agrees on every non-count verdict.
#[test]
fn reduction_factor_vs_unreduced_run() {
    let reduced = run(&check(ProtocolKind::Snooping, 3, 1));
    let mut plain_cfg = check(ProtocolKind::Snooping, 3, 1);
    plain_cfg.symmetry = false;
    let plain = run(&plain_cfg);

    assert_eq!(reduced.states, 1279);
    assert_eq!(plain.states, 2451);
    let factor = plain.states as f64 / reduced.states as f64;
    assert!(factor > 1.9, "3n/1b group order is 2; got x{factor:.2}");

    assert_eq!(reduced.passed(), plain.passed());
    assert_eq!(reduced.depth, plain.depth, "shortest-path depth is orbit-invariant");
    assert_eq!(reduced.complete, plain.complete);
    assert_eq!(reduced.livelock_checked, plain.livelock_checked);
}

/// `--stats` reports the group order and a raw-successor count that bounds
/// the observable reduction, and no snooping rule is dead at 4 nodes.
#[test]
fn stats_report_reduction_and_no_dead_rules() {
    let mut cfg = check(ProtocolKind::Snooping, 4, 1);
    cfg.stats = true;
    let report = run(&cfg);
    let stats = report.stats.expect("stats requested");
    assert_eq!(stats.group_order, 6, "4n/1b: 3 free nodes permute");
    assert_eq!(stats.raw_states, 14583, "distinct raw successors of the representatives");
    assert!(stats.reduction(report.states) > 2.0);
    assert!(
        stats.dead_rules(ProtocolKind::Snooping).is_empty(),
        "every snooping rule must fire by 4 nodes: {:?}",
        stats.dead_rules(ProtocolKind::Snooping)
    );
}

/// Reports are byte-identical across worker counts: `--jobs 8` must not
/// reorder state ids, traces, or stats relative to `--jobs 1`.
#[test]
fn reports_are_byte_identical_across_jobs() {
    for (protocol, fault) in
        [(ProtocolKind::Snooping, Fault::None), (ProtocolKind::Directory, Fault::ParkBusyForwards)]
    {
        let mut serial = check(protocol, 3, 1);
        serial.fault = fault;
        serial.stats = true;
        serial.check_liveness = false;
        serial.max_states = 500_000;
        let mut wide = serial;
        serial.jobs = 1;
        wide.jobs = 8;
        let (a, b) = (run(&serial), run(&wide));
        assert_eq!(format!("{a}"), format!("{b}"), "{protocol}: report must not depend on jobs");
        assert_eq!(
            a.violation.map(|v| v.trace),
            b.violation.map(|v| v.trace),
            "{protocol}: counterexample traces must not depend on jobs"
        );
    }
}

/// All three seeded mutations still produce counterexample traces through
/// the symmetry-reduced, guarded-action path.
#[test]
fn fault_fixtures_caught_through_reduced_guarded_path() {
    let cases = [
        (ProtocolKind::Snooping, Fault::SkipInvalidate, "SWMR"),
        (ProtocolKind::Directory, Fault::ForgetOwner, ""),
        (ProtocolKind::Directory, Fault::ParkBusyForwards, "deadlock"),
    ];
    for (protocol, fault, needle) in cases {
        let mut cfg = check(protocol, 2, 1);
        cfg.fault = fault;
        assert!(cfg.symmetry, "reduction is the default path");
        let report = run(&cfg);
        let v = report.violation.unwrap_or_else(|| panic!("{protocol}/{fault}: must be caught"));
        assert!(v.message.contains(needle), "{protocol}/{fault}: {}", v.message);
        assert!(v.trace.len() > 2, "{protocol}/{fault}: trace should narrate the steps");
    }
}

/// The typed fault-parse error mirrors `SimKindError`: it names the bad
/// spelling and lists the valid ones.
#[test]
fn fault_parse_error_is_typed_and_lists_choices() {
    let err = "skip-invalidat".parse::<Fault>().expect_err("misspelling must not parse");
    let msg = err.to_string();
    assert!(msg.contains("skip-invalidat"), "{msg}");
    assert!(msg.contains("skip-invalidate"), "{msg}");
    assert!(msg.contains("park-busy-forwards"), "{msg}");
    let _: &dyn std::error::Error = &err;
}
