//! The hierarchical analytic model against the message-level hierarchy
//! simulator: the closed-loop network simulation and the fixed-point model
//! must agree on latency and utilisation trends (and roughly on values).

use ringsim::analytic::{ClassFreqs, HierRingModel, ModelInput};
use ringsim::core::{HierNetConfig, HierNetSim};
use ringsim::ring::RingHierarchy;
use ringsim::types::Time;

/// Maps the network simulator's closed loop (think → one remote
/// transaction) onto the model's vocabulary: one data reference per
/// transaction, costing `think_time` of compute, always missing remotely.
fn model_input(procs: usize) -> ModelInput {
    ModelInput {
        procs,
        instr_per_data: 0.0,
        freqs: ClassFreqs { read_clean_remote: 1.0, ..ClassFreqs::default() },
    }
}

fn run_pair(rings: usize, per: usize, think_ns: u64, locality: f64) -> (f64, f64, f64, f64) {
    let hier = RingHierarchy::new(rings, per).unwrap();
    let mut cfg = HierNetConfig::new(hier.clone());
    cfg.think_time = Time::from_ns(think_ns);
    cfg.locality = locality;
    cfg.txns_per_node = 300;
    let sim = HierNetSim::new(cfg).unwrap().run();

    let model = HierRingModel::new(hier)
        .with_locality(locality)
        .evaluate(&model_input(rings * per), Time::from_ns(think_ns));
    (
        sim.latency.mean(),
        model.miss_latency_ns,
        sim.global_util,
        model.block_util, // global-ring utilisation in the hier model
    )
}

#[test]
fn latency_agrees_within_a_third_at_light_load() {
    for (rings, per, locality) in [(4usize, 4usize, 0.25), (4, 4, 0.8), (8, 4, 0.125)] {
        let (sim_lat, model_lat, _, _) = run_pair(rings, per, 2_000, locality);
        let rel = (sim_lat - model_lat).abs() / sim_lat;
        assert!(
            rel < 0.33,
            "{rings}x{per} loc {locality}: sim {sim_lat:.0} vs model {model_lat:.0} ({rel:.2})"
        );
    }
}

#[test]
fn both_see_global_ring_load_rise_with_remote_traffic() {
    let (_, _, sim_low, model_low) = run_pair(4, 4, 800, 0.9);
    let (_, _, sim_high, model_high) = run_pair(4, 4, 800, 0.1);
    assert!(sim_high > sim_low, "sim: {sim_high} vs {sim_low}");
    assert!(model_high > model_low, "model: {model_high} vs {model_low}");
}

#[test]
fn both_see_latency_rise_under_load() {
    let (sim_slow, model_slow, _, _) = run_pair(4, 4, 2_000, 0.25);
    let (sim_fast, model_fast, _, _) = run_pair(4, 4, 250, 0.25);
    assert!(sim_fast > sim_slow, "sim: {sim_fast} vs {sim_slow}");
    assert!(model_fast > model_slow, "model: {model_fast} vs {model_slow}");
}
