//! Property tests for the observability latency histogram.
//!
//! The parallel sweep engine folds worker shards in completion order, so
//! the artifact contract (byte-identical output for any `--jobs N`) rests
//! on [`LatencyHistogram::merge`] being exactly associative and
//! commutative, and on merged percentiles matching the whole-run
//! percentiles for *any* split of the samples into shards.

use proptest::prelude::*;

use ringsim::obs::LatencyHistogram;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s as f64);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..5_000_000, 0..80),
        b in prop::collection::vec(0u64..5_000_000, 0..80),
        c in prop::collection::vec(0u64..5_000_000, 0..80),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // a ⊕ b == b ⊕ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sharded_percentiles_match_whole_run(
        samples in prop::collection::vec(0u64..5_000_000, 1..200),
        shards in 1usize..9,
    ) {
        let whole = hist_of(&samples);
        // Deal the samples round-robin into `shards` worker histograms and
        // fold them back together, the way sweep workers do.
        let mut parts = vec![LatencyHistogram::new(); shards];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s as f64);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in [0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q), "q = {q}");
        }
        prop_assert_eq!(merged.mean(), whole.mean());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }
}
