//! Static lint over the pure protocol transition tables in
//! `ringsim-proto::transitions` and the guarded-rule sets in
//! `ringsim-proto::guarded` they dispatch through.
//!
//! Three layers of defence against silently-incomplete tables:
//!
//! 1. **Runtime totality**: every function is called over the full cartesian
//!    product of its inputs. Rust's exhaustiveness checking already forces
//!    the `match`es to cover the enums, so this mostly guards against panics
//!    hidden behind `unreachable!` in reachable corners.
//! 2. **Source lint**: the module's source is scanned to prove that no
//!    `match` uses a wildcard `_ =>` arm. A new [`MsgKind`] or [`LineState`]
//!    variant therefore fails compilation inside every table instead of
//!    falling into a silent default.
//! 3. **Guarded-rule lint**: the declarative rule sets are checked for
//!    totality (some guard matches every enumerable context), determinism
//!    (overlapping guards agree on the action), and liveness (no rule is
//!    dead — every rule fires somewhere in a 4-node exhaustive run of the
//!    protocol it belongs to).

use ringsim::cache::LineState;
use ringsim::proto::transitions::{
    dir_action, home_snoop_action, must_reclaim_writeback, snooper_action, upgrade_must_convert,
    DirRequest,
};
use ringsim::proto::{DirEntry, MsgKind};
use ringsim::types::NodeId;

const ALL_KINDS: [MsgKind; 13] = [
    MsgKind::SnoopRead,
    MsgKind::SnoopWrite,
    MsgKind::SnoopUpgrade,
    MsgKind::DirRead,
    MsgKind::DirWrite,
    MsgKind::DirUpgrade,
    MsgKind::DirFwdRead,
    MsgKind::DirFwdWrite,
    MsgKind::DirInval,
    MsgKind::DirAck,
    MsgKind::BlockData,
    MsgKind::WriteBack,
    MsgKind::MemUpdate,
];

const ALL_STATES: [LineState; 3] = [LineState::Inv, LineState::Rs, LineState::We];

/// Representative directory entries: every (owner, sharer-set) shape the
/// dispatch table branches on, for 4 nodes.
fn entry_shapes() -> Vec<DirEntry> {
    let mut shapes = Vec::new();
    for sharers in 0u64..16 {
        let e = DirEntry { sharers, ..DirEntry::default() };
        shapes.push(e);
        for owner in 0..4 {
            shapes.push(DirEntry { owner: Some(NodeId::new(owner)), ..e });
        }
    }
    shapes
}

#[test]
fn snooper_table_is_total() {
    for state in ALL_STATES {
        for kind in ALL_KINDS {
            // Must not panic for any combination; the enum of results is the
            // contract, not a particular value.
            let _ = snooper_action(state, kind);
        }
    }
}

#[test]
fn home_snoop_table_is_total() {
    for dirty in [false, true] {
        for kind in ALL_KINDS {
            let _ = home_snoop_action(dirty, kind);
        }
    }
}

#[test]
fn classify_is_total_and_only_home_requests_classify() {
    let home_requests = [MsgKind::DirRead, MsgKind::DirWrite, MsgKind::DirUpgrade];
    for kind in ALL_KINDS {
        let class = DirRequest::classify(kind);
        assert_eq!(class.is_some(), home_requests.contains(&kind), "{kind:?}");
    }
}

#[test]
fn dir_dispatch_is_total_over_entry_shapes() {
    for entry in entry_shapes() {
        for requester in (0..4).map(NodeId::new) {
            let _ = must_reclaim_writeback(&entry, requester);
            let _ = upgrade_must_convert(&entry, requester);
            for req in [DirRequest::Read, DirRequest::Write, DirRequest::Upgrade] {
                let _ = dir_action(&entry, requester, req);
            }
        }
    }
}

#[test]
fn transition_tables_have_no_wildcard_arms() {
    // The module promises every match is total with no `_ =>` arms, so that
    // adding an enum variant breaks the build in every table at once. Scan
    // the source to keep the promise honest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/proto/src/transitions.rs");
    let src = std::fs::read_to_string(path).expect("transition tables source");
    for (lineno, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        assert!(
            !code.contains("_ =>"),
            "wildcard match arm in transitions.rs:{}: `{}`",
            lineno + 1,
            line.trim()
        );
    }
    // The scan above is only meaningful while the functions it guards exist.
    for name in ["snooper_action", "home_snoop_action", "dir_action", "classify"] {
        assert!(src.contains(name), "expected `{name}` in transitions.rs");
    }
}

// ------------------------------------------------------- guarded rule sets

/// The guarded rule sets are total and deterministic over the enumerated
/// context domains (every snooped kind × line state, probe × dirty bit,
/// and every 8-node directory-entry shape × requester × request).
#[test]
fn guarded_rule_sets_lint_clean() {
    let findings = ringsim::proto::guarded::lint(8);
    assert!(findings.is_empty(), "guarded-rule lint findings:\n{}", findings.join("\n"));
}

/// No two rules in a set share a name — fire counts and dead-rule reports
/// key on `(ruleset, rule)`.
#[test]
fn guarded_rule_names_are_unique() {
    use ringsim::proto::guarded::FireCounts;
    let mut seen = std::collections::HashSet::new();
    for fire in FireCounts::new().snapshot() {
        assert!(seen.insert((fire.ruleset, fire.rule)), "duplicate rule {:?}", fire.rule);
    }
    // snooper + home + directory + sci + mesi + dragon.
    assert!(seen.len() >= 43, "expected the full rule inventory, got {}", seen.len());
}

/// The guarded module keeps the same no-wildcard promise as the transition
/// tables: adding a [`MsgKind`] variant must break every dispatch site.
#[test]
fn guarded_rules_have_no_wildcard_arms() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/proto/src/guarded.rs");
    let src = std::fs::read_to_string(path).expect("guarded rules source");
    for (lineno, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        assert!(
            !code.contains("_ =>"),
            "wildcard match arm in guarded.rs:{}: `{}`",
            lineno + 1,
            line.trim()
        );
    }
    for name in
        ["SNOOPER_RULES", "HOME_RULES", "DIR_RULES", "SCI_RULES", "MESI_RULES", "DRAGON_RULES"]
    {
        assert!(src.contains(name), "expected `{name}` in guarded.rs");
    }
}

/// Dead-rule gate: every rule fires in a 4-node exhaustive run of the
/// protocol it is declared for. A rule no reachable state ever fires is
/// either a spec bug or dead weight that belongs deleted; both should fail
/// loudly here rather than rot.
#[test]
fn no_rule_is_dead_at_four_nodes() {
    use ringsim::check::{explore, CheckConfig};
    use ringsim::proto::ProtocolKind;

    for protocol in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Sci,
        ProtocolKind::Mesi,
        ProtocolKind::Dragon,
    ] {
        let mut cfg = CheckConfig::new(protocol, 4, 1);
        cfg.stats = true;
        // The directory's full 4-node space is huge and evictions add
        // nothing to its rule coverage (no directory rule guards on
        // eviction state). Every other protocol keeps them: SCI's rollout
        // splice, MESI's last-copy promote and Dragon's last-copy promote
        // only fire with evictions in the mix.
        cfg.evictions = protocol != ProtocolKind::Directory;
        cfg.check_liveness = false;
        let report = explore(&cfg).expect("valid config");
        assert!(report.passed(), "{protocol}: exhaustive run must be clean");
        let stats = report.stats.expect("stats requested");
        let dead = stats.dead_rules(protocol);
        assert!(
            dead.is_empty(),
            "{protocol}: rules never fired in a 4n/1b exhaustive run: {:?}",
            dead.iter().map(|d| format!("{}/{}", d.ruleset, d.rule)).collect::<Vec<_>>()
        );
    }
}
