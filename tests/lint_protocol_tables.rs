//! Static lint over the pure protocol transition tables in
//! `ringsim-proto::transitions`.
//!
//! Two layers of defence against silently-incomplete tables:
//!
//! 1. **Runtime totality**: every function is called over the full cartesian
//!    product of its inputs. Rust's exhaustiveness checking already forces
//!    the `match`es to cover the enums, so this mostly guards against panics
//!    hidden behind `unreachable!` in reachable corners.
//! 2. **Source lint**: the module's source is scanned to prove that no
//!    `match` uses a wildcard `_ =>` arm. A new [`MsgKind`] or [`LineState`]
//!    variant therefore fails compilation inside every table instead of
//!    falling into a silent default.

use ringsim::cache::LineState;
use ringsim::proto::transitions::{
    dir_action, home_snoop_action, must_reclaim_writeback, snooper_action, upgrade_must_convert,
    DirRequest,
};
use ringsim::proto::{DirEntry, MsgKind};
use ringsim::types::NodeId;

const ALL_KINDS: [MsgKind; 13] = [
    MsgKind::SnoopRead,
    MsgKind::SnoopWrite,
    MsgKind::SnoopUpgrade,
    MsgKind::DirRead,
    MsgKind::DirWrite,
    MsgKind::DirUpgrade,
    MsgKind::DirFwdRead,
    MsgKind::DirFwdWrite,
    MsgKind::DirInval,
    MsgKind::DirAck,
    MsgKind::BlockData,
    MsgKind::WriteBack,
    MsgKind::MemUpdate,
];

const ALL_STATES: [LineState; 3] = [LineState::Inv, LineState::Rs, LineState::We];

/// Representative directory entries: every (owner, sharer-set) shape the
/// dispatch table branches on, for 4 nodes.
fn entry_shapes() -> Vec<DirEntry> {
    let mut shapes = Vec::new();
    for sharers in 0u64..16 {
        let e = DirEntry { sharers, ..DirEntry::default() };
        shapes.push(e);
        for owner in 0..4 {
            shapes.push(DirEntry { owner: Some(NodeId::new(owner)), ..e });
        }
    }
    shapes
}

#[test]
fn snooper_table_is_total() {
    for state in ALL_STATES {
        for kind in ALL_KINDS {
            // Must not panic for any combination; the enum of results is the
            // contract, not a particular value.
            let _ = snooper_action(state, kind);
        }
    }
}

#[test]
fn home_snoop_table_is_total() {
    for dirty in [false, true] {
        for kind in ALL_KINDS {
            let _ = home_snoop_action(dirty, kind);
        }
    }
}

#[test]
fn classify_is_total_and_only_home_requests_classify() {
    let home_requests = [MsgKind::DirRead, MsgKind::DirWrite, MsgKind::DirUpgrade];
    for kind in ALL_KINDS {
        let class = DirRequest::classify(kind);
        assert_eq!(class.is_some(), home_requests.contains(&kind), "{kind:?}");
    }
}

#[test]
fn dir_dispatch_is_total_over_entry_shapes() {
    for entry in entry_shapes() {
        for requester in (0..4).map(NodeId::new) {
            let _ = must_reclaim_writeback(&entry, requester);
            let _ = upgrade_must_convert(&entry, requester);
            for req in [DirRequest::Read, DirRequest::Write, DirRequest::Upgrade] {
                let _ = dir_action(&entry, requester, req);
            }
        }
    }
}

#[test]
fn transition_tables_have_no_wildcard_arms() {
    // The module promises every match is total with no `_ =>` arms, so that
    // adding an enum variant breaks the build in every table at once. Scan
    // the source to keep the promise honest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/proto/src/transitions.rs");
    let src = std::fs::read_to_string(path).expect("transition tables source");
    for (lineno, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        assert!(
            !code.contains("_ =>"),
            "wildcard match arm in transitions.rs:{}: `{}`",
            lineno + 1,
            line.trim()
        );
    }
    // The scan above is only meaningful while the functions it guards exist.
    for name in ["snooper_action", "home_snoop_action", "dir_action", "classify"] {
        assert!(src.contains(name), "expected `{name}` in transitions.rs");
    }
}
