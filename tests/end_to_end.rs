//! End-to-end integration: workload generation → timed simulation → metrics,
//! across protocols and interconnects.

use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{characterize, Benchmark, Workload, WorkloadSpec};
use ringsim::types::Time;

fn demo_workload(procs: usize, refs: u64) -> Workload {
    Workload::new(WorkloadSpec::demo(procs).with_refs(refs)).unwrap()
}

#[test]
fn ring_snooping_full_pipeline() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
    let mut sys = RingSystem::new(cfg, demo_workload(8, 4_000)).unwrap();
    let report = sys.run();
    assert_eq!(report.events.data_refs(), 8 * 4_000);
    assert!(report.proc_util > 0.2 && report.proc_util < 1.0);
    assert!(report.ring_util > 0.0 && report.ring_util < 0.9);
    assert!(report.miss_latency_ns() >= 140.0);
    assert_eq!(report.per_node.len(), 8);
    sys.check_coherence().unwrap();
}

#[test]
fn ring_directory_full_pipeline() {
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Directory, 8);
    let mut sys = RingSystem::new(cfg, demo_workload(8, 4_000)).unwrap();
    let report = sys.run();
    assert_eq!(report.events.data_refs(), 8 * 4_000);
    assert!(report.miss_latency_ns() >= 140.0);
    // Directory mode populates the Figure 5 classes.
    let (c1, d1, c2) = report.fig5_percentages();
    assert!((c1 + d1 + c2 - 100.0).abs() < 1e-9);
    sys.check_coherence().unwrap();
}

#[test]
fn bus_full_pipeline() {
    let cfg = BusSystemConfig::bus_100mhz(8);
    let report = BusSystem::new(cfg, demo_workload(8, 4_000)).unwrap().run();
    assert_eq!(report.events.data_refs(), 8 * 4_000);
    assert!(report.ring_util > 0.0 && report.ring_util <= 1.0);
    assert!(report.miss_latency_ns() >= 140.0);
}

#[test]
fn timed_sims_agree_with_untimed_interpreter_on_rates() {
    // The timed simulators and the untimed interpreter consume the same
    // per-node streams, so their miss rates must agree closely (small
    // differences come from interleaving-dependent coherence races).
    let spec = WorkloadSpec::demo(8).with_refs(6_000);
    let ch = characterize(&spec).unwrap();
    let interp_rate = ch.events.total_miss_rate();

    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::ring_500mhz(protocol, 8);
        let report = RingSystem::new(cfg, Workload::new(spec.clone()).unwrap()).unwrap().run();
        let sim_rate = report.events.total_miss_rate();
        let rel = (sim_rate - interp_rate).abs() / interp_rate;
        assert!(
            rel < 0.12,
            "{protocol}: sim rate {sim_rate:.4} vs interp {interp_rate:.4} ({rel:.2})"
        );
    }
}

#[test]
fn snooping_beats_directory_on_migratory_demo() {
    // The demo workload is migratory-heavy, so the paper's main result
    // should hold: snooping gives better processor utilisation.
    let run = |p| {
        let cfg = SystemConfig::ring_500mhz(p, 8).with_proc_cycle(Time::from_ns(10));
        RingSystem::new(cfg, demo_workload(8, 5_000)).unwrap().run()
    };
    let snoop = run(ProtocolKind::Snooping);
    let dir = run(ProtocolKind::Directory);
    assert!(
        snoop.proc_util > dir.proc_util,
        "snooping {} <= directory {}",
        snoop.proc_util,
        dir.proc_util
    );
    assert!(snoop.miss_latency_ns() < dir.miss_latency_ns());
    // But snooping always loads the ring more.
    assert!(snoop.ring_util > dir.ring_util);
}

#[test]
fn ring_outperforms_saturating_bus_with_fast_processors() {
    let spec = WorkloadSpec::demo(16).with_refs(4_000);
    let proc = Time::from_ns(2); // 500 MIPS
    let ring_cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 16).with_proc_cycle(proc);
    let ring = RingSystem::new(ring_cfg, Workload::new(spec.clone()).unwrap()).unwrap().run();
    let bus_cfg = BusSystemConfig::bus_50mhz(16).with_proc_cycle(proc);
    let bus = BusSystem::new(bus_cfg, Workload::new(spec).unwrap()).unwrap().run();
    assert!(ring.proc_util > bus.proc_util);
    assert!(bus.ring_util > 0.85, "bus should be near saturation: {}", bus.ring_util);
}

#[test]
fn paper_benchmarks_run_on_their_paper_sizes() {
    for (bench, procs) in Benchmark::paper_configs() {
        // Keep the 64-proc runs tiny: this is a smoke test.
        let refs = if procs >= 64 { 800 } else { 1_500 };
        let spec = bench.spec(procs).unwrap().with_refs(refs);
        let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs);
        let report = RingSystem::new(cfg, Workload::new(spec).unwrap()).unwrap().run();
        assert!(report.proc_util > 0.0, "{bench:?}.{procs}");
    }
}

#[test]
fn class_latencies_are_ordered_sensibly() {
    // Local < clean-remote <= dirty for the snooping ring; the directory
    // additionally pays for dirty forwarding.
    let spec = WorkloadSpec::demo(8).with_refs(6_000);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::ring_500mhz(protocol, 8);
        let report = RingSystem::new(cfg, Workload::new(spec.clone()).unwrap()).unwrap().run();
        let c = report.class_latencies;
        assert!(c.local.count() > 0 && c.clean_remote.count() > 0 && c.dirty.count() > 0);
        assert!(
            c.local.mean() < c.clean_remote.mean(),
            "{protocol}: local {} !< clean remote {}",
            c.local.mean(),
            c.clean_remote.mean()
        );
        assert!(
            c.dirty.mean() >= c.clean_remote.mean() - 20.0,
            "{protocol}: dirty {} much cheaper than clean {}",
            c.dirty.mean(),
            c.clean_remote.mean()
        );
        // Local misses are pure memory accesses: exactly around 140 ns.
        assert!((c.local.mean() - 140.0).abs() < 30.0, "{protocol}: local {}", c.local.mean());
    }
}

#[test]
fn directory_dirty_misses_cost_more_than_snooping_dirty_misses() {
    // The heart of the paper's protocol comparison, at class granularity:
    // dirty misses take up to two traversals under the directory but always
    // exactly one under snooping.
    let spec = WorkloadSpec::demo(8).with_refs(6_000);
    let run = |p| {
        let cfg = SystemConfig::ring_500mhz(p, 8);
        RingSystem::new(cfg, Workload::new(spec.clone()).unwrap()).unwrap().run()
    };
    let snoop = run(ProtocolKind::Snooping).class_latencies;
    let dir = run(ProtocolKind::Directory).class_latencies;
    assert!(
        dir.dirty.mean() > snoop.dirty.mean() + 30.0,
        "directory dirty {} should exceed snooping dirty {}",
        dir.dirty.mean(),
        snoop.dirty.mean()
    );
}
