//! Further property-based tests: the coherent cache against a plain
//! reference model, message travel times on the ring, and workload
//! statistics.

use std::collections::HashMap;

use proptest::prelude::*;

use ringsim::cache::{AccessClass, Cache, CacheConfig, LineState};
use ringsim::ring::{RingConfig, SlotRing};
use ringsim::trace::{characterize, RecordedTrace, Workload, WorkloadSpec};
use ringsim::types::rng::Xoshiro256;
use ringsim::types::{AccessKind, BlockAddr, NodeId};

proptest! {
    /// The direct-mapped cache agrees with a naive map-based model of
    /// "which block owns each line".
    #[test]
    fn cache_agrees_with_reference_map(ops in prop::collection::vec((0u64..1024, any::<bool>()), 1..500)) {
        let cfg = CacheConfig { size_bytes: 512, block_bytes: 16 }; // 32 lines
        let lines = 32u64;
        let mut cache = Cache::new(cfg).unwrap();
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new(); // line -> (block, dirty)
        for (block, write) in ops {
            let b = BlockAddr::new(block);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let line = block % lines;
            let expected = match model.get(&line) {
                Some(&(owner, dirty)) if owner == block => {
                    if write && !dirty { AccessClass::Upgrade } else { AccessClass::Hit }
                }
                _ => AccessClass::Miss,
            };
            let got = cache.classify(b, kind);
            prop_assert_eq!(got, expected, "block {} write {}", block, write);
            match got {
                AccessClass::Miss => {
                    cache.fill(b, if write { LineState::We } else { LineState::Rs });
                    model.insert(line, (block, write));
                }
                AccessClass::Upgrade => {
                    cache.promote(b);
                    model.insert(line, (block, true));
                }
                AccessClass::Hit => {}
            }
        }
    }

    /// A message inserted at node A arrives at node B after exactly the
    /// stage distance, regardless of ring size or positions.
    #[test]
    fn message_travel_time_is_stage_distance(nodes in 2usize..=32, a in 0usize..32, b in 0usize..32) {
        let a = a % nodes;
        let b = b % nodes;
        let mut ring: SlotRing<u8> = SlotRing::new(RingConfig::standard_500mhz(nodes)).unwrap();
        let src = NodeId::new(a);
        let dst = NodeId::new(b);
        // Find an empty slot at src.
        let mut inserted_at = None;
        for _ in 0..=ring.layout().stages() {
            if let Some(slot) = ring.arrival(src) {
                if ring.peek(slot).is_none() {
                    ring.try_insert(slot, src, 9).unwrap();
                    inserted_at = Some((slot, ring.cycle()));
                    break;
                }
            }
            ring.advance();
        }
        let (slot, t0) = inserted_at.expect("an empty slot within one revolution");
        let dist = ring.layout().stage_distance(src, dst) as u64;
        while ring.cycle() < t0 + dist {
            ring.advance();
        }
        prop_assert_eq!(ring.arrival(dst), Some(slot));
        prop_assert_eq!(ring.peek(slot), Some(&9));
    }

    /// Recorded traces round-trip through bytes for arbitrary small
    /// workloads.
    #[test]
    fn trace_bytes_roundtrip(seed in 0u64..200, procs in 2usize..=6, refs in 10u64..200) {
        let spec = WorkloadSpec::demo(procs).with_seed(seed);
        let trace = RecordedTrace::capture_refs(&spec, refs).unwrap();
        let back = RecordedTrace::from_bytes(&trace.to_bytes()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Workload statistics respect their knobs: zero shared fraction means
    /// zero shared references; zero write fractions mean zero writes.
    #[test]
    fn workload_respects_extreme_knobs(seed in 0u64..100) {
        let spec = WorkloadSpec {
            shared_frac: 0.0,
            private_write_frac: 0.0,
            ..WorkloadSpec::demo(4).with_seed(seed)
        };
        let mut w = Workload::new(spec).unwrap();
        for r in w.round_robin(500) {
            prop_assert!(!r.region.is_shared());
            prop_assert!(!r.kind.is_write());
        }
    }

    /// Characterisation never reports more misses than references, and all
    /// Figure 5 classes partition remote misses.
    #[test]
    fn characterisation_is_internally_consistent(seed in 0u64..50) {
        let spec = WorkloadSpec::demo(4).with_refs(2_000).with_seed(seed);
        let ch = characterize(&spec).unwrap();
        let e = ch.events;
        prop_assert!(e.misses() <= e.data_refs());
        prop_assert!(e.shared_misses() <= e.shared_refs());
        prop_assert!(e.private_misses <= e.private_refs());
        let fig5 = e.fig5_one_cycle_clean() + e.fig5_one_cycle_dirty() + e.fig5_two_cycle();
        prop_assert_eq!(fig5, e.remote_misses());
        prop_assert!(e.remote_misses() <= e.shared_misses());
    }

    /// The deterministic PRNG's weighted pick respects zero weights for any
    /// weight vector.
    #[test]
    fn weighted_pick_never_selects_zero(seed in 0u64..500, w0 in 0u32..5, w1 in 0u32..5, w2 in 0u32..5) {
        let weights = [f64::from(w0), 0.0, f64::from(w1), f64::from(w2)];
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..50 {
            if let Some(i) = rng.pick_weighted(&weights) {
                prop_assert!(weights[i] > 0.0);
            } else {
                prop_assert!(weights.iter().all(|&w| w == 0.0));
            }
        }
    }
}
