//! Trace-driven methodology: a recorded trace replayed against different
//! architectures produces identical reference streams, so protocol
//! comparisons are apples-to-apples — exactly the paper's workflow.

use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{RecordedTrace, Workload, WorkloadSpec};

fn trace() -> RecordedTrace {
    RecordedTrace::capture(&WorkloadSpec::demo(4).with_refs(2_500)).unwrap()
}

#[test]
fn replay_equals_synthetic_in_the_simulator() {
    // Running the simulator from the recording gives bit-identical results
    // to running it from the generator (the recording captured exactly the
    // references the generator would produce).
    let spec = WorkloadSpec::demo(4).with_refs(2_500);
    let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4);

    let synth = RingSystem::new(cfg, Workload::new(spec.clone()).unwrap()).unwrap().run();

    let recorded = RecordedTrace::capture(&spec).unwrap();
    let replayed = RingSystem::new(cfg, recorded.workload()).unwrap().run();

    // The budgets differ slightly (replay_spec uses its own warmup split),
    // so compare the physics rather than raw counts: same reference streams
    // must give the same miss rate and very similar latencies.
    let rel = (synth.events.total_miss_rate() - replayed.events.total_miss_rate()).abs()
        / synth.events.total_miss_rate();
    assert!(rel < 0.1, "replay miss rate diverged: {rel}");
    let lat =
        (synth.miss_latency_ns() - replayed.miss_latency_ns()).abs() / synth.miss_latency_ns();
    assert!(lat < 0.1, "replay latency diverged: {lat}");
}

#[test]
fn one_trace_many_architectures() {
    let t = trace();
    // The same recording drives a snooping ring, a directory ring and a bus.
    let ring_snoop =
        RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4), t.workload())
            .unwrap()
            .run();
    let ring_dir =
        RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Directory, 4), t.workload())
            .unwrap()
            .run();
    let bus = BusSystem::new(BusSystemConfig::bus_100mhz(4), t.workload()).unwrap().run();

    // All three consumed the same references.
    assert_eq!(ring_snoop.events.data_refs(), ring_dir.events.data_refs());
    assert_eq!(ring_snoop.events.data_refs(), bus.events.data_refs());
    // And the same reference mix (reads/writes are interleaving-independent).
    assert_eq!(ring_snoop.events.shared_writes, ring_dir.events.shared_writes);
    assert_eq!(ring_snoop.events.shared_writes, bus.events.shared_writes);
}

#[test]
fn trace_roundtrips_through_disk_into_simulation() {
    let t = trace();
    let dir = std::env::temp_dir().join("ringsim-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo4.rstrace");
    t.save(&path).unwrap();
    let loaded = RecordedTrace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4), t.workload())
        .unwrap()
        .run();
    let b =
        RingSystem::new(SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4), loaded.workload())
            .unwrap()
            .run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.sim_end, b.sim_end);
}
