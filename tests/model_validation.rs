//! The paper's hybrid-methodology contract: the analytical models must
//! agree with the timed simulators (the paper claims 15% on latencies and
//! 5% on utilisations; we hold the same bands with margin for the small
//! test workloads).

use ringsim::analytic::{BusModel, ModelInput, RingModel};
use ringsim::bus::BusConfig;
use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{Workload, WorkloadSpec};
use ringsim::types::Time;

const PROC: Time = Time::from_ns(20); // 50 MIPS, like the paper's base point

fn spec() -> WorkloadSpec {
    WorkloadSpec::demo(8).with_refs(8_000)
}

#[test]
fn ring_models_match_ring_sims() {
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::ring_500mhz(protocol, 8).with_proc_cycle(PROC);
        let sim = RingSystem::new(cfg, Workload::new(spec()).unwrap()).unwrap().run();
        let input = ModelInput::from_report(&sim, spec().instr_per_data);
        let model = RingModel::new(RingConfig::standard_500mhz(8), protocol);
        let out = model.evaluate(&input, PROC);
        assert!(out.converged);

        let util_err = (out.proc_util - sim.proc_util).abs();
        assert!(
            util_err < 0.05,
            "{protocol}: util sim {} vs model {}",
            sim.proc_util,
            out.proc_util
        );

        let lat_err = (out.miss_latency_ns - sim.miss_latency_ns()).abs() / sim.miss_latency_ns();
        assert!(
            lat_err < 0.15,
            "{protocol}: latency sim {} vs model {}",
            sim.miss_latency_ns(),
            out.miss_latency_ns
        );

        let net_err = (out.net_util - sim.ring_util).abs();
        assert!(net_err < 0.05, "{protocol}: net sim {} vs model {}", sim.ring_util, out.net_util);
    }
}

#[test]
fn bus_model_matches_bus_sim() {
    let cfg = BusSystemConfig::bus_100mhz(8).with_proc_cycle(PROC);
    let sim = BusSystem::new(cfg, Workload::new(spec()).unwrap()).unwrap().run();
    let input = ModelInput::from_report(&sim, spec().instr_per_data);
    let out = BusModel::new(BusConfig::bus_100mhz(8)).evaluate(&input, PROC);
    assert!(out.converged);
    assert!((out.proc_util - sim.proc_util).abs() < 0.05);
    let lat_err = (out.miss_latency_ns - sim.miss_latency_ns()).abs() / sim.miss_latency_ns();
    assert!(
        lat_err < 0.20,
        "latency sim {} vs model {}",
        sim.miss_latency_ns(),
        out.miss_latency_ns
    );
}

#[test]
fn model_tracks_sim_across_processor_speeds() {
    // Relative ordering along the Figure 3 sweep must agree between the
    // two halves of the methodology.
    let base_cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
    let slow_sim = RingSystem::new(
        base_cfg.with_proc_cycle(Time::from_ns(20)),
        Workload::new(spec()).unwrap(),
    )
    .unwrap()
    .run();
    let fast_sim =
        RingSystem::new(base_cfg.with_proc_cycle(Time::from_ns(4)), Workload::new(spec()).unwrap())
            .unwrap()
            .run();
    let input = ModelInput::from_report(&slow_sim, spec().instr_per_data);
    let model = RingModel::new(RingConfig::standard_500mhz(8), ProtocolKind::Snooping);
    let slow = model.evaluate(&input, Time::from_ns(20));
    let fast = model.evaluate(&input, Time::from_ns(4));
    assert!(slow.proc_util > fast.proc_util);
    assert!(slow_sim.proc_util > fast_sim.proc_util);
    assert!(fast.net_util > slow.net_util);
    assert!(fast_sim.ring_util > slow_sim.ring_util);
}
