//! Scripted coherence scenarios, staged through hand-written traces and
//! replayed on the timed simulators. Each scenario pins the block's home
//! node (private-region addresses carry their home), sequences the
//! processors with padding references, and asserts the exact event class
//! and final cache states — for the snooping ring, the directory ring and
//! the bus.

use ringsim::cache::LineState;
use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{AddressSpace, RecordedTrace, BLOCK_BYTES};
use ringsim::types::{AccessKind, BlockAddr, CoherenceEvents, MemRef, NodeId, Region};

const PROCS: usize = 4;
const SEED: u64 = 0x5eed_9a9e; // placement seed used by RecordedTrace::from_refs below

fn space() -> AddressSpace {
    AddressSpace::new(PROCS, SEED)
}

/// A shared-region reference to a block whose home is pinned at `home`
/// (private-region address layout carries the home; the region tag drives
/// event classification).
fn shared_ref(node: usize, home: usize, idx: u64, kind: AccessKind) -> MemRef {
    MemRef {
        node: NodeId::new(node),
        addr: space().private_addr(NodeId::new(home), idx),
        kind,
        region: Region::Shared,
    }
}

/// A private padding reference (local home, quickly becomes a cache hit).
fn pad(node: usize) -> MemRef {
    MemRef {
        node: NodeId::new(node),
        addr: space().private_addr(NodeId::new(node), 7),
        kind: AccessKind::Read,
        region: Region::Private,
    }
}

fn block_of(r: MemRef) -> BlockAddr {
    r.addr.block(BLOCK_BYTES)
}

/// Builds the scripted workload. The simulators give every node the same
/// reference budget (the shortest recording), so all nodes are padded to
/// equal length with trailing private reads — which leave the staged state
/// untouched.
fn scripted(mut per_node: Vec<Vec<MemRef>>) -> RecordedTrace {
    let longest = per_node.iter().map(Vec::len).max().unwrap_or(1).max(1);
    for (n, refs) in per_node.iter_mut().enumerate() {
        while refs.len() < longest {
            refs.push(pad(n));
        }
    }
    RecordedTrace::from_refs(per_node, SEED, 0.0).unwrap()
}

fn run_ring(protocol: ProtocolKind, trace: &RecordedTrace) -> (CoherenceEvents, RingSystem) {
    let cfg = SystemConfig::ring_500mhz(protocol, PROCS);
    let mut sys = RingSystem::new(cfg, trace.workload_with_warmup(0)).unwrap();
    let report = sys.run();
    sys.check_coherence().unwrap();
    (report.events, sys)
}

fn run_bus(trace: &RecordedTrace) -> (CoherenceEvents, BusSystem) {
    let cfg = BusSystemConfig::bus_100mhz(PROCS);
    let mut sys = BusSystem::new(cfg, trace.workload_with_warmup(0)).unwrap();
    let report = sys.run();
    (report.events, sys)
}

/// Clean remote read: P0 reads a block homed at P2 that nobody caches.
#[test]
fn clean_remote_read_miss() {
    let r = shared_ref(0, 2, 100, AccessKind::Read);
    let b = block_of(r);
    let trace = scripted(vec![vec![r], vec![], vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(e.read_clean_remote, 1, "{protocol}");
        assert_eq!(e.shared_misses(), 1, "{protocol}");
        assert_eq!(sys.cache_state(0, b), LineState::Rs, "{protocol}");
    }
    let (e, sys) = run_bus(&trace);
    assert_eq!(e.read_clean_remote, 1);
    assert_eq!(sys.cache_state(0, b), LineState::Rs);
}

/// Local clean read: P0 reads a block homed at itself — no interconnect.
#[test]
fn local_clean_read_miss() {
    let r = shared_ref(0, 0, 101, AccessKind::Read);
    let trace = scripted(vec![vec![r], vec![], vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(e.read_clean_local, 1, "{protocol}");
        assert_eq!(sys.cache_state(0, block_of(r)), LineState::Rs);
    }
}

/// Dirty read miss: P1 writes a block homed at P2, then P0 reads it —
/// the dirty node supplies, both end up read-shared.
#[test]
fn dirty_read_miss_downgrades_owner() {
    let w = shared_ref(1, 2, 102, AccessKind::Write);
    let r = shared_ref(0, 2, 102, AccessKind::Read);
    let b = block_of(r);
    // P0 pads long enough for P1's write to commit first.
    let mut p0 = vec![pad(0); 60];
    p0.push(r);
    let trace = scripted(vec![p0, vec![w], vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(e.write_nosharers_remote, 1, "{protocol}: P1's write miss");
        assert_eq!(
            e.read_dirty_1 + e.read_dirty_2,
            1,
            "{protocol}: P0's read must find the block dirty ({e:#?})"
        );
        assert_eq!(sys.cache_state(0, b), LineState::Rs, "{protocol}");
        assert_eq!(sys.cache_state(1, b), LineState::Rs, "{protocol}: owner downgraded");
    }
    let (e, sys) = run_bus(&trace);
    assert_eq!(e.read_dirty_1 + e.read_dirty_2, 1);
    assert_eq!(sys.cache_state(1, b), LineState::Rs);
}

/// Upgrade with a sharer: P1 reads, later P0 (who read first) writes.
#[test]
fn upgrade_invalidates_sharers() {
    let b_home = 2;
    let r0 = shared_ref(0, b_home, 103, AccessKind::Read);
    let w0 = shared_ref(0, b_home, 103, AccessKind::Write);
    let r1 = shared_ref(1, b_home, 103, AccessKind::Read);
    let b = block_of(r0);
    // P0: read, long pad, write. P1: short pad, read (lands between).
    let mut p0 = vec![r0];
    p0.extend(vec![pad(0); 60]);
    p0.push(w0);
    let mut p1 = vec![pad(1); 10];
    p1.push(r1);
    let trace = scripted(vec![p0, p1, vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(e.upgrade_sharers_remote, 1, "{protocol}: upgrade must see P1's copy ({e:#?})");
        assert!(e.invalidated_copies >= 1, "{protocol}");
        assert_eq!(sys.cache_state(0, b), LineState::We, "{protocol}");
        assert_eq!(sys.cache_state(1, b), LineState::Inv, "{protocol}");
    }
    let (e, sys) = run_bus(&trace);
    assert_eq!(e.upgrade_sharers_remote, 1);
    assert_eq!(sys.cache_state(0, b), LineState::We);
    assert_eq!(sys.cache_state(1, b), LineState::Inv);
}

/// Dirty eviction: P0 dirties two blocks that collide in its cache; the
/// second fill writes the first back to its (remote) home.
#[test]
fn dirty_eviction_writes_back() {
    // Same cache line: block indices 8192 apart within P2's region.
    let w1 = shared_ref(0, 2, 300, AccessKind::Write);
    let w2 = shared_ref(0, 2, 300 + 8192, AccessKind::Write);
    assert_eq!(
        block_of(w1).raw() % 8192,
        block_of(w2).raw() % 8192,
        "must alias the same direct-mapped line"
    );
    let mut p0 = vec![w1];
    p0.extend(vec![pad(0); 40]);
    p0.push(w2);
    let trace = scripted(vec![p0, vec![], vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(e.writeback_remote, 1, "{protocol} ({e:#?})");
        assert_eq!(sys.cache_state(0, block_of(w1)), LineState::Inv, "{protocol}");
        assert_eq!(sys.cache_state(0, block_of(w2)), LineState::We, "{protocol}");
        // A later read by P3 must be served cleanly by the home again.
    }
    let (e, _) = run_bus(&trace);
    assert_eq!(e.writeback_remote, 1);
}

/// Write-back then re-read: after P0's dirty victim drains to the home,
/// a read by another node is a *clean* miss again.
#[test]
fn writeback_restores_clean_home() {
    let w1 = shared_ref(0, 2, 400, AccessKind::Write);
    let w2 = shared_ref(0, 2, 400 + 8192, AccessKind::Write);
    let r3 = shared_ref(3, 2, 400, AccessKind::Read);
    let mut p0 = vec![w1];
    p0.extend(vec![pad(0); 40]);
    p0.push(w2);
    // P3 waits long enough for the write-back to land, then reads w1's block.
    let mut p3 = vec![pad(3); 200];
    p3.push(r3);
    let trace = scripted(vec![p0, vec![], vec![], p3]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        assert_eq!(
            e.read_clean_remote, 1,
            "{protocol}: read after write-back must be clean ({e:#?})"
        );
        assert_eq!(sys.cache_state(3, block_of(r3)), LineState::Rs, "{protocol}");
    }
}

/// Racing upgrades: P0 and P1 both hold the block read-shared and write at
/// the same moment. Exactly one may win; the loser converts to a write
/// miss; the final state has a single owner.
#[test]
fn racing_upgrades_leave_one_owner() {
    let home = 2;
    let r0 = shared_ref(0, home, 500, AccessKind::Read);
    let r1 = shared_ref(1, home, 500, AccessKind::Read);
    let w0 = shared_ref(0, home, 500, AccessKind::Write);
    let w1 = shared_ref(1, home, 500, AccessKind::Write);
    let b = block_of(r0);
    let mut p0 = vec![r0];
    p0.extend(vec![pad(0); 40]);
    p0.push(w0);
    let mut p1 = vec![r1];
    p1.extend(vec![pad(1); 40]);
    p1.push(w1);
    let trace = scripted(vec![p0, p1, vec![], vec![]]);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        let owners = (0..PROCS).filter(|&n| sys.cache_state(n, b) == LineState::We).count();
        assert_eq!(owners, 1, "{protocol}: exactly one writer must survive ({e:#?})");
        assert_eq!(
            e.upgrades() + e.shared_write_misses(),
            2,
            "{protocol}: both writes must be accounted ({e:#?})"
        );
    }
    let (_, sys) = run_bus(&trace);
    let owners = (0..PROCS).filter(|&n| sys.cache_state(n, b) == LineState::We).count();
    assert_eq!(owners, 1);
}

/// Write miss on a block with multiple readers: the multicast/broadcast
/// invalidates them all.
#[test]
fn write_miss_invalidates_all_readers() {
    let home = 3;
    let b_idx = 600;
    let b = block_of(shared_ref(0, home, b_idx, AccessKind::Read));
    let readers: Vec<Vec<MemRef>> =
        (0..3).map(|n| vec![shared_ref(n, home, b_idx, AccessKind::Read)]).collect();
    let mut p3 = vec![pad(3); 80];
    p3.push(shared_ref(3, home, b_idx, AccessKind::Write));
    let mut per_node = readers;
    per_node.push(p3);
    let trace = scripted(per_node);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let (e, sys) = run_ring(protocol, &trace);
        // P3's write is a local-home miss with sharers.
        assert_eq!(e.write_sharers_local, 1, "{protocol} ({e:#?})");
        assert!(e.invalidated_copies >= 3, "{protocol}: all readers invalidated");
        for n in 0..3 {
            assert_eq!(sys.cache_state(n, b), LineState::Inv, "{protocol} P{n}");
        }
        assert_eq!(sys.cache_state(3, b), LineState::We, "{protocol}");
    }
}
