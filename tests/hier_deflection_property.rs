//! Deflection routing never loses work: across random topology shapes,
//! bridge depths (including the bufferless latch) and workload seeds, every
//! injected transaction completes. A deflected message re-circulates on its
//! current ring instead of being dropped, and the age-based reserved-slot
//! priority guarantees it eventually wins a bridge slot — so completion of
//! the full budget is exactly the no-drop/no-livelock property (the engine
//! panics if a run exceeds its runaway cycle bound, so a livelock cannot
//! pass as a hang).

use proptest::prelude::*;

use ringsim::core::{HierNetConfig, HierNetSim};
use ringsim::ring::{RingConfig, RingTopology};
use ringsim::types::Time;

/// The topology shapes the property sweeps: flat, two-level and three-level
/// trees small enough to keep 96 contended runs fast.
const SHAPES: [&[usize]; 5] = [&[6], &[2, 2], &[4, 2], &[2, 2, 2], &[3, 2, 2]];

fn run_shape(shape: &[usize], bridge_buffer: usize, seed: u64, locality: f64) -> (u64, u64, u64) {
    let topo = RingTopology::from_shape(shape, RingConfig::standard_500mhz(2)).unwrap();
    let mut cfg = HierNetConfig::with_topology(topo);
    // Short think time at low locality keeps the bridges contended, which
    // is the regime deflection exists for.
    cfg.think_time = Time::from_ns(150);
    cfg.locality = locality;
    cfg.txns_per_node = 25;
    cfg.seed = seed;
    cfg.bridge_buffer = Some(bridge_buffer);
    let procs: usize = shape.iter().product();
    let report = HierNetSim::new(cfg).unwrap().run();
    (report.completed, (procs as u64) * 25, report.deflections)
}

proptest! {
    /// Random shape × bridge depth × seed: the full transaction budget
    /// always completes, and unbounded-equivalent checks stay deflection-free.
    #[test]
    fn deflection_completes_every_transaction(seed in 0u64..10_000) {
        let shape = SHAPES[(seed % SHAPES.len() as u64) as usize];
        // Depth 0 is the bufferless latch — the most deflection-prone mode.
        let depth = ((seed / 8) % 3) as usize;
        let locality = [0.0, 0.25, 0.5][((seed / 24) % 3) as usize];
        let (completed, budget, _) = run_shape(shape, depth, seed, locality);
        prop_assert_eq!(completed, budget, "shape {:?} depth {} lost transactions", shape, depth);
    }

    /// The same runs repeated give the same deflection counts (deflection
    /// arbitration is deterministic, not timing-dependent).
    #[test]
    fn deflection_counts_are_deterministic(seed in 0u64..100) {
        let shape = SHAPES[(seed % SHAPES.len() as u64) as usize];
        let a = run_shape(shape, 0, seed, 0.0);
        let b = run_shape(shape, 0, seed, 0.0);
        prop_assert_eq!(a, b);
    }
}

/// Flat shapes have no bridges, so nothing can deflect regardless of the
/// configured depth.
#[test]
fn flat_topologies_never_deflect() {
    let (completed, budget, deflections) = run_shape(&[6], 0, 7, 0.0);
    assert_eq!(completed, budget);
    assert_eq!(deflections, 0);
}
