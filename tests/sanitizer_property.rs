//! The runtime coherence sanitizer never fires on healthy simulations.
//!
//! The sanitizer re-checks the single-writer/multiple-reader invariant (and
//! the bus/hier-net conservation laws) at every transaction-retire boundary.
//! These tests force it on — release builds included — and drive all three
//! interconnects across workload seeds; any violation panics inside the run.
//!
//! The complementary direction — that the checks *do* fire on a broken
//! protocol — is covered by the injected-fault model-checker tests in
//! `ringsim-check` (`--inject skip-invalidate` et al.) and the unit tests in
//! `ringsim-core::sanitize`.

use proptest::prelude::*;

use ringsim::core::{
    set_sanitize_mode, BusSystem, BusSystemConfig, HierNetConfig, HierNetSim, RingSystem,
    SanitizeMode, SystemConfig,
};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingHierarchy;
use ringsim::trace::{Workload, WorkloadSpec};

fn workload(procs: usize, refs: u64, seed: u64) -> Workload {
    // Short warmup keeps the 96-case property loop fast; the sanitizer sees
    // every retire either way.
    let mut spec = WorkloadSpec::demo(procs).with_seed(seed);
    spec.data_refs_per_proc = refs;
    spec.warmup_refs_per_proc = refs / 4;
    Workload::new(spec).unwrap()
}

#[test]
fn sanitizer_is_quiet_on_all_interconnects() {
    set_sanitize_mode(SanitizeMode::On);
    for procs in [4, 8] {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let cfg = SystemConfig::ring_500mhz(protocol, procs);
            let report = RingSystem::new(cfg, workload(procs, 2_000, 7)).unwrap().run();
            assert_eq!(report.events.data_refs(), (procs as u64) * 2_000);
        }
        let cfg = BusSystemConfig::bus_100mhz(procs);
        let report = BusSystem::new(cfg, workload(procs, 2_000, 7)).unwrap().run();
        assert_eq!(report.events.data_refs(), (procs as u64) * 2_000);
    }
    // The hierarchy simulator has no caches; its sanitizer check is the
    // transaction conservation law.
    let mut cfg = HierNetConfig::new(RingHierarchy::new(4, 2).unwrap());
    cfg.txns_per_node = 200;
    let report = HierNetSim::new(cfg).unwrap().run();
    assert!(report.latency.mean() > 0.0);
}

proptest! {
    /// Random workload seeds: the retire-time SWMR check stays quiet for
    /// both ring protocols and the bus, alternating 4 and 8 nodes.
    #[test]
    fn sanitizer_never_fires_across_seeds(seed in 0u64..10_000) {
        set_sanitize_mode(SanitizeMode::On);
        let procs = if seed % 2 == 0 { 4 } else { 8 };
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let cfg = SystemConfig::ring_500mhz(protocol, procs);
            let report = RingSystem::new(cfg, workload(procs, 400, seed)).unwrap().run();
            prop_assert!(report.proc_util > 0.0);
        }
        let cfg = BusSystemConfig::bus_100mhz(procs);
        let report = BusSystem::new(cfg, workload(procs, 400, seed)).unwrap().run();
        prop_assert!(report.proc_util > 0.0);
    }
}
