//! Reproducibility: every simulator and model is a pure function of its
//! configuration and seed.

use ringsim::analytic::{ModelInput, RingModel};
use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{characterize, Workload, WorkloadSpec};
use ringsim::types::Time;

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec::demo(6).with_refs(3_000).with_seed(seed)
}

#[test]
fn ring_sim_is_deterministic() {
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let run = || {
            let cfg = SystemConfig::ring_500mhz(protocol, 6);
            RingSystem::new(cfg, Workload::new(spec(1)).unwrap()).unwrap().run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.events, b.events);
        assert_eq!(a.miss_latency, b.miss_latency);
        assert_eq!(a.retries, b.retries);
    }
}

#[test]
fn bus_sim_is_deterministic() {
    let run = || {
        let cfg = BusSystemConfig::bus_100mhz(6);
        BusSystem::new(cfg, Workload::new(spec(2)).unwrap()).unwrap().run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.sim_end, b.sim_end);
    assert_eq!(a.events, b.events);
}

#[test]
fn different_seeds_give_different_runs() {
    let run = |seed| {
        let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 6);
        RingSystem::new(cfg, Workload::new(spec(seed)).unwrap()).unwrap().run()
    };
    let a = run(10);
    let b = run(11);
    assert_ne!(a.events, b.events);
    // ... but the statistics are close (same distribution).
    let rel = (a.events.total_miss_rate() - b.events.total_miss_rate()).abs()
        / a.events.total_miss_rate();
    assert!(rel < 0.25, "seeds changed the distribution itself: {rel}");
}

#[test]
fn characterisation_is_deterministic() {
    let a = characterize(&spec(3)).unwrap();
    let b = characterize(&spec(3)).unwrap();
    assert_eq!(a.events, b.events);
}

#[test]
fn models_are_pure_functions() {
    let ch = characterize(&spec(4)).unwrap();
    let input = ModelInput::from_characteristics(&ch);
    let model = RingModel::new(RingConfig::standard_500mhz(6), ProtocolKind::Snooping);
    let a = model.evaluate(&input, Time::from_ns(7));
    let b = model.evaluate(&input, Time::from_ns(7));
    assert_eq!(a, b);
}
