//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;

use ringsim::cache::{Cache, CacheConfig, LineState};
use ringsim::ring::{RingConfig, SlotRing};
use ringsim::trace::{RefInterpreter, Workload, WorkloadSpec};
use ringsim::types::rng::Xoshiro256;
use ringsim::types::{AccessKind, BlockAddr, NodeId, Time};

proptest! {
    /// Ring geometry: distances compose and traversal counts are whole.
    #[test]
    fn ring_distance_composition(nodes in 2usize..=64, a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let a = a % nodes;
        let b = b % nodes;
        let c = c % nodes;
        let layout = RingConfig::standard_500mhz(nodes).layout().unwrap();
        let (na, nb, nc) = (NodeId::new(a), NodeId::new(b), NodeId::new(c));
        // Any closed tour is a whole number of revolutions ≥ 1.
        let t = layout.closed_path_traversals(&[na, nb, nc]);
        prop_assert!(t >= 1);
        let s = layout.stages();
        let total = layout.stage_distance(na, nb)
            + layout.stage_distance(nb, nc)
            + layout.stage_distance(nc, na);
        prop_assert_eq!(total % s, 0);
        prop_assert_eq!(total / s, t);
    }

    /// Message conservation on the slotted ring: whatever is inserted is
    /// either still in flight or has been removed.
    #[test]
    fn slot_ring_conserves_messages(seed in 0u64..1000, nodes in 2usize..=16, steps in 50usize..400) {
        let mut ring: SlotRing<u64> = SlotRing::new(RingConfig::standard_500mhz(nodes)).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut next_tag = 0u64;
        let mut outstanding = std::collections::HashSet::new();
        for _ in 0..steps {
            for n in 0..nodes {
                let node = NodeId::new(n);
                if let Some(slot) = ring.arrival(node) {
                    if ring.peek(slot).is_some() {
                        if rng.chance(0.5) {
                            let tag = ring.remove(slot, node);
                            prop_assert!(outstanding.remove(&tag), "removed unknown message");
                        }
                    } else if rng.chance(0.3) {
                        let tag = next_tag;
                        next_tag += 1;
                        if ring.try_insert(slot, node, tag).is_ok() {
                            outstanding.insert(tag);
                        }
                    }
                }
            }
            ring.advance();
        }
        prop_assert_eq!(ring.in_flight(), outstanding.len());
        let st = ring.stats();
        prop_assert_eq!(st.inserted - st.removed, outstanding.len() as u64);
    }

    /// The cache never reports more valid lines than it has slots, and
    /// fills/evictions keep the direct-mapped invariant (at most one block
    /// per line index).
    #[test]
    fn cache_valid_lines_bounded(ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..300)) {
        let cfg = CacheConfig { size_bytes: 1024, block_bytes: 16 }; // 64 lines
        let mut cache = Cache::new(cfg).unwrap();
        for (block, write) in ops {
            let b = BlockAddr::new(block);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            match cache.classify(b, kind) {
                ringsim::cache::AccessClass::Miss => {
                    let st = if write { LineState::We } else { LineState::Rs };
                    cache.fill(b, st);
                }
                ringsim::cache::AccessClass::Upgrade => {
                    cache.promote(b);
                }
                ringsim::cache::AccessClass::Hit => {}
            }
            prop_assert!(cache.valid_lines() <= 64);
        }
        // Every resident block maps to a distinct line index.
        let mut lines: Vec<u64> = cache.resident_blocks().map(|(b, _)| b.raw() % 64).collect();
        let total = lines.len();
        lines.sort_unstable();
        lines.dedup();
        prop_assert_eq!(lines.len(), total);
    }

    /// Interpreter coherence invariants hold for arbitrary seeds and sizes.
    #[test]
    fn interpreter_invariants_hold(seed in 0u64..500, procs in 2usize..=8) {
        let spec = WorkloadSpec::demo(procs).with_refs(1_500).with_seed(seed);
        let mut w = Workload::new(spec).unwrap();
        let mut interp = RefInterpreter::new(procs, w.space()).unwrap();
        for r in w.round_robin(1_000) {
            interp.process(r);
        }
        prop_assert!(interp.check_invariants().is_ok());
    }

    /// Time arithmetic: cycles() and multiplication are consistent.
    #[test]
    fn time_cycle_roundtrip(period_ps in 1u64..100_000, n in 0u64..10_000) {
        let period = Time::from_ps(period_ps);
        let total = period * n;
        prop_assert_eq!(total.cycles(period), n);
        prop_assert!(total.as_ps() == period_ps * n);
    }

    /// Snooping probe inter-arrival (Table 3 closed form) always equals the
    /// frame length times the clock period.
    #[test]
    fn snoop_interarrival_is_frame_time(
        link_pow in 1u32..=3,
        block_pow in 4u32..=7,
        period_ns in 1u64..=8,
    ) {
        let cfg = RingConfig {
            link_bytes: 1 << link_pow,
            block_bytes: 1 << block_pow,
            clock_period: Time::from_ns(period_ns),
            ..RingConfig::standard_500mhz(8)
        };
        prop_assert_eq!(
            cfg.snoop_interarrival().as_ps(),
            cfg.frame_stages() as u64 * cfg.clock_period.as_ps()
        );
    }
}
