//! # ringsim — cache-coherent slotted-ring multiprocessor simulation
//!
//! A Rust reproduction of Barroso & Dubois, *"The Performance of
//! Cache-Coherent Ring-based Multiprocessors"*, ISCA 1993: timed simulators
//! for snooping and full-map-directory coherence on a unidirectional
//! slotted ring, a split-transaction snooping bus baseline, synthetic
//! workloads calibrated to the paper's traces, and the hybrid analytical
//! models used to sweep the design space.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use ringsim::core::{RingSystem, SystemConfig};
//! use ringsim::proto::ProtocolKind;
//! use ringsim::trace::{Workload, WorkloadSpec};
//!
//! let cfg = ringsim::core::SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
//! let workload = Workload::new(WorkloadSpec::demo(8).with_refs(2_000)).unwrap();
//! let report = RingSystem::new(cfg, workload).unwrap().run();
//! assert!(report.proc_util > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared vocabulary types (`ringsim-types`).
pub mod types {
    pub use ringsim_types::*;
}

/// Synthetic workloads and trace characterisation (`ringsim-trace`).
pub mod trace {
    pub use ringsim_trace::*;
}

/// The coherent cache model (`ringsim-cache`).
pub mod cache {
    pub use ringsim_cache::*;
}

/// The slotted-ring interconnect (`ringsim-ring`).
pub mod ring {
    pub use ringsim_ring::*;
}

/// The split-transaction bus (`ringsim-bus`).
pub mod bus {
    pub use ringsim_bus::*;
}

/// Coherence protocol building blocks (`ringsim-proto`).
pub mod proto {
    pub use ringsim_proto::*;
}

/// The exhaustive small-configuration model checker (`ringsim-check`).
pub mod check {
    pub use ringsim_check::*;
}

/// The timed system simulators (`ringsim-core`).
pub mod core {
    pub use ringsim_core::*;
}

/// Observability: latency histograms, gauge timelines, Chrome-trace event
/// recording (`ringsim-obs`).
pub mod obs {
    pub use ringsim_obs::*;
}

/// The analytical models (`ringsim-analytic`).
pub mod analytic {
    pub use ringsim_analytic::*;
}

/// The deterministic parallel sweep engine and `Experiment` API
/// (`ringsim-sweep`).
pub mod sweep {
    pub use ringsim_sweep::*;
}

/// The long-running HTTP experiment service behind `ringsim serve`
/// (`ringsim-serve`).
pub mod serve {
    pub use ringsim_serve::*;
}
