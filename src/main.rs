//! `ringsim` — command-line front end to the simulators and models.
//!
//! ```text
//! ringsim list
//! ringsim characterize --benchmark mp3d --procs 16 [--refs N]
//! ringsim sim   --benchmark mp3d --procs 16 --network ring500 \
//!               [--protocol snooping|directory] [--mips M] [--refs N] \
//!               [--trace-out t.json] [--metrics m.json]
//! ringsim model --benchmark mp3d --procs 16 --network bus100 [--mips M]
//! ringsim experiments [--list] [--only fig3,fig4] [--jobs N] [--refs N] [--out DIR]
//!                     [--metrics m.json]
//! ringsim stats [--trace t.json] [--metrics m.json] [--csv]
//! ringsim check [--all-protocols] [--nodes N] [--blocks B] [--inject FAULT]
//!               [--jobs N] [--stats] [--no-symmetry] [--no-evictions]
//!               [--no-liveness] [--max-states N]
//! ringsim serve [--addr host:port] [--out DIR] [--workers N] [--queue-cap N]
//!               [--sweep-jobs N] [--refs N] [--shards N] [--shard-wait-secs S]
//!               [--gc-max-bytes B] [--gc-max-age-secs S] [--gc-min-age-secs S]
//!               [--gc-interval-secs S]
//! ringsim serve-worker --experiment NAME --refs N --out DIR --cache-dir DIR
//!                      --shard I/N [--jobs N] [--shard-wait-secs S]
//! ```
//!
//! Networks: `ring500`, `ring250` (32-bit slotted rings), `bus50`, `bus100`
//! (64-bit split-transaction buses), and the slotted-ring hierarchies
//! `hier` (two-level), `hier3` (three-level) and `hier-deflect` (finite
//! deflecting bridges); `--topology flat|2level|3level` and
//! `--bridge-buffer N` override either axis of any hierarchy backend.
//! Every network runs through the one [`SimKind`] registry —
//! adding a backend there is all a new network needs to appear here.

use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

use ringsim::analytic::{BusModel, ModelInput, RingModel};
use ringsim::bus::BusConfig;
use ringsim::core::{RunOptions, SimKind, SimSpec};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{characterize, Benchmark};
use ringsim::types::Time;

type CliResult = Result<(), Box<dyn Error>>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // The experiment driver manages its own exit status.
    if cmd == "experiments" {
        return ringsim_bench::cli::run_with(rest);
    }
    let result = match cmd.as_str() {
        "check" => return check_cmd(rest),
        "serve-worker" => return serve_worker_cmd(rest),
        "list" => list(),
        "characterize" => characterize_cmd(rest),
        "sim" => sim_cmd(rest),
        "model" => model_cmd(rest),
        "stats" => stats_cmd(rest),
        "sweep" => sweep_cmd(rest),
        "record" => record_cmd(rest),
        "replay" => replay_cmd(rest),
        "serve" => serve_cmd(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: ringsim <command> [options]

commands:
  list                      the paper's benchmark configurations
  characterize              Table 2-style workload characteristics
  sim                       run a timed system simulation (--sanitize forces the
                            runtime coherence sanitizer on in release builds;
                            --trace-out t.json captures a Chrome trace,
                            --metrics m.json|m.csv exports latency histograms,
                            --ring / --bus / --hier pick the default network
                            variant; --topology and --bridge-buffer shape the
                            hierarchy backends)
  model                     evaluate the analytical model
  stats                     inspect observability artifacts
                            (--trace t.json validates and summarises a Chrome
                            trace; --metrics m.json prints per-class latency
                            tables and, for hierarchy runs, a per-bridge
                            occupancy/deflection table; --csv for
                            machine-readable output)
  sweep                     model sweep over processor cycle 1-20 ns (figure series)
  record                    capture a benchmark trace to a file (--out <path>)
  replay                    simulate a recorded trace (--trace <path>)
  check                     exhaustively model-check the coherence protocols
                            (--all-protocols | --protocol p) (--nodes N) (--blocks B)
                            (--inject none|skip-invalidate|forget-owner|park-busy-forwards
                                     |break-list-link)
                            (--jobs N parallel frontier workers, 0 = auto)
                            (--stats orbit-reduction and rule fire counts)
                            (--no-symmetry explore raw states, no orbit collapse)
                            (--no-evictions | --no-liveness shrink the state space)
                            (--max-states N exploration cap, default 4000000)
  experiments               run the paper-artifact suite
                            (--list | --only a,b) (--jobs N) (--refs N) (--out DIR)
                            (--metrics m.json folds every run's histograms and
                            timelines; --no-cache recomputes every point,
                            --cache-stats prints cache hit/miss counts)
  serve                     long-running HTTP experiment service
                            (--addr host:port, default 127.0.0.1:8080)
                            (--out DIR job storage root, default serve-data)
                            (--workers N concurrent jobs) (--queue-cap N)
                            (--sweep-jobs N threads per sweep, 0 = auto)
                            (--refs N default per-processor reference budget)
                            (--shards N run each job as N serve-worker
                            processes sharing the run cache, 0/1 = in-process)
                            (--shard-wait-secs S peer-wait deadline, default 600)
                            (--gc-max-bytes B | --gc-max-age-secs S artifact
                            retention budget, 0 = unlimited/never)
                            (--gc-min-age-secs S never delete younger runs)
                            (--gc-interval-secs S sweep period, 0 disables);
                            SIGINT drains in-flight jobs and exits 0
  serve-worker              one shard of a sharded serve run (spawned by
                            serve; not for interactive use)
                            (--experiment NAME) (--refs N) (--out DIR)
                            (--cache-dir DIR shared cache root)
                            (--shard I/N) (--jobs N) (--shard-wait-secs S)

options:
  --benchmark <name>        mp3d | water | cholesky | fft | weather | simple
                            (sim defaults to mp3d)
  --procs <n>               processor count (per the paper's sizes)
  --network <net>           ring500 | ring250 | bus50 | bus100 | bus50-mesi |
                            bus50-dragon | sci500 | sci250 | hier | hier3 |
                            hier-deflect
                            (default ring500; sim and replay only accept what
                            the simulator registry lists)
  --topology <t>            flat | 2level | 3level ring tree for the hierarchy
                            backends (sim only; overrides the backend default)
  --bridge-buffer <n>       bridge transfer-queue depth for the hierarchy
                            backends (sim only; a finite depth enables
                            deflection routing, 0 is the bufferless latch)
  --protocol <p>            snooping | directory | sci | mesi | dragon
                            (slotted rings run snooping/directory; sci/mesi/
                            dragon pick the matching --network instead; check
                            accepts all five; default snooping)
  --mips <m>                processor speed in MIPS (default 50)
  --refs <n>                measured references per processor (default 20000)";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, Box<dyn Error>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{key}`").into());
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn benchmark_of(flags: &HashMap<String, String>) -> Result<(Benchmark, usize), Box<dyn Error>> {
    let name = flags.get("benchmark").ok_or("--benchmark is required")?;
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name.to_lowercase())
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `ringsim list`)"))?;
    let procs = match flags.get("procs") {
        Some(p) => p.parse::<usize>()?,
        None => bench.paper_sizes()[0],
    };
    Ok((bench, procs))
}

fn mips_of(flags: &HashMap<String, String>) -> Result<u64, Box<dyn Error>> {
    Ok(flags.get("mips").map_or(Ok(50), |m| m.parse::<u64>())?)
}

fn refs_of(flags: &HashMap<String, String>) -> Result<u64, Box<dyn Error>> {
    Ok(flags.get("refs").map_or(Ok(20_000), |m| m.parse::<u64>())?)
}

fn protocol_of(flags: &HashMap<String, String>) -> Result<ProtocolKind, Box<dyn Error>> {
    match flags.get("protocol").map(String::as_str) {
        None | Some("snooping") => Ok(ProtocolKind::Snooping),
        Some("directory") => Ok(ProtocolKind::Directory),
        Some("sci") => Ok(ProtocolKind::Sci),
        Some("mesi") => Ok(ProtocolKind::Mesi),
        Some("dragon") => Ok(ProtocolKind::Dragon),
        Some(other) => {
            Err(format!("unknown protocol `{other}` (snooping, directory, sci, mesi or dragon)")
                .into())
        }
    }
}

/// `ringsim check`: exhaustive state-space exploration of the coherence
/// protocols on small configurations. Exits non-zero on any violation, with
/// the shortest counterexample trace on stderr.
fn check_cmd(args: &[String]) -> ExitCode {
    match check_cmd_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check_cmd_inner(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    use ringsim::check::{explore, CheckConfig, Fault};

    // Bare switches first; everything else is `--key value`.
    let mut all_protocols = false;
    let mut stats = false;
    let mut no_symmetry = false;
    let mut no_evictions = false;
    let mut no_liveness = false;
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{key}`").into());
        };
        let bare = match name {
            "all-protocols" => Some(&mut all_protocols),
            "stats" => Some(&mut stats),
            "no-symmetry" => Some(&mut no_symmetry),
            "no-evictions" => Some(&mut no_evictions),
            "no-liveness" => Some(&mut no_liveness),
            _ => None,
        };
        if let Some(slot) = bare {
            *slot = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }

    let protocols: Vec<ProtocolKind> = if all_protocols {
        vec![
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
            ProtocolKind::Sci,
            ProtocolKind::Mesi,
            ProtocolKind::Dragon,
        ]
    } else {
        vec![protocol_of(&flags)?]
    };
    let fault: Fault = flags.get("inject").map_or(Ok(Fault::None), |f| f.parse())?;
    // Either one explicit configuration, or the standard small matrix.
    let configs: Vec<(usize, usize)> = match (flags.get("nodes"), flags.get("blocks")) {
        (None, None) => vec![(2, 1), (3, 1), (4, 2)],
        (n, b) => {
            let nodes = n.map_or(Ok(2), |v| v.parse::<usize>())?;
            let blocks = b.map_or(Ok(1), |v| v.parse::<usize>())?;
            vec![(nodes, blocks)]
        }
    };

    let mut failed = false;
    for protocol in &protocols {
        for &(nodes, blocks) in &configs {
            let mut cfg = CheckConfig::new(*protocol, nodes, blocks);
            cfg.fault = fault;
            cfg.stats = stats;
            cfg.symmetry = !no_symmetry;
            cfg.evictions = !no_evictions;
            cfg.check_liveness = !no_liveness;
            if let Some(m) = flags.get("max-states") {
                cfg.max_states = m.parse()?;
            }
            if let Some(j) = flags.get("jobs") {
                cfg.jobs = j.parse()?;
            }
            let report = explore(&cfg)?;
            println!("{report}");
            if let Some(s) = &report.stats {
                for line in s.render(report.states, *protocol) {
                    println!("{line}");
                }
            }
            if let Some(v) = &report.violation {
                failed = true;
                eprintln!("{v}");
            }
        }
    }
    Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn list() -> CliResult {
    println!("benchmark     paper sizes");
    for b in Benchmark::ALL {
        println!("{:<12}  {:?}", b.name(), b.paper_sizes());
    }
    Ok(())
}

fn characterize_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let (bench, procs) = benchmark_of(&flags)?;
    let spec = bench.spec(procs)?.with_refs(refs_of(&flags)?);
    let ch = characterize(&spec)?;
    let e = ch.events;
    println!("{} on {procs} processors ({} data refs measured)", spec.name, e.data_refs());
    println!("  total miss rate   : {:6.2} %", 100.0 * e.total_miss_rate());
    println!("  shared miss rate  : {:6.2} %", 100.0 * e.shared_miss_rate());
    println!("  private miss rate : {:6.2} %", 100.0 * e.private_miss_rate());
    println!(
        "  shared refs       : {:6.1} %",
        100.0 * e.shared_refs() as f64 / e.data_refs() as f64
    );
    println!("  shared writes     : {:6.1} %", 100.0 * e.shared_write_frac());
    println!("  dirty-miss frac   : {:6.1} %", 100.0 * e.dirty_miss_frac());
    let total = e.remote_misses().max(1) as f64;
    println!(
        "  fig5 classes      : {:4.1}% 1-cycle clean, {:4.1}% 1-cycle dirty, {:4.1}% 2-cycle",
        100.0 * e.fig5_one_cycle_clean() as f64 / total,
        100.0 * e.fig5_one_cycle_dirty() as f64 / total,
        100.0 * e.fig5_two_cycle() as f64 / total,
    );
    Ok(())
}

/// Resolves a `--network` value against the simulator registry. The typed
/// [`ringsim::core::SimKindError`] already names the valid spellings (and
/// the candidates, for an ambiguous prefix), so it is surfaced verbatim.
fn network_of(name: &str) -> Result<SimKind, Box<dyn Error>> {
    name.parse::<SimKind>().map_err(Into::into)
}

fn sim_cmd(args: &[String]) -> CliResult {
    // Bare flags (`--sanitize`, `--ring`, `--bus`, `--hier`) are stripped
    // before key-value parsing.
    let mut bare = Vec::new();
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let is_bare = matches!(a.as_str(), "--sanitize" | "--ring" | "--bus" | "--hier");
            if is_bare {
                bare.push(a.as_str().to_owned());
            }
            !is_bare
        })
        .cloned()
        .collect();
    if bare.iter().any(|a| a == "--sanitize") {
        ringsim::core::set_sanitize_mode(ringsim::core::SanitizeMode::On);
    }
    let mut flags = parse_flags(&args)?;
    // `sim` is the observability quick-start entry point, so it works bare:
    // benchmark defaults to mp3d, `--ring` / `--bus` / `--hier` pick the
    // default network variants.
    flags.entry("benchmark".to_owned()).or_insert_with(|| "mp3d".to_owned());
    if !flags.contains_key("network") {
        for (flag, net) in [("--bus", "bus100"), ("--ring", "ring500"), ("--hier", "hier")] {
            if bare.iter().any(|a| a == flag) {
                flags.insert("network".to_owned(), net.to_owned());
                break;
            }
        }
    }
    let (bench, procs) = benchmark_of(&flags)?;
    let mips = mips_of(&flags)?;
    let proc_cycle = Time::from_ps(1_000_000 / mips);
    let spec = bench.spec(procs)?.with_refs(refs_of(&flags)?);
    let workload = ringsim::trace::Workload::new(spec)?;
    let kind = network_of(flags.get("network").map_or("ring500", String::as_str))?;
    let mut sim_spec =
        SimSpec::new(workload).with_protocol(protocol_of(&flags)?).with_proc_cycle(proc_cycle);
    for flag in ["topology", "bridge-buffer"] {
        if flags.contains_key(flag) && !kind.is_hier() {
            return Err(format!(
                "--{flag} only applies to the hierarchy backends \
                 (hier, hier3, hier-deflect), not `{}`",
                kind.name()
            )
            .into());
        }
    }
    if let Some(t) = flags.get("topology") {
        sim_spec = sim_spec.with_topology(t.parse::<ringsim::core::HierTopology>()?);
    }
    if let Some(d) = flags.get("bridge-buffer") {
        sim_spec = sim_spec.with_bridge_buffer(d.parse::<usize>()?);
    }
    let mut sim = kind.build(&sim_spec)?;
    let want_obs = flags.contains_key("trace-out") || flags.contains_key("metrics");
    let opts = RunOptions { obs: want_obs.then(ringsim::obs::ObsConfig::default) };
    let outcome = sim.run(&opts);
    let (report, recorder) = (outcome.report, outcome.obs);
    println!("{} on {}, {procs} processors at {mips} MIPS", bench.name(), kind.name());
    println!("  protocol              : {}", report.protocol);
    println!("  simulated time        : {}", report.sim_end);
    println!("  processor utilisation : {:5.1} %", 100.0 * report.proc_util);
    println!("  network utilisation   : {:5.1} %", 100.0 * report.ring_util);
    println!("  mean miss latency     : {:5.0} ns", report.miss_latency_ns());
    if let (Some(p50), Some(p95)) =
        (report.miss_latency_percentile(0.5), report.miss_latency_percentile(0.95))
    {
        println!("  miss latency p50/p95  : {p50:5.0} / {p95:.0} ns");
    }
    println!("  mean upgrade latency  : {:5.0} ns", report.upgrade_latency.mean());
    println!("  misses / upgrades     : {} / {}", report.events.misses(), report.events.upgrades());
    if let Some(path) = flags.get("trace-out") {
        let rec = recorder.as_ref().expect("recorder attached when --trace-out given");
        std::fs::write(path, rec.trace.to_chrome_json())?;
        let dropped = if rec.trace.dropped() > 0 {
            format!(", {} dropped", rec.trace.dropped())
        } else {
            String::new()
        };
        println!("  trace                 : {path} ({} events{dropped})", rec.trace.len());
    }
    if let Some(path) = flags.get("metrics") {
        let summary = report.metrics_summary();
        if path.ends_with(".csv") {
            std::fs::write(path, summary.to_csv())?;
        } else {
            let timelines = recorder.map(|r| r.timelines).unwrap_or_default();
            let file = ringsim::obs::MetricsFile { summary, timelines };
            std::fs::write(path, file.to_json())?;
        }
        println!("  metrics               : {path}");
    }
    Ok(())
}

/// `ringsim stats`: offline inspection of observability artifacts.
///
/// `--trace <path>` parses a Chrome `trace_event` file, validates that every
/// event has the required `ph`/`ts`/`pid` fields, and prints a summary;
/// `--metrics <path>` rebuilds the per-class latency histograms and prints
/// them as a table (or CSV with the bare `--csv` flag).
fn stats_cmd(args: &[String]) -> CliResult {
    use ringsim::obs::{hist_from_json, json, MetricsSummary};

    let (csv, args): (Vec<_>, Vec<_>) = args.iter().cloned().partition(|a| a == "--csv");
    let csv = !csv.is_empty();
    let flags = parse_flags(&args)?;
    if !flags.contains_key("trace") && !flags.contains_key("metrics") {
        return Err("stats needs --trace <path> and/or --metrics <path>".into());
    }
    if let Some(path) = flags.get("trace") {
        let text = std::fs::read_to_string(path)?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .ok_or_else(|| format!("{path}: missing `traceEvents` array"))?;
        let mut spans = 0u64;
        let mut instants = 0u64;
        for (i, ev) in events.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(json::JsonValue::as_str)
                .ok_or_else(|| format!("{path}: event {i} missing `ph`"))?;
            ev.get("ts")
                .and_then(json::JsonValue::as_f64)
                .ok_or_else(|| format!("{path}: event {i} missing numeric `ts`"))?;
            ev.get("pid")
                .and_then(json::JsonValue::as_u64)
                .ok_or_else(|| format!("{path}: event {i} missing `pid`"))?;
            match ph {
                "X" => spans += 1,
                "i" => instants += 1,
                _ => {}
            }
        }
        let dropped = doc.get("droppedEvents").and_then(json::JsonValue::as_u64).unwrap_or(0);
        println!(
            "{path}: valid Chrome trace — {} events ({spans} spans, {instants} instants, {dropped} dropped)",
            events.len()
        );
        if dropped > 0 {
            eprintln!(
                "warning: {path}: {dropped} event(s) were dropped at capture time — \
                 the trace is incomplete (raise the recorder's trace capacity)"
            );
        }
    }
    if let Some(path) = flags.get("metrics") {
        let text = std::fs::read_to_string(path)?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let summary = doc.get("summary").unwrap_or(&doc);
        let mut rebuilt = MetricsSummary {
            runs: summary.get("runs").and_then(json::JsonValue::as_u64).unwrap_or(0),
            ..Default::default()
        };
        for (name, slot) in [
            ("miss", &mut rebuilt.miss),
            ("upgrade", &mut rebuilt.upgrade),
            ("local", &mut rebuilt.local),
            ("clean_remote", &mut rebuilt.clean_remote),
            ("dirty", &mut rebuilt.dirty),
        ] {
            let v = summary
                .get(name)
                .ok_or_else(|| format!("{path}: missing `summary.{name}` histogram"))?;
            *slot =
                hist_from_json(v).ok_or_else(|| format!("{path}: malformed `{name}` histogram"))?;
        }
        if csv {
            print!("{}", rebuilt.to_csv());
        } else {
            println!("{path}: {} run(s)", rebuilt.runs);
            println!(
                "  {:<14} {:>9} {:>10} {:>9} {:>9} {:>9}",
                "class", "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns"
            );
            for (name, h) in rebuilt.classes() {
                if h.count() == 0 {
                    continue;
                }
                println!(
                    "  {:<14} {:>9} {:>10.1} {:>9.0} {:>9.0} {:>9.0}",
                    name,
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                );
            }
        }
        if let Some(timelines) = doc.get("timelines").and_then(json::JsonValue::as_array) {
            for tl in timelines {
                if tl.get("name").and_then(json::JsonValue::as_str) == Some("bridges") {
                    print_bridge_stats(path, tl, csv)?;
                }
            }
        }
    }
    Ok(())
}

/// Fraction of bridge arbitrations lost above which `stats` warns that the
/// bridge buffer is undersized for the workload.
const DEFLECTION_WARN_RATE: f64 = 0.10;

/// Renders the per-bridge table from a hierarchy run's `bridges` gauge
/// timeline (columns `L{level}R{ring}_{occ|defl|xfer}`): occupancy p95 over
/// the sampled rows plus the final cumulative deflection/transfer counters.
/// Warns loudly when a bridge deflected more than 10% of its arbitrations.
fn print_bridge_stats(path: &str, tl: &ringsim::obs::json::JsonValue, csv: bool) -> CliResult {
    use ringsim::obs::json::JsonValue;

    let columns: Vec<&str> = tl
        .get("columns")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{path}: `bridges` timeline missing `columns`"))?
        .iter()
        .map(|c| c.as_str().unwrap_or_default())
        .collect();
    let rows = tl
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{path}: `bridges` timeline missing `rows`"))?;
    let value_at = |row: &JsonValue, idx: usize| {
        row.get("values")
            .and_then(JsonValue::as_array)
            .and_then(|v| v.get(idx))
            .and_then(JsonValue::as_f64)
    };
    if csv {
        println!("bridge,occ_p95,deflections,transfers,defl_rate");
    } else {
        println!("{path}: bridge gauges ({} sampled rows)", rows.len());
        println!(
            "  {:<10} {:>9} {:>12} {:>12} {:>10}",
            "bridge", "occ_p95", "deflections", "transfers", "defl_rate"
        );
    }
    let mut warned = Vec::new();
    for (idx, col) in columns.iter().enumerate() {
        let Some(bridge) = col.strip_suffix("_occ") else { continue };
        // The occupancy gauge is instantaneous; deflections/transfers are
        // cumulative, so their final row holds the run totals.
        let mut occ: Vec<f64> = rows.iter().filter_map(|r| value_at(r, idx)).collect();
        occ.sort_by(f64::total_cmp);
        let occ_p95 = if occ.is_empty() {
            0.0
        } else {
            occ[((occ.len() as f64 * 0.95).ceil() as usize).clamp(1, occ.len()) - 1]
        };
        let find = |suffix: &str| {
            let name = format!("{bridge}{suffix}");
            columns
                .iter()
                .position(|c| **c == name)
                .and_then(|i| rows.last().and_then(|r| value_at(r, i)))
        };
        let defl = find("_defl").unwrap_or(0.0);
        let xfer = find("_xfer").unwrap_or(0.0);
        let rate = if defl + xfer > 0.0 { defl / (defl + xfer) } else { 0.0 };
        if csv {
            println!("{bridge},{occ_p95},{defl},{xfer},{rate}");
        } else {
            println!(
                "  {:<10} {:>9.1} {:>12.0} {:>12.0} {:>9.1}%",
                bridge,
                occ_p95,
                defl,
                xfer,
                100.0 * rate
            );
        }
        if rate > DEFLECTION_WARN_RATE {
            warned.push((bridge, rate));
        }
    }
    for (bridge, rate) in warned {
        eprintln!(
            "warning: {path}: bridge {bridge} deflected {:.1}% of its arbitrations \
             (> {:.0}%) — the transfer queue is undersized for this workload \
             (raise --bridge-buffer)",
            100.0 * rate,
            100.0 * DEFLECTION_WARN_RATE
        );
    }
    Ok(())
}

/// `ringsim serve`: the long-running HTTP experiment service (see
/// `ringsim::serve`). Blocks until SIGINT/SIGTERM or `POST /shutdown`,
/// drains in-flight jobs, then returns cleanly.
fn serve_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let mut cfg = ringsim::serve::ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    }
    if let Some(out) = flags.get("out") {
        cfg.out_dir = out.into();
    }
    if let Some(w) = flags.get("workers") {
        cfg.workers = w.parse::<usize>()?.max(1);
    }
    if let Some(q) = flags.get("queue-cap") {
        cfg.queue_cap = q.parse::<usize>()?;
    }
    if let Some(j) = flags.get("sweep-jobs") {
        cfg.sweep_jobs = j.parse::<usize>()?;
    }
    if let Some(r) = flags.get("refs") {
        cfg.default_refs = r.parse::<u64>()?;
    }
    if let Some(s) = flags.get("shards") {
        cfg.shards = s.parse::<usize>()?;
    }
    if let Some(s) = flags.get("shard-wait-secs") {
        cfg.shard_wait = std::time::Duration::from_secs(s.parse::<u64>()?);
    }
    if let Some(b) = flags.get("gc-max-bytes") {
        cfg.gc_max_bytes = b.parse::<u64>()?;
    }
    if let Some(s) = flags.get("gc-max-age-secs") {
        cfg.gc_max_age = std::time::Duration::from_secs(s.parse::<u64>()?);
    }
    if let Some(s) = flags.get("gc-min-age-secs") {
        cfg.gc_min_age = std::time::Duration::from_secs(s.parse::<u64>()?);
    }
    if let Some(s) = flags.get("gc-interval-secs") {
        cfg.gc_interval = std::time::Duration::from_secs(s.parse::<u64>()?);
    }
    ringsim::serve::run(cfg)?;
    Ok(())
}

/// `ringsim serve-worker`: one shard of a sharded serve run. Spawned by the
/// serve coordinator — executes its shard of the sweep against the shared
/// run cache and streams `@ringsim-progress` protocol lines on stdout.
fn serve_worker_cmd(args: &[String]) -> ExitCode {
    match serve_worker_spec(args) {
        Ok(spec) => match ringsim::serve::worker::run_worker(&spec) {
            0 => ExitCode::SUCCESS,
            _ => ExitCode::FAILURE,
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_worker_spec(
    args: &[String],
) -> Result<ringsim::serve::worker::WorkerSpec, Box<dyn Error>> {
    let flags = parse_flags(args)?;
    let need =
        |key: &str| flags.get(key).cloned().ok_or_else(|| format!("serve-worker needs --{key}"));
    Ok(ringsim::serve::worker::WorkerSpec {
        experiment: need("experiment")?,
        refs: need("refs")?.parse::<u64>()?,
        out_dir: need("out")?.into(),
        cache_dir: need("cache-dir")?.into(),
        shard: need("shard")?.parse::<ringsim::sweep::Shard>()?,
        jobs: flags.get("jobs").map_or(Ok(0), |j| j.parse::<usize>())?,
        shard_wait: std::time::Duration::from_secs(
            flags.get("shard-wait-secs").map_or(Ok(600), |s| s.parse::<u64>())?,
        ),
    })
}

fn record_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let (bench, procs) = benchmark_of(&flags)?;
    let out = flags.get("out").ok_or("--out <path> is required")?;
    let spec = bench.spec(procs)?.with_refs(refs_of(&flags)?);
    let trace = ringsim::trace::RecordedTrace::capture(&spec)?;
    trace.save(out)?;
    println!(
        "recorded {} references ({} per processor) to {out}",
        trace.total_refs(),
        trace.total_refs() / procs as u64
    );
    Ok(())
}

fn replay_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let path = flags.get("trace").ok_or("--trace <path> is required")?;
    let trace = ringsim::trace::RecordedTrace::load(path)?;
    let procs = trace.procs();
    let mips = mips_of(&flags)?;
    let proc_cycle = Time::from_ps(1_000_000 / mips);
    let kind = network_of(flags.get("network").map_or("ring500", String::as_str))?;
    if kind.is_hier() {
        return Err(format!(
            "the hierarchy backends are transaction-level and cannot \
             replay reference traces (use sim --network {})",
            kind.name()
        )
        .into());
    }
    let spec = SimSpec::new(trace.workload())
        .with_protocol(protocol_of(&flags)?)
        .with_proc_cycle(proc_cycle);
    let mut sim = kind.build(&spec)?;
    let report = sim.run(&RunOptions::default()).report;
    println!("replayed {path} on {} ({procs} processors at {mips} MIPS)", kind.name());
    println!("  protocol              : {}", report.protocol);
    println!("  processor utilisation : {:5.1} %", 100.0 * report.proc_util);
    println!("  network utilisation   : {:5.1} %", 100.0 * report.ring_util);
    println!("  mean miss latency     : {:5.0} ns", report.miss_latency_ns());
    Ok(())
}

fn sweep_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let (bench, procs) = benchmark_of(&flags)?;
    let spec = bench.spec(procs)?.with_refs(refs_of(&flags)?);
    let ch = characterize(&spec)?;
    let input = ModelInput::from_characteristics(&ch);
    let network = flags.get("network").map_or("ring500", String::as_str);
    println!("# {} on {network}, {procs} processors — model sweep", bench.name());
    println!("# proc_cycle_ns proc_util_pct net_util_pct miss_latency_ns");
    let points: Vec<(u64, f64, f64, f64)> = match network {
        "ring500" | "ring250" => {
            let protocol = protocol_of(&flags)?;
            let ring = if network == "ring500" {
                RingConfig::standard_500mhz(procs)
            } else {
                RingConfig::standard_250mhz(procs)
            };
            RingModel::new(ring, protocol)
                .sweep(&input, 1, 20)
                .into_iter()
                .map(|(t, o)| (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns))
                .collect()
        }
        "bus50" | "bus100" => {
            let bus = if network == "bus100" {
                BusConfig::bus_100mhz(procs)
            } else {
                BusConfig::bus_50mhz(procs)
            };
            BusModel::new(bus)
                .sweep(&input, 1, 20)
                .into_iter()
                .map(|(t, o)| (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns))
                .collect()
        }
        other => return Err(format!("unknown network `{other}`").into()),
    };
    for (ns, u, n, l) in points {
        println!("{ns:2} {:6.2} {:6.2} {l:8.1}", 100.0 * u, 100.0 * n);
    }
    Ok(())
}

fn model_cmd(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let (bench, procs) = benchmark_of(&flags)?;
    let mips = mips_of(&flags)?;
    let proc_cycle = Time::from_ps(1_000_000 / mips);
    let spec = bench.spec(procs)?.with_refs(refs_of(&flags)?);
    let ch = characterize(&spec)?;
    let input = ModelInput::from_characteristics(&ch);
    let network = flags.get("network").map_or("ring500", String::as_str);
    let out = match network {
        "ring500" | "ring250" => {
            let protocol = protocol_of(&flags)?;
            let ring = if network == "ring500" {
                RingConfig::standard_500mhz(procs)
            } else {
                RingConfig::standard_250mhz(procs)
            };
            RingModel::new(ring, protocol).evaluate(&input, proc_cycle)
        }
        "bus50" | "bus100" => {
            let bus = if network == "bus100" {
                BusConfig::bus_100mhz(procs)
            } else {
                BusConfig::bus_50mhz(procs)
            };
            BusModel::new(bus).evaluate(&input, proc_cycle)
        }
        other => return Err(format!("unknown network `{other}`").into()),
    };
    println!("analytical model: {} on {network}, {procs} processors at {mips} MIPS", bench.name());
    println!("  processor utilisation : {:5.1} %", 100.0 * out.proc_util);
    println!("  network utilisation   : {:5.1} %", 100.0 * out.net_util);
    println!("  mean miss latency     : {:5.0} ns", out.miss_latency_ns);
    println!("  converged             : {} ({} iterations)", out.converged, out.iterations);
    Ok(())
}
