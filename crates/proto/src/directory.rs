use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ringsim_types::{BlockAddr, NodeId};

/// One full-map directory entry: presence bits and a dirty bit (paper §3.2).
///
/// The presence bits are a `u64` mask (the paper evaluates up to 64
/// processors). When `owner` is set the block is dirty in that cache and the
/// presence bits list exactly that node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Bitmask of nodes holding a valid copy.
    pub sharers: u64,
    /// Write-exclusive holder, if the block is dirty.
    pub owner: Option<NodeId>,
}

impl DirEntry {
    /// Presence-bit mask for `node`, checked against the map width.
    ///
    /// A full-map entry has exactly 64 presence bits; shifting by a larger
    /// index would silently wrap in release builds (`1u64 << 65 == 2`), so a
    /// 65-node misconfiguration must fail loudly here instead.
    #[must_use]
    pub fn mask(node: NodeId) -> u64 {
        debug_assert!(node.index() < 64, "{node} exceeds the 64-bit full-map presence mask");
        1u64 << (node.index() % 64)
    }

    /// Presence bit for `node`.
    #[must_use]
    pub fn has_sharer(&self, node: NodeId) -> bool {
        self.sharers & Self::mask(node) != 0
    }

    /// Whether any node other than `node` holds a copy.
    #[must_use]
    pub fn has_other_sharers(&self, node: NodeId) -> bool {
        self.sharers & !Self::mask(node) != 0
    }

    /// Nodes holding a copy, excluding `node`.
    #[must_use]
    pub fn other_sharers(&self, node: NodeId) -> u64 {
        self.sharers & !Self::mask(node)
    }

    /// Number of sharers.
    #[must_use]
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// `true` when no cache holds the block.
    #[must_use]
    pub fn is_uncached(&self) -> bool {
        self.sharers == 0
    }
}

/// The full-map directory of the whole system, plus the busy/pending queue
/// that the timed simulator uses to serialise transactions that touch the
/// same block.
///
/// Entries are stored sparsely: a block nobody ever cached has an implicit
/// all-clear entry. The directory is *logically* distributed across the home
/// nodes; storing it in one map is an implementation convenience — every
/// access in the simulator goes through the block's home node.
///
/// # Examples
///
/// ```
/// use ringsim_proto::Directory;
/// use ringsim_types::{BlockAddr, NodeId};
///
/// let mut dir = Directory::new(16);
/// let b = BlockAddr::new(3);
/// dir.add_sharer(b, NodeId::new(4));
/// dir.add_sharer(b, NodeId::new(9));
/// assert_eq!(dir.entry(b).sharer_count(), 2);
/// dir.set_owner(b, NodeId::new(4));
/// assert_eq!(dir.entry(b).owner, Some(NodeId::new(4)));
/// assert!(!dir.entry(b).has_sharer(NodeId::new(9)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Directory {
    nodes: usize,
    entries: HashMap<u64, DirEntry>,
    /// Blocks with a transaction in flight at the home; fields are managed
    /// by the timed simulator.
    busy: HashMap<u64, bool>,
}

impl Directory {
    /// Creates an empty directory for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0 or exceeds 64 (the presence-bit width).
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!((1..=64).contains(&nodes), "full map supports 1..=64 nodes");
        Self { nodes, entries: HashMap::new(), busy: HashMap::new() }
    }

    /// The entry for `block` (all-clear if never cached).
    #[must_use]
    pub fn entry(&self, block: BlockAddr) -> DirEntry {
        self.entries.get(&block.raw()).copied().unwrap_or_default()
    }

    /// Adds `node` to the presence bits.
    pub fn add_sharer(&mut self, block: BlockAddr, node: NodeId) {
        assert!(node.index() < self.nodes, "{node} out of range");
        let e = self.entries.entry(block.raw()).or_default();
        e.sharers |= DirEntry::mask(node);
    }

    /// Removes `node` from the presence bits; clears the owner if `node`
    /// owned the block. Returns the updated entry.
    pub fn remove_sharer(&mut self, block: BlockAddr, node: NodeId) -> DirEntry {
        let e = self.entries.entry(block.raw()).or_default();
        e.sharers &= !DirEntry::mask(node);
        if e.owner == Some(node) {
            e.owner = None;
        }
        let snapshot = *e;
        if snapshot == DirEntry::default() {
            self.entries.remove(&block.raw());
        }
        snapshot
    }

    /// Makes `node` the write-exclusive owner (presence bits collapse to
    /// that node).
    pub fn set_owner(&mut self, block: BlockAddr, node: NodeId) {
        assert!(node.index() < self.nodes, "{node} out of range");
        let e = self.entries.entry(block.raw()).or_default();
        e.owner = Some(node);
        e.sharers = DirEntry::mask(node);
    }

    /// Clears the dirty state after a downgrade (`keep` nodes remain
    /// sharers).
    pub fn clear_owner(&mut self, block: BlockAddr) {
        if let Some(e) = self.entries.get_mut(&block.raw()) {
            e.owner = None;
        }
    }

    /// Marks the home-side entry busy. Returns `false` if it was already
    /// busy (the caller must queue the request).
    pub fn try_lock(&mut self, block: BlockAddr) -> bool {
        let b = self.busy.entry(block.raw()).or_insert(false);
        if *b {
            false
        } else {
            *b = true;
            true
        }
    }

    /// Whether the entry is busy.
    #[must_use]
    pub fn is_locked(&self, block: BlockAddr) -> bool {
        self.busy.get(&block.raw()).copied().unwrap_or(false)
    }

    /// Releases a busy entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry was not busy (lock/unlock mismatch is a protocol
    /// bug).
    pub fn unlock(&mut self, block: BlockAddr) {
        let b = self.busy.remove(&block.raw());
        assert_eq!(b, Some(true), "unlock of non-busy entry {block}");
    }

    /// Number of tracked (non-default) entries.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over all tracked entries.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, DirEntry)> + '_ {
        self.entries.iter().map(|(&raw, &e)| (BlockAddr::new(raw), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bits() {
        let mut d = Directory::new(8);
        let b = BlockAddr::new(1);
        d.add_sharer(b, NodeId::new(2));
        d.add_sharer(b, NodeId::new(5));
        let e = d.entry(b);
        assert!(e.has_sharer(NodeId::new(2)));
        assert!(e.has_sharer(NodeId::new(5)));
        assert!(!e.has_sharer(NodeId::new(3)));
        assert!(e.has_other_sharers(NodeId::new(2)));
        assert_eq!(e.other_sharers(NodeId::new(2)), 1 << 5);
    }

    #[test]
    fn owner_collapses_sharers() {
        let mut d = Directory::new(8);
        let b = BlockAddr::new(2);
        d.add_sharer(b, NodeId::new(1));
        d.add_sharer(b, NodeId::new(3));
        d.set_owner(b, NodeId::new(3));
        let e = d.entry(b);
        assert_eq!(e.owner, Some(NodeId::new(3)));
        assert_eq!(e.sharer_count(), 1);
        assert!(e.has_sharer(NodeId::new(3)));
    }

    #[test]
    fn remove_sharer_clears_owner() {
        let mut d = Directory::new(8);
        let b = BlockAddr::new(3);
        d.set_owner(b, NodeId::new(4));
        let e = d.remove_sharer(b, NodeId::new(4));
        assert_eq!(e.owner, None);
        assert!(e.is_uncached());
        assert_eq!(d.tracked_blocks(), 0, "default entries are reclaimed");
    }

    #[test]
    fn lock_unlock_cycle() {
        let mut d = Directory::new(4);
        let b = BlockAddr::new(9);
        assert!(d.try_lock(b));
        assert!(!d.try_lock(b));
        assert!(d.is_locked(b));
        d.unlock(b);
        assert!(!d.is_locked(b));
        assert!(d.try_lock(b));
    }

    #[test]
    #[should_panic(expected = "unlock of non-busy")]
    fn unlock_requires_lock() {
        let mut d = Directory::new(4);
        d.unlock(BlockAddr::new(1));
    }

    #[test]
    fn mask_matches_bit_position() {
        for i in [0usize, 1, 7, 63] {
            assert_eq!(DirEntry::mask(NodeId::new(i)), 1u64 << i);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the 64-bit full-map presence mask")]
    fn mask_rejects_out_of_range_node() {
        let _ = DirEntry::mask(NodeId::new(64));
    }

    #[test]
    fn clear_owner_keeps_sharers() {
        let mut d = Directory::new(4);
        let b = BlockAddr::new(5);
        d.set_owner(b, NodeId::new(1));
        d.add_sharer(b, NodeId::new(2));
        d.clear_owner(b);
        let e = d.entry(b);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharer_count(), 2);
    }
}
