//! Guarded-action protocol specification.
//!
//! Every coherence decision both protocols make is expressed here as a
//! declarative rule set — named `Rule { guard, action }` pairs over a small
//! context struct — in the style of guarded-action protocol languages
//! (cf. *Modeling a Cache Coherence Protocol with the Guarded Action
//! Language*). The pure dispatch functions in [`crate::transitions`] are
//! thin wrappers over these rule sets, so the rules are the single source
//! of truth for the timed simulators *and* the `ringsim-check` model
//! checker.
//!
//! The declarative form buys two kinds of static analysis:
//!
//! * [`lint`] enumerates each rule set's whole input domain and proves
//!   **totality** (every context matches at least one rule) and
//!   **determinism** (no two rules with different actions match the same
//!   context) — the guarded-action analogue of Rust's own `match`
//!   exhaustiveness, but over *semantic* domains the type system cannot
//!   see (directory entry shapes, snoopable message kinds).
//! * [`FireCounts`] records how often each rule fires during an exhaustive
//!   model-checking run; a rule that never fires at 4 nodes is dead weight
//!   or a reachability bug, and `tests/lint_protocol_tables.rs` gates on
//!   it (`ringsim check --stats` prints the same counts).
//!
//! New protocols (MESI, Dragon, SCI) add rule sets here and inherit the
//! lint and the dead-rule gate for free instead of hand-wiring checker
//! tables.

use std::sync::atomic::{AtomicU64, Ordering};

use ringsim_cache::LineState;
use ringsim_types::NodeId;

use crate::sci::{SciAction, SciRequest};
use crate::transitions::{
    BusOp, DirAction, DirRequest, DragonAction, HomeSnoopAction, MesiAction, SnoopAction,
};
use crate::{DirEntry, MsgKind, ProtocolKind};

/// One guarded action: when `guard` holds on the context, the transition
/// takes `action`.
///
/// Rules carry a stable `name` (used by `--stats` and the dead-rule gate)
/// and the protocol whose runs are expected to fire them.
pub struct Rule<C: 'static, A: 'static> {
    /// Stable identifier, kebab-case, unique within its rule set.
    pub name: &'static str,
    /// Which protocol's exhaustive runs must fire this rule (dead-rule
    /// accounting); the rule itself is protocol-agnostic at evaluation
    /// time.
    pub fires_under: ProtocolKind,
    /// Enabling condition over the context.
    pub guard: fn(&C) -> bool,
    /// Action taken when the guard holds.
    pub action: fn(&C) -> A,
}

/// A named, ordered collection of guarded rules over one context type.
pub struct RuleSet<C: 'static, A: 'static> {
    /// Rule-set name, used in lint findings and stats output.
    pub name: &'static str,
    /// The rules, in evaluation order.
    pub rules: &'static [Rule<C, A>],
}

impl<C, A: PartialEq + core::fmt::Debug> RuleSet<C, A> {
    /// Evaluates the rule set on `ctx`: the first rule whose guard holds
    /// supplies the action. Optionally bumps the matching rule's fire
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics when no rule matches — [`lint`] proves totality over the
    /// declared domain, so a panic here means the context is outside it.
    pub fn eval(&self, ctx: &C, counts: Option<&[AtomicU64]>) -> A {
        for (i, rule) in self.rules.iter().enumerate() {
            if (rule.guard)(ctx) {
                if let Some(counts) = counts {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
                return (rule.action)(ctx);
            }
        }
        panic!("rule set `{}` is not total: no rule matched", self.name)
    }

    /// Lints the rule set over an enumerated domain: totality (every
    /// context matches) and determinism (all matching rules agree on the
    /// action). Returns human-readable findings; empty means clean.
    pub fn lint_over<I>(&self, domain: I, describe: fn(&C) -> String) -> Vec<String>
    where
        I: IntoIterator<Item = C>,
    {
        let mut findings = Vec::new();
        for ctx in domain {
            let matching: Vec<&Rule<C, A>> =
                self.rules.iter().filter(|r| (r.guard)(&ctx)).collect();
            match matching.split_first() {
                None => findings.push(format!(
                    "{}: no rule matches {} (totality hole)",
                    self.name,
                    describe(&ctx)
                )),
                Some((first, rest)) => {
                    let action = (first.action)(&ctx);
                    for other in rest {
                        let conflicting = (other.action)(&ctx);
                        if conflicting != action {
                            findings.push(format!(
                                "{}: rules `{}` and `{}` overlap on {} with conflicting \
                                 actions {action:?} vs {conflicting:?}",
                                self.name,
                                first.name,
                                other.name,
                                describe(&ctx)
                            ));
                        }
                    }
                }
            }
        }
        findings
    }
}

// --------------------------------------------------------------- contexts

/// Context for the cache-side snoop rules: a line in `state` observes a
/// snooped message of kind `msg` passing the ring interface.
#[derive(Debug, Clone, Copy)]
pub struct SnoopCtx {
    /// The local line state.
    pub state: LineState,
    /// The snooped message kind (a probe or the directory's multicast
    /// invalidation — see [`is_snooped`]).
    pub msg: MsgKind,
}

/// Context for the snooping home-memory rules: a probe of kind `msg`
/// passes the block's home whose dirty bit is `dirty`.
#[derive(Debug, Clone, Copy)]
pub struct HomeCtx {
    /// The home's dirty bit for the block.
    pub dirty: bool,
    /// The probe kind (see [`is_probe`]).
    pub msg: MsgKind,
}

/// Context for the full-map directory dispatch rules: an admitted request
/// `req` from `requester` against directory entry `entry`.
#[derive(Debug, Clone, Copy)]
pub struct DirCtx {
    /// The block's directory entry (after write-back reclaim handling).
    pub entry: DirEntry,
    /// The requesting node.
    pub requester: NodeId,
    /// The admitted request (after upgrade demotion).
    pub req: DirRequest,
}

/// Context for the SCI linked-list home dispatch rules: an admitted
/// request against the block's sharing list.
#[derive(Debug, Clone, Copy)]
pub struct SciCtx {
    /// The admitted request (upgrades are converted to writes before
    /// dispatch when the requester's copy was purged while queued).
    pub req: SciRequest,
    /// Current sharing-list length.
    pub list_len: usize,
    /// The requester is on the list (always true for upgrades and
    /// rollouts after conversion, always false for misses).
    pub requester_in_list: bool,
}

/// Context for the MESI and Dragon bus rules: an operation admitted at the
/// bus's serialisation point, summarised by what the snoop would find.
#[derive(Debug, Clone, Copy)]
pub struct BusCtx {
    /// The admitted operation (upgrades demoted to write misses when the
    /// requester's copy was invalidated while waiting).
    pub op: BusOp,
    /// Some *other* cache holds a valid copy.
    pub others_valid: bool,
    /// Some *other* cache is the owner (MESI: Modified; Dragon: Sm or
    /// Modified). Implies `others_valid`.
    pub owner: bool,
}

/// `true` for message kinds a cache interface snoops as they pass: the
/// three broadcast probes and the directory's multicast invalidation.
/// Unicast directory messages are never snooped.
#[must_use]
pub fn is_snooped(msg: MsgKind) -> bool {
    match msg {
        MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade | MsgKind::DirInval => {
            true
        }
        MsgKind::DirRead
        | MsgKind::DirWrite
        | MsgKind::DirUpgrade
        | MsgKind::DirFwdRead
        | MsgKind::DirFwdWrite
        | MsgKind::DirAck
        | MsgKind::BlockData
        | MsgKind::WriteBack
        | MsgKind::MemUpdate => false,
    }
}

/// `true` for the three snooping probe kinds the home memory arbitrates.
#[must_use]
pub fn is_probe(msg: MsgKind) -> bool {
    match msg {
        MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade => true,
        MsgKind::DirRead
        | MsgKind::DirWrite
        | MsgKind::DirUpgrade
        | MsgKind::DirFwdRead
        | MsgKind::DirFwdWrite
        | MsgKind::DirInval
        | MsgKind::DirAck
        | MsgKind::BlockData
        | MsgKind::WriteBack
        | MsgKind::MemUpdate => false,
    }
}

// -------------------------------------------------------------- rule sets

/// Cache-side snoop rules (paper §3.1 plus the directory multicast).
/// Domain: [`is_snooped`] kinds × [`LineState`].
pub static SNOOPER_RULES: RuleSet<SnoopCtx, SnoopAction> = RuleSet {
    name: "snooper",
    rules: &[
        Rule {
            name: "read-probe-owner-supplies-and-downgrades",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopRead && c.state == LineState::We,
            action: |_| SnoopAction::SupplyDowngrade,
        },
        Rule {
            name: "read-probe-passes-non-owner",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopRead && c.state != LineState::We,
            action: |_| SnoopAction::Ignore,
        },
        Rule {
            name: "write-probe-owner-supplies-and-invalidates",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopWrite && c.state == LineState::We,
            action: |_| SnoopAction::SupplyInvalidate,
        },
        Rule {
            name: "write-probe-drops-shared-copy",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopWrite && c.state == LineState::Rs,
            action: |_| SnoopAction::Invalidate,
        },
        Rule {
            name: "write-probe-passes-uncached",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopWrite && c.state == LineState::Inv,
            action: |_| SnoopAction::Ignore,
        },
        Rule {
            name: "upgrade-probe-drops-shared-copy",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopUpgrade && c.state == LineState::Rs,
            action: |_| SnoopAction::Invalidate,
        },
        Rule {
            // The upgrader believes it holds the only other copy; a dirty
            // third party loses to the home's dirty-bit nack, so `We` here
            // is a transient the probe must tolerate silently.
            name: "upgrade-probe-passes-non-sharer",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.msg == MsgKind::SnoopUpgrade && c.state != LineState::Rs,
            action: |_| SnoopAction::Ignore,
        },
        Rule {
            name: "multicast-inval-drops-valid-copy",
            fires_under: ProtocolKind::Directory,
            guard: |c| c.msg == MsgKind::DirInval && c.state.is_valid(),
            action: |_| SnoopAction::Invalidate,
        },
        Rule {
            name: "multicast-inval-passes-uncached",
            fires_under: ProtocolKind::Directory,
            guard: |c| c.msg == MsgKind::DirInval && c.state == LineState::Inv,
            action: |_| SnoopAction::Ignore,
        },
    ],
};

/// Snooping home-memory rules (the dirty bit arbitrates who answers a
/// probe). Domain: [`is_probe`] kinds × `dirty`.
pub static HOME_RULES: RuleSet<HomeCtx, HomeSnoopAction> = RuleSet {
    name: "home",
    rules: &[
        Rule {
            name: "dirty-home-stays-silent",
            fires_under: ProtocolKind::Snooping,
            guard: |c| c.dirty,
            action: |_| HomeSnoopAction::Silent,
        },
        Rule {
            name: "clean-read-supplied-from-memory",
            fires_under: ProtocolKind::Snooping,
            guard: |c| !c.dirty && c.msg == MsgKind::SnoopRead,
            action: |_| HomeSnoopAction::Supply,
        },
        Rule {
            name: "clean-write-supplies-and-claims",
            fires_under: ProtocolKind::Snooping,
            guard: |c| !c.dirty && c.msg == MsgKind::SnoopWrite,
            action: |_| HomeSnoopAction::SupplyClaim,
        },
        Rule {
            name: "clean-upgrade-acked-and-claimed",
            fires_under: ProtocolKind::Snooping,
            guard: |c| !c.dirty && c.msg == MsgKind::SnoopUpgrade,
            action: |_| HomeSnoopAction::AckClaim,
        },
    ],
};

/// Full-map directory dispatch rules (paper §3.2). Domain: every
/// [`DirEntry`] shape × requester × [`DirRequest`]. `entry` is the state
/// *after* write-back reclaim, `req` *after* upgrade demotion.
pub static DIR_RULES: RuleSet<DirCtx, DirAction> = RuleSet {
    name: "dir",
    rules: &[
        Rule {
            name: "read-forwarded-to-owner",
            fires_under: ProtocolKind::Directory,
            guard: |c| c.req == DirRequest::Read && c.entry.owner.is_some(),
            action: |c| DirAction::ForwardRead { owner: c.entry.owner.expect("guarded") },
        },
        Rule {
            name: "read-granted-from-memory",
            fires_under: ProtocolKind::Directory,
            guard: |c| c.req == DirRequest::Read && c.entry.owner.is_none(),
            action: |_| DirAction::GrantData,
        },
        Rule {
            // Covers the upgrade-with-an-owner corner too: an upgrade that
            // raced an ownership change is served exactly like a write
            // miss, moving the data off the owner.
            name: "ownership-request-forwarded-to-owner",
            fires_under: ProtocolKind::Directory,
            guard: |c| c.req != DirRequest::Read && c.entry.owner.is_some(),
            action: |c| DirAction::ForwardWrite { owner: c.entry.owner.expect("guarded") },
        },
        Rule {
            name: "ownership-request-invalidates-sharers",
            fires_under: ProtocolKind::Directory,
            guard: |c| {
                c.req != DirRequest::Read
                    && c.entry.owner.is_none()
                    && c.entry.has_other_sharers(c.requester)
            },
            action: |_| DirAction::InvalidateSharers,
        },
        Rule {
            name: "sole-write-granted-data",
            fires_under: ProtocolKind::Directory,
            guard: |c| {
                c.req == DirRequest::Write
                    && c.entry.owner.is_none()
                    && !c.entry.has_other_sharers(c.requester)
            },
            action: |_| DirAction::GrantData,
        },
        Rule {
            name: "sole-upgrade-granted-ack",
            fires_under: ProtocolKind::Directory,
            guard: |c| {
                c.req == DirRequest::Upgrade
                    && c.entry.owner.is_none()
                    && !c.entry.has_other_sharers(c.requester)
            },
            action: |_| DirAction::GrantAck,
        },
    ],
};

/// SCI linked-list home dispatch rules: how the home serves a request
/// against the block's sharing list (head insertion on a miss, list-order
/// purge on a write, rollout splice on an eviction). Domain: every
/// consistent [`SciCtx`] (misses imply the requester is off-list,
/// upgrades/rollouts that it is on it).
pub static SCI_RULES: RuleSet<SciCtx, SciAction> = RuleSet {
    name: "sci",
    rules: &[
        Rule {
            name: "read-miss-uncached-granted-from-memory",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Read && c.list_len == 0,
            action: |_| SciAction::GrantFromMemory,
        },
        Rule {
            name: "read-miss-forwarded-to-head",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Read && c.list_len > 0,
            action: |_| SciAction::ForwardToHead,
        },
        Rule {
            name: "write-miss-uncached-granted-from-memory",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Write && c.list_len == 0,
            action: |_| SciAction::GrantClaim,
        },
        Rule {
            name: "write-miss-purges-list-in-order",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Write && c.list_len > 0,
            action: |_| SciAction::PurgeAndClaim,
        },
        Rule {
            name: "upgrade-purges-other-members",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Upgrade && c.list_len > 1,
            action: |_| SciAction::PurgeOthersAndClaim,
        },
        Rule {
            name: "upgrade-sole-member-claims",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Upgrade && c.list_len == 1,
            action: |_| SciAction::Claim,
        },
        Rule {
            name: "rollout-splices-member",
            fires_under: ProtocolKind::Sci,
            guard: |c| c.req == SciRequest::Rollout,
            action: |_| SciAction::Splice,
        },
    ],
};

/// MESI bus rules: how the atomic bus serves an admitted operation. The
/// exclusive state buys the silent E→M promotion; everything else is the
/// classic invalidation protocol. Domain: every consistent [`BusCtx`]
/// (`owner` implies `others_valid`; an exclusive hit implies neither).
pub static MESI_RULES: RuleSet<BusCtx, MesiAction> = RuleSet {
    name: "mesi",
    rules: &[
        Rule {
            name: "read-miss-uncached-fills-exclusive",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::ReadMiss && !c.others_valid,
            action: |_| MesiAction::FillExclusive,
        },
        Rule {
            name: "read-miss-owner-supplies-and-downgrades",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::ReadMiss && c.owner,
            action: |_| MesiAction::OwnerSuppliesShared,
        },
        Rule {
            name: "read-miss-fills-shared",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::ReadMiss && c.others_valid && !c.owner,
            action: |_| MesiAction::FillShared,
        },
        Rule {
            name: "write-miss-owner-supplies-and-invalidates",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteMiss && c.owner,
            action: |_| MesiAction::OwnerSuppliesModified,
        },
        Rule {
            name: "write-miss-invalidates-sharers",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteMiss && c.others_valid && !c.owner,
            action: |_| MesiAction::InvalidateAndFillModified,
        },
        Rule {
            name: "write-miss-uncached-fills-modified",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteMiss && !c.others_valid,
            action: |_| MesiAction::FillModified,
        },
        Rule {
            name: "upgrade-invalidates-sharers",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteSharedHit && c.others_valid,
            action: |_| MesiAction::InvalidateAndPromote,
        },
        Rule {
            name: "upgrade-last-copy-promotes",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteSharedHit && !c.others_valid,
            action: |_| MesiAction::Promote,
        },
        Rule {
            name: "write-hit-exclusive-promotes-silently",
            fires_under: ProtocolKind::Mesi,
            guard: |c| c.op == BusOp::WriteExclusiveHit,
            action: |_| MesiAction::PromoteSilently,
        },
    ],
};

/// Dragon bus rules: updates instead of invalidations. A write to a shared
/// line broadcasts the word; the writer becomes the Sm owner and other
/// copies stay valid. Domain: every consistent [`BusCtx`].
pub static DRAGON_RULES: RuleSet<BusCtx, DragonAction> = RuleSet {
    name: "dragon",
    rules: &[
        Rule {
            name: "read-miss-uncached-fills-exclusive",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::ReadMiss && !c.others_valid,
            action: |_| DragonAction::FillExclusive,
        },
        Rule {
            name: "read-miss-owner-supplies-shared",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::ReadMiss && c.owner,
            action: |_| DragonAction::OwnerSuppliesShared,
        },
        Rule {
            name: "read-miss-fills-shared-clean",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::ReadMiss && c.others_valid && !c.owner,
            action: |_| DragonAction::FillShared,
        },
        Rule {
            name: "write-miss-uncached-fills-modified",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::WriteMiss && !c.others_valid,
            action: |_| DragonAction::FillModified,
        },
        Rule {
            name: "write-miss-updates-sharers",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::WriteMiss && c.others_valid,
            action: |_| DragonAction::FillSharedOwnerUpdate,
        },
        Rule {
            name: "write-hit-shared-broadcasts-update",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::WriteSharedHit && c.others_valid,
            action: |_| DragonAction::BroadcastUpdate,
        },
        Rule {
            name: "write-hit-last-copy-promotes",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::WriteSharedHit && !c.others_valid,
            action: |_| DragonAction::PromoteToModified,
        },
        Rule {
            name: "write-hit-exclusive-promotes-silently",
            fires_under: ProtocolKind::Dragon,
            guard: |c| c.op == BusOp::WriteExclusiveHit,
            action: |_| DragonAction::PromoteSilently,
        },
    ],
};

// ------------------------------------------------------------ evaluation

/// Rule-set-backed snooper dispatch: non-snooped kinds are ignored without
/// consulting (or counting) the rules; snooped kinds go through
/// [`SNOOPER_RULES`].
#[must_use]
pub fn snooper_action(state: LineState, msg: MsgKind, counts: Option<&FireCounts>) -> SnoopAction {
    if !is_snooped(msg) {
        return SnoopAction::Ignore;
    }
    SNOOPER_RULES.eval(&SnoopCtx { state, msg }, counts.map(|c| c.snooper.as_slice()))
}

/// Rule-set-backed home-memory dispatch: non-probe kinds contribute
/// nothing; probes go through [`HOME_RULES`].
#[must_use]
pub fn home_snoop_action(
    dirty: bool,
    msg: MsgKind,
    counts: Option<&FireCounts>,
) -> HomeSnoopAction {
    if !is_probe(msg) {
        return HomeSnoopAction::Silent;
    }
    HOME_RULES.eval(&HomeCtx { dirty, msg }, counts.map(|c| c.home.as_slice()))
}

/// Rule-set-backed directory dispatch through [`DIR_RULES`].
#[must_use]
pub fn dir_action(
    entry: &DirEntry,
    requester: NodeId,
    req: DirRequest,
    counts: Option<&FireCounts>,
) -> DirAction {
    DIR_RULES.eval(&DirCtx { entry: *entry, requester, req }, counts.map(|c| c.dir.as_slice()))
}

/// Rule-set-backed SCI home dispatch through [`SCI_RULES`].
#[must_use]
pub fn sci_action(
    req: SciRequest,
    list_len: usize,
    requester_in_list: bool,
    counts: Option<&FireCounts>,
) -> SciAction {
    SCI_RULES.eval(&SciCtx { req, list_len, requester_in_list }, counts.map(|c| c.sci.as_slice()))
}

/// Rule-set-backed MESI bus dispatch through [`MESI_RULES`].
#[must_use]
pub fn mesi_action(
    op: BusOp,
    others_valid: bool,
    owner: bool,
    counts: Option<&FireCounts>,
) -> MesiAction {
    MESI_RULES.eval(&BusCtx { op, others_valid, owner }, counts.map(|c| c.mesi.as_slice()))
}

/// Rule-set-backed Dragon bus dispatch through [`DRAGON_RULES`].
#[must_use]
pub fn dragon_action(
    op: BusOp,
    others_valid: bool,
    owner: bool,
    counts: Option<&FireCounts>,
) -> DragonAction {
    DRAGON_RULES.eval(&BusCtx { op, others_valid, owner }, counts.map(|c| c.dragon.as_slice()))
}

// ------------------------------------------------------------ fire counts

/// Per-rule fire counters, one slot per rule in declaration order.
///
/// Thread-safe (relaxed atomics): the model checker's parallel BFS bumps
/// them from every worker; totals are order-independent and therefore
/// identical for any `--jobs`.
#[derive(Debug)]
pub struct FireCounts {
    /// Counters for [`SNOOPER_RULES`].
    pub snooper: Vec<AtomicU64>,
    /// Counters for [`HOME_RULES`].
    pub home: Vec<AtomicU64>,
    /// Counters for [`DIR_RULES`].
    pub dir: Vec<AtomicU64>,
    /// Counters for [`SCI_RULES`].
    pub sci: Vec<AtomicU64>,
    /// Counters for [`MESI_RULES`].
    pub mesi: Vec<AtomicU64>,
    /// Counters for [`DRAGON_RULES`].
    pub dragon: Vec<AtomicU64>,
}

/// One rule's fire count, as reported by [`FireCounts::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleFire {
    /// Owning rule-set name.
    pub ruleset: &'static str,
    /// Rule name.
    pub rule: &'static str,
    /// Protocol whose exhaustive runs are expected to fire the rule.
    pub fires_under: ProtocolKind,
    /// Times the rule fired.
    pub fired: u64,
}

impl FireCounts {
    /// Fresh, all-zero counters sized to the static rule sets.
    #[must_use]
    pub fn new() -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        FireCounts {
            snooper: zeros(SNOOPER_RULES.rules.len()),
            home: zeros(HOME_RULES.rules.len()),
            dir: zeros(DIR_RULES.rules.len()),
            sci: zeros(SCI_RULES.rules.len()),
            mesi: zeros(MESI_RULES.rules.len()),
            dragon: zeros(DRAGON_RULES.rules.len()),
        }
    }

    /// Snapshot of every rule's count, in (rule-set, declaration) order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RuleFire> {
        fn push<C, A>(out: &mut Vec<RuleFire>, set: &RuleSet<C, A>, counts: &[AtomicU64]) {
            for (rule_meta, count) in set.rules.iter().zip(counts.iter()) {
                out.push(RuleFire {
                    ruleset: set.name,
                    rule: rule_meta.name,
                    fires_under: rule_meta.fires_under,
                    fired: count.load(Ordering::Relaxed),
                });
            }
        }
        let mut out = Vec::new();
        push(&mut out, &SNOOPER_RULES, &self.snooper);
        push(&mut out, &HOME_RULES, &self.home);
        push(&mut out, &DIR_RULES, &self.dir);
        push(&mut out, &SCI_RULES, &self.sci);
        push(&mut out, &MESI_RULES, &self.mesi);
        push(&mut out, &DRAGON_RULES, &self.dragon);
        out
    }
}

impl Default for FireCounts {
    fn default() -> Self {
        Self::new()
    }
}

// ------------------------------------------------------------------ lint

const ALL_STATES: [LineState; 3] = [LineState::Inv, LineState::Rs, LineState::We];

const ALL_KINDS: [MsgKind; 13] = [
    MsgKind::SnoopRead,
    MsgKind::SnoopWrite,
    MsgKind::SnoopUpgrade,
    MsgKind::DirRead,
    MsgKind::DirWrite,
    MsgKind::DirUpgrade,
    MsgKind::DirFwdRead,
    MsgKind::DirFwdWrite,
    MsgKind::DirInval,
    MsgKind::DirAck,
    MsgKind::BlockData,
    MsgKind::WriteBack,
    MsgKind::MemUpdate,
];

/// Statically lints every rule set over its full input domain (directory
/// entries enumerated for `nodes` nodes): totality and determinism.
/// Returns all findings; an empty vector means the spec is clean.
#[must_use]
pub fn lint(nodes: usize) -> Vec<String> {
    let mut findings = Vec::new();

    let snoop_domain = ALL_KINDS
        .into_iter()
        .filter(|&k| is_snooped(k))
        .flat_map(|msg| ALL_STATES.into_iter().map(move |state| SnoopCtx { state, msg }));
    findings.extend(SNOOPER_RULES.lint_over(snoop_domain, |c| format!("{c:?}")));

    let home_domain = ALL_KINDS
        .into_iter()
        .filter(|&k| is_probe(k))
        .flat_map(|msg| [false, true].into_iter().map(move |dirty| HomeCtx { dirty, msg }));
    findings.extend(HOME_RULES.lint_over(home_domain, |c| format!("{c:?}")));

    let mut dir_domain = Vec::new();
    for sharers in 0..(1u64 << nodes) {
        for owner in std::iter::once(None).chain((0..nodes).map(|o| Some(NodeId::new(o)))) {
            let entry = DirEntry { sharers, owner };
            for requester in (0..nodes).map(NodeId::new) {
                for req in [DirRequest::Read, DirRequest::Write, DirRequest::Upgrade] {
                    dir_domain.push(DirCtx { entry, requester, req });
                }
            }
        }
    }
    findings.extend(DIR_RULES.lint_over(dir_domain, |c| format!("{c:?}")));

    let mut sci_domain = Vec::new();
    for req in [SciRequest::Read, SciRequest::Write, SciRequest::Upgrade, SciRequest::Rollout] {
        for list_len in 0..=nodes {
            for requester_in_list in [false, true] {
                // Consistency: misses come from off-list nodes; upgrades
                // and rollouts from on-list ones (an empty list has no
                // members to upgrade or roll out).
                let consistent = match req {
                    SciRequest::Read | SciRequest::Write => !requester_in_list,
                    SciRequest::Upgrade | SciRequest::Rollout => requester_in_list && list_len >= 1,
                };
                if consistent {
                    sci_domain.push(SciCtx { req, list_len, requester_in_list });
                }
            }
        }
    }
    findings.extend(SCI_RULES.lint_over(sci_domain, |c| format!("{c:?}")));

    let bus_domain: Vec<BusCtx> =
        [BusOp::ReadMiss, BusOp::WriteMiss, BusOp::WriteSharedHit, BusOp::WriteExclusiveHit]
            .into_iter()
            .flat_map(|op| {
                // (others_valid, owner): owner implies others_valid; an exclusive
                // hit implies a sole copy.
                [(false, false), (true, false), (true, true)]
                    .into_iter()
                    .filter(move |&(others_valid, _)| {
                        op != BusOp::WriteExclusiveHit || !others_valid
                    })
                    .map(move |(others_valid, owner)| BusCtx { op, others_valid, owner })
            })
            .collect();
    findings.extend(MESI_RULES.lint_over(
        bus_domain.iter().copied().filter(|c| {
            // MESI upgrades racing an ownership change are demoted to
            // write misses before dispatch.
            c.op != BusOp::WriteSharedHit || !c.owner
        }),
        |c| format!("{c:?}"),
    ));
    findings.extend(DRAGON_RULES.lint_over(bus_domain, |c| format!("{c:?}")));

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_sets_lint_clean() {
        let findings = lint(8);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn rule_names_are_unique() {
        let mut names: Vec<(&str, &str)> =
            FireCounts::new().snapshot().iter().map(|f| (f.ruleset, f.rule)).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rule name");
    }

    #[test]
    fn eval_counts_the_firing_rule() {
        let counts = FireCounts::new();
        let a = snooper_action(LineState::We, MsgKind::SnoopRead, Some(&counts));
        assert_eq!(a, SnoopAction::SupplyDowngrade);
        let snap = counts.snapshot();
        let fired: Vec<&RuleFire> = snap.iter().filter(|f| f.fired > 0).collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "read-probe-owner-supplies-and-downgrades");
        // Non-snooped kinds bypass the rules entirely.
        let a = snooper_action(LineState::We, MsgKind::BlockData, Some(&counts));
        assert_eq!(a, SnoopAction::Ignore);
        assert_eq!(counts.snapshot().iter().map(|f| f.fired).sum::<u64>(), 1);
    }

    #[test]
    fn guarded_dispatch_matches_transition_tables() {
        // The wrappers in `transitions` delegate here; evaluate both ways
        // over the full small domain to pin the equivalence.
        for state in ALL_STATES {
            for kind in ALL_KINDS {
                assert_eq!(
                    crate::transitions::snooper_action(state, kind),
                    snooper_action(state, kind, None),
                );
            }
        }
        for dirty in [false, true] {
            for kind in ALL_KINDS {
                assert_eq!(
                    crate::transitions::home_snoop_action(dirty, kind),
                    home_snoop_action(dirty, kind, None),
                );
            }
        }
    }
}
