//! Untimed ring-traversal accounting for the full-map and linked-list
//! directory protocols (paper Table 1).
//!
//! Table 1 asks a purely geometric question: for each shared miss and each
//! invalidation, how many complete ring traversals does the transaction's
//! message path need? The answer depends only on coherence state and node
//! positions, never on timing, so these accountants replay a reference
//! stream through an idealised protocol state machine and tally
//! [`TraversalDist`] histograms.
//!
//! * [`FullMapAccountant`] — the paper's full-map directory: at most two
//!   traversals per transaction (request + optional forward/multicast
//!   round).
//! * [`LinkedListAccountant`] — an SCI-like linked-list directory: misses
//!   detour via the list head, and invalidations walk the sharing list in
//!   list order, which costs up to *n* traversals when the list order
//!   conflicts with the ring direction.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ringsim_cache::{AccessClass, Cache, CacheConfig, LineState};
use ringsim_ring::RingLayout;
use ringsim_types::{AccessKind, BlockAddr, ConfigError, MemRef, NodeId, Region};

use crate::directory::DirEntry;

/// Histogram of transactions by ring-traversal count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraversalDist {
    /// Transactions needing exactly one traversal.
    pub one: u64,
    /// Transactions needing exactly two traversals.
    pub two: u64,
    /// Transactions needing three or more traversals.
    pub three_plus: u64,
}

impl TraversalDist {
    /// Records a transaction needing `n` traversals. Zero-traversal (fully
    /// local) transactions are not tabulated, matching the paper.
    pub fn record(&mut self, n: usize) {
        match n {
            0 => {}
            1 => self.one += 1,
            2 => self.two += 1,
            _ => self.three_plus += 1,
        }
    }

    /// Total tabulated transactions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.one + self.two + self.three_plus
    }

    /// Percentages `(1, 2, 3+)`, each in 0–100.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            100.0 * self.one as f64 / t,
            100.0 * self.two as f64 / t,
            100.0 * self.three_plus as f64 / t,
        )
    }
}

/// Result of a traversal-accounting run: distributions for misses and for
/// invalidations (the paper's two column groups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraversalReport {
    /// Shared misses.
    pub miss: TraversalDist,
    /// Invalidations (upgrades).
    pub invalidate: TraversalDist,
}

/// Full-map directory traversal accountant.
///
/// # Examples
///
/// ```
/// use ringsim_proto::table1::FullMapAccountant;
/// use ringsim_ring::RingConfig;
/// use ringsim_trace::{Workload, WorkloadSpec};
///
/// let mut w = Workload::new(WorkloadSpec::demo(8)).unwrap();
/// let layout = RingConfig::standard_500mhz(8).layout().unwrap();
/// let space = w.space();
/// let mut acct = FullMapAccountant::new(layout, move |b| space.home_of_block(b)).unwrap();
/// for r in w.round_robin(2_000) {
///     acct.process(r);
/// }
/// let rep = acct.report();
/// // The full map never needs three or more traversals.
/// assert_eq!(rep.miss.three_plus, 0);
/// assert_eq!(rep.invalidate.three_plus, 0);
/// ```
#[derive(Debug, Clone)]
pub struct FullMapAccountant<H> {
    layout: RingLayout,
    home_of: H,
    caches: Vec<Cache>,
    entries: HashMap<u64, DirEntry>,
    report: TraversalReport,
}

impl<H: Fn(BlockAddr) -> NodeId> FullMapAccountant<H> {
    /// Creates the accountant for the ring described by `layout`; `home_of`
    /// maps blocks to home nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the default cache geometry is invalid
    /// (it is not) or the layout has more than 64 nodes.
    pub fn new(layout: RingLayout, home_of: H) -> Result<Self, ConfigError> {
        if layout.nodes() > 64 {
            return Err(ConfigError::new("nodes", "at most 64 nodes supported"));
        }
        let caches = (0..layout.nodes())
            .map(|_| Cache::new(CacheConfig::paper_default()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            layout,
            home_of,
            caches,
            entries: HashMap::new(),
            report: TraversalReport::default(),
        })
    }

    /// The accumulated distributions.
    #[must_use]
    pub fn report(&self) -> TraversalReport {
        self.report
    }

    /// Replays one reference.
    pub fn process(&mut self, r: MemRef) {
        let node = r.node;
        let block = r.addr.block(16);
        match self.caches[node.index()].classify(block, r.kind) {
            AccessClass::Hit => {}
            AccessClass::Upgrade => {
                let home = (self.home_of)(block);
                let entry = self.entries.entry(block.raw()).or_default();
                let others = entry.other_sharers(node);
                let n = if others == 0 {
                    usize::from(home != node)
                } else if home == node {
                    // Home-local multicast: one full circle.
                    1
                } else {
                    // Request to home + multicast round + grant: two circles.
                    2
                };
                if r.region == Region::Shared {
                    self.report.invalidate.record(n);
                }
                entry.sharers = 1 << node.index();
                entry.owner = Some(node);
                for peer in 0..self.caches.len() {
                    if others & (1 << peer) != 0 {
                        self.caches[peer].snoop_invalidate(block);
                    }
                }
                self.caches[node.index()].promote(block);
            }
            AccessClass::Miss => {
                let home = (self.home_of)(block);
                let entry = *self.entries.get(&block.raw()).unwrap_or(&DirEntry::default());
                let n = match entry.owner {
                    Some(d) => {
                        // Request to home, forward to the dirty node, reply.
                        if home == node {
                            self.layout.closed_path_traversals(&[node, d])
                        } else {
                            self.layout.closed_path_traversals(&[node, home, d])
                        }
                    }
                    None => {
                        let others = entry.other_sharers(node);
                        let multicast = r.kind.is_write() && others != 0;
                        match (home == node, multicast) {
                            (true, false) => 0,
                            (true, true) => 1,
                            (false, false) => 1,
                            (false, true) => 2,
                        }
                    }
                };
                if r.region == Region::Shared {
                    self.report.miss.record(n);
                }
                self.apply_miss(node, block, r.kind);
            }
        }
    }

    fn apply_miss(&mut self, node: NodeId, block: BlockAddr, kind: AccessKind) {
        let entry = self.entries.entry(block.raw()).or_default();
        match kind {
            AccessKind::Read => {
                if let Some(d) = entry.owner.take() {
                    self.caches[d.index()].snoop_downgrade(block);
                }
                entry.sharers |= 1 << node.index();
            }
            AccessKind::Write => {
                let victims = entry.other_sharers(node);
                entry.owner = Some(node);
                entry.sharers = 1 << node.index();
                for peer in 0..self.caches.len() {
                    if victims & (1 << peer) != 0 {
                        self.caches[peer].snoop_invalidate(block);
                    }
                }
            }
        }
        let state = if kind.is_write() { LineState::We } else { LineState::Rs };
        if let Some((victim, _)) = self.caches[node.index()].fill(block, state) {
            if let Some(v) = self.entries.get_mut(&victim.raw()) {
                v.sharers &= !(1 << node.index());
                if v.owner == Some(node) {
                    v.owner = None;
                }
            }
        }
    }
}

/// Per-block sharing-list state of the linked-list directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ListEntry {
    /// Sharing list, head first (new sharers prepend, as in SCI).
    list: Vec<NodeId>,
    dirty: bool,
}

/// SCI-like linked-list directory traversal accountant.
///
/// Misses are first sent to the home (which holds the head pointer), then
/// forwarded to the head, which supplies the data; the requester prepends
/// itself. A write walks the old sharing list *in list order* to invalidate
/// it, so invalidation cost grows with list length and with how badly the
/// list order conflicts with the ring direction (paper §3.2 and Table 1).
#[derive(Debug, Clone)]
pub struct LinkedListAccountant<H> {
    layout: RingLayout,
    home_of: H,
    caches: Vec<Cache>,
    entries: HashMap<u64, ListEntry>,
    report: TraversalReport,
}

impl<H: Fn(BlockAddr) -> NodeId> LinkedListAccountant<H> {
    /// Creates the accountant (see [`FullMapAccountant::new`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the layout has more than 64 nodes.
    pub fn new(layout: RingLayout, home_of: H) -> Result<Self, ConfigError> {
        if layout.nodes() > 64 {
            return Err(ConfigError::new("nodes", "at most 64 nodes supported"));
        }
        let caches = (0..layout.nodes())
            .map(|_| Cache::new(CacheConfig::paper_default()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            layout,
            home_of,
            caches,
            entries: HashMap::new(),
            report: TraversalReport::default(),
        })
    }

    /// The accumulated distributions.
    #[must_use]
    pub fn report(&self) -> TraversalReport {
        self.report
    }

    /// Replays one reference.
    pub fn process(&mut self, r: MemRef) {
        let node = r.node;
        let block = r.addr.block(16);
        match self.caches[node.index()].classify(block, r.kind) {
            AccessClass::Hit => {}
            AccessClass::Upgrade => {
                let home = (self.home_of)(block);
                let entry = self.entries.entry(block.raw()).or_default();
                debug_assert!(entry.list.contains(&node), "upgrader must be a sharer");
                // SCI-style invalidation: the writer first detaches and
                // re-attaches as list head via the home (one round trip),
                // then purges the remaining members by walking the list in
                // list order.
                let others: Vec<NodeId> =
                    entry.list.iter().copied().filter(|&p| p != node).collect();
                let mut n = if home == node {
                    0
                } else {
                    self.layout.closed_path_traversals(&[node, home])
                };
                if !others.is_empty() {
                    let mut purge = vec![node];
                    purge.extend(others.iter().copied());
                    n += self.layout.closed_path_traversals(&purge);
                }
                if r.region == Region::Shared {
                    self.report.invalidate.record(n);
                }
                for peer in &others {
                    self.caches[peer.index()].snoop_invalidate(block);
                }
                entry.list = vec![node];
                entry.dirty = true;
                self.caches[node.index()].promote(block);
            }
            AccessClass::Miss => {
                let home = (self.home_of)(block);
                let entry = self.entries.entry(block.raw()).or_default();
                let mut path = vec![node];
                if home != node {
                    path.push(home);
                }
                match r.kind {
                    AccessKind::Read => {
                        if let Some(&head) = entry.list.first() {
                            path.push(head);
                        }
                    }
                    AccessKind::Write => {
                        // Data comes from the head; the rest of the list is
                        // invalidated by walking it in order.
                        path.extend(entry.list.iter().copied());
                    }
                }
                let n = if path.len() == 1 { 0 } else { self.layout.closed_path_traversals(&path) };
                if r.region == Region::Shared {
                    self.report.miss.record(n);
                }
                // Apply state.
                match r.kind {
                    AccessKind::Read => {
                        if entry.dirty {
                            if let Some(&head) = entry.list.first() {
                                self.caches[head.index()].snoop_downgrade(block);
                            }
                            entry.dirty = false;
                        }
                        entry.list.insert(0, node);
                    }
                    AccessKind::Write => {
                        for peer in entry.list.clone() {
                            self.caches[peer.index()].snoop_invalidate(block);
                        }
                        entry.list = vec![node];
                        entry.dirty = true;
                    }
                }
                let state = if r.kind.is_write() { LineState::We } else { LineState::Rs };
                if let Some((victim, _)) = self.caches[node.index()].fill(block, state) {
                    // SCI rollout: detach from the victim's sharing list.
                    if let Some(v) = self.entries.get_mut(&victim.raw()) {
                        v.list.retain(|&p| p != node);
                        if v.list.is_empty() {
                            v.dirty = false;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_ring::RingConfig;
    use ringsim_trace::{Workload, WorkloadSpec};

    fn layout(n: usize) -> RingLayout {
        RingConfig::standard_500mhz(n).layout().unwrap()
    }

    #[test]
    fn dist_records_and_percentages() {
        let mut d = TraversalDist::default();
        d.record(0); // ignored
        d.record(1);
        d.record(1);
        d.record(2);
        d.record(5);
        assert_eq!(d.total(), 4);
        let (p1, p2, p3) = d.percentages();
        assert!((p1 - 50.0).abs() < 1e-9);
        assert!((p2 - 25.0).abs() < 1e-9);
        assert!((p3 - 25.0).abs() < 1e-9);
        assert_eq!(TraversalDist::default().percentages(), (0.0, 0.0, 0.0));
    }

    /// A deterministic micro-scenario exercising the textbook cases.
    #[test]
    fn full_map_micro_scenario() {
        use ringsim_types::{AccessKind::*, Addr, MemRef, Region::Shared};
        let l = layout(16);
        // Home fixed at node 6 for every block.
        let mut acct = FullMapAccountant::new(l, |_| NodeId::new(6)).unwrap();
        let mk = |node: usize, kind| MemRef {
            node: NodeId::new(node),
            addr: Addr::new(0x100),
            kind,
            region: Shared,
        };
        // P0 read miss on uncached block: 1 traversal.
        acct.process(mk(0, Read));
        assert_eq!(acct.report().miss.one, 1);
        // P0 upgrade (no other sharers, remote home): 1 traversal.
        acct.process(mk(0, Write));
        assert_eq!(acct.report().invalidate.one, 1);
        // P12 read miss on dirty block owned by P0. Path 12 -> 6 -> 0 -> 12:
        // home at 6 is "behind" 12, dirty node 0 beyond it: one traversal?
        // hops(12,6)=10, hops(12,0)=4: dirty node on the path -> 2 traversals.
        acct.process(mk(12, Read));
        assert_eq!(acct.report().miss.two, 1);
        // P3 write miss on a block now shared by {0, 12}: multicast -> 2.
        acct.process(mk(3, Write));
        assert_eq!(acct.report().miss.two, 2);
        assert_eq!(acct.report().miss.three_plus, 0);
    }

    #[test]
    fn linked_list_can_exceed_two_traversals() {
        use ringsim_types::{AccessKind::*, Addr, MemRef, Region::Shared};
        let l = layout(16);
        let mut acct = LinkedListAccountant::new(l, |_| NodeId::new(0)).unwrap();
        let mk = |node: usize, kind| MemRef {
            node: NodeId::new(node),
            addr: Addr::new(0x200),
            kind,
            region: Shared,
        };
        // Readers join in *descending* ring order so the sharing list (head
        // first) ends up in ascending order 4, 8, 12 ... walking it from the
        // writer crosses start many times.
        acct.process(mk(12, Read));
        acct.process(mk(8, Read));
        acct.process(mk(4, Read));
        // List head-first: [4, 8, 12]. P8 upgrades: it first becomes head
        // via the home (8 -> 0 -> 8: one traversal), then purges [4, 12] in
        // list order (8 -> 4 -> 12 -> 8: two traversals) — three in total.
        acct.process(mk(8, Write));
        let rep = acct.report();
        assert_eq!(rep.invalidate.three_plus, 1, "report: {rep:?}");
    }

    #[test]
    fn linked_list_worst_case_is_n_traversals() {
        use ringsim_types::{AccessKind::*, Addr, MemRef, Region::Shared};
        let l = layout(16);
        let mut acct = LinkedListAccountant::new(l, |_| NodeId::new(0)).unwrap();
        let mk = |node: usize, kind| MemRef {
            node: NodeId::new(node),
            addr: Addr::new(0x300),
            kind,
            region: Shared,
        };
        // Join in ascending order => list is descending: [12, 8, 4].
        acct.process(mk(4, Read));
        acct.process(mk(8, Read));
        acct.process(mk(12, Read));
        // P14 write: path 14 -> 0 -> 12 -> 8 -> 4 -> 14: each list hop wraps.
        acct.process(mk(14, Write));
        let rep = acct.report();
        assert_eq!(rep.miss.three_plus, 1, "report: {rep:?}");
    }

    #[test]
    fn workload_distributions_are_sane() {
        let mut w = Workload::new(WorkloadSpec::demo(16)).unwrap();
        let space = w.space();
        let mut full = FullMapAccountant::new(layout(16), move |b| space.home_of_block(b)).unwrap();
        let space2 = w.space();
        let mut ll =
            LinkedListAccountant::new(layout(16), move |b| space2.home_of_block(b)).unwrap();
        for r in w.round_robin(4_000) {
            full.process(r);
            ll.process(r);
        }
        let f = full.report();
        let l = ll.report();
        assert!(f.miss.total() > 100);
        assert_eq!(f.miss.three_plus, 0);
        assert_eq!(f.invalidate.three_plus, 0);
        // The linked list should show some 3+ transactions and no fewer
        // 2-traversal invalidations than the full map, percentage-wise.
        assert!(l.miss.total() > 100);
        assert!(l.invalidate.three_plus + l.miss.three_plus > 0);
    }
}
