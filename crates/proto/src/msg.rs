use core::fmt;

use serde::{Deserialize, Serialize};

use ringsim_types::{BlockAddr, NodeId};

/// Which slot class a message needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Fits a probe slot (address + control).
    Probe,
    /// Fits a block slot (header + cache block).
    Block,
}

/// Every message kind used by the two ring protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    // --- snooping probes: broadcast, snooped en route, removed by requester
    /// Read-miss probe.
    SnoopRead,
    /// Write-miss probe (invalidates copies as it passes).
    SnoopWrite,
    /// Invalidation probe (requester already holds the block read-shared).
    SnoopUpgrade,

    // --- directory probes: unicast, removed by destination
    /// Read-miss request to the home node.
    DirRead,
    /// Write-miss request to the home node.
    DirWrite,
    /// Upgrade (invalidation) request to the home node.
    DirUpgrade,
    /// Home forwards a read miss to the dirty node (carries the requester).
    DirFwdRead,
    /// Home forwards a write miss to the dirty node (carries the requester).
    DirFwdWrite,
    /// Home-initiated multicast invalidation; travels the full ring and is
    /// removed by the home when it returns.
    DirInval,
    /// Home grants an upgrade (no data needed).
    DirAck,

    // --- block messages: removed by destination
    /// Data reply from the owner to the requester.
    BlockData,
    /// Dirty-victim write-back to the home.
    WriteBack,
    /// Directory mode: the dirty node refreshes memory/directory at the
    /// home after supplying data.
    MemUpdate,
}

impl MsgKind {
    /// The slot class this message occupies.
    #[must_use]
    pub const fn class(self) -> MsgClass {
        match self {
            MsgKind::BlockData | MsgKind::WriteBack | MsgKind::MemUpdate => MsgClass::Block,
            _ => MsgClass::Probe,
        }
    }

    /// `true` for snooping-protocol probes, which circulate the whole ring
    /// and are removed by their source.
    #[must_use]
    pub const fn is_snoop_probe(self) -> bool {
        matches!(self, MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade)
    }

    /// `true` for the multicast invalidation, which also circles back to its
    /// source.
    #[must_use]
    pub const fn returns_to_source(self) -> bool {
        self.is_snoop_probe() || matches!(self, MsgKind::DirInval)
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::SnoopRead => "snoop-read",
            MsgKind::SnoopWrite => "snoop-write",
            MsgKind::SnoopUpgrade => "snoop-upgrade",
            MsgKind::DirRead => "dir-read",
            MsgKind::DirWrite => "dir-write",
            MsgKind::DirUpgrade => "dir-upgrade",
            MsgKind::DirFwdRead => "dir-fwd-read",
            MsgKind::DirFwdWrite => "dir-fwd-write",
            MsgKind::DirInval => "dir-inval",
            MsgKind::DirAck => "dir-ack",
            MsgKind::BlockData => "block-data",
            MsgKind::WriteBack => "write-back",
            MsgKind::MemUpdate => "mem-update",
        };
        f.write_str(s)
    }
}

/// One message on the ring.
///
/// `src` inserted the message; `dst` removes it (for messages that return to
/// their source, `dst == src`). `requester` is the node whose processor is
/// blocked on the transaction — forwards and replies carry it so the final
/// data reply can be routed without a directory lookup.
///
/// # Examples
///
/// ```
/// use ringsim_proto::{MsgKind, RingMessage};
/// use ringsim_types::{BlockAddr, NodeId};
///
/// let probe = RingMessage::new(
///     MsgKind::SnoopRead,
///     BlockAddr::new(0x40),
///     NodeId::new(2),
///     NodeId::new(2), // snoop probes return to their source
/// );
/// assert!(probe.kind.is_snoop_probe());
/// assert!(!probe.acked);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingMessage {
    /// Message kind (decides slot class and routing discipline).
    pub kind: MsgKind,
    /// The cache block concerned.
    pub block: BlockAddr,
    /// Inserting node.
    pub src: NodeId,
    /// Removing node.
    pub dst: NodeId,
    /// The node whose transaction this message serves.
    pub requester: NodeId,
    /// Snooping ack field: set by the owner as the probe passes, observed
    /// by the requester on return (modelled on the paper's "acknowledgment
    /// field in the following probe slot").
    pub acked: bool,
    /// On [`MsgKind::BlockData`]: the data came from a dirty cache rather
    /// than from memory at the home (used to classify miss latencies).
    pub from_dirty: bool,
    /// On [`MsgKind::MemUpdate`]: the supplying dirty node kept a
    /// read-shared copy (it had not evicted the line).
    pub retained: bool,
}

impl RingMessage {
    /// Creates a message with `requester == src` and all flags clear.
    #[must_use]
    pub fn new(kind: MsgKind, block: BlockAddr, src: NodeId, dst: NodeId) -> Self {
        Self {
            kind,
            block,
            src,
            dst,
            requester: src,
            acked: false,
            from_dirty: false,
            retained: false,
        }
    }

    /// Creates a message on behalf of another node (forwards and replies).
    #[must_use]
    pub fn for_requester(
        kind: MsgKind,
        block: BlockAddr,
        src: NodeId,
        dst: NodeId,
        requester: NodeId,
    ) -> Self {
        Self { kind, block, src, dst, requester, acked: false, from_dirty: false, retained: false }
    }

    /// Builder-style `from_dirty` flag.
    #[must_use]
    pub fn with_from_dirty(mut self, v: bool) -> Self {
        self.from_dirty = v;
        self
    }

    /// Builder-style `retained` flag.
    #[must_use]
    pub fn with_retained(mut self, v: bool) -> Self {
        self.retained = v;
        self
    }

    /// The slot class the message needs.
    #[must_use]
    pub const fn class(&self) -> MsgClass {
        self.kind.class()
    }
}

impl fmt::Display for RingMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}→{} (req {})", self.kind, self.block, self.src, self.dst, self.requester)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(MsgKind::SnoopRead.class(), MsgClass::Probe);
        assert_eq!(MsgKind::DirAck.class(), MsgClass::Probe);
        assert_eq!(MsgKind::DirInval.class(), MsgClass::Probe);
        assert_eq!(MsgKind::BlockData.class(), MsgClass::Block);
        assert_eq!(MsgKind::WriteBack.class(), MsgClass::Block);
        assert_eq!(MsgKind::MemUpdate.class(), MsgClass::Block);
    }

    #[test]
    fn routing_predicates() {
        assert!(MsgKind::SnoopUpgrade.returns_to_source());
        assert!(MsgKind::DirInval.returns_to_source());
        assert!(!MsgKind::DirRead.returns_to_source());
        assert!(!MsgKind::BlockData.is_snoop_probe());
    }

    #[test]
    fn constructors() {
        let m = RingMessage::for_requester(
            MsgKind::DirFwdRead,
            BlockAddr::new(1),
            NodeId::new(0),
            NodeId::new(3),
            NodeId::new(5),
        );
        assert_eq!(m.requester, NodeId::new(5));
        assert_eq!(m.to_string(), "dir-fwd-read B0x1 P0→P3 (req P5)");
    }
}
