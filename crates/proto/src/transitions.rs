//! Pure coherence transition tables.
//!
//! Both protocols' *decisions* — what a snooping cache does as a probe
//! passes, what the home memory contributes, and how the full-map directory
//! dispatches a request — live here as total functions over
//! ([`LineState`], [`MsgKind`]) and [`DirEntry`]. The timed simulator in
//! `ringsim-core` consults these tables and adds timing (slots, latencies,
//! retries); the model checker in `ringsim-check` drives the very same
//! tables through an abstract scheduler. A transition bug therefore cannot
//! hide in one consumer: the checker exercises exactly the code the
//! simulator runs.
//!
//! The decision logic itself is declared once, as the guarded rule sets in
//! [`crate::guarded`]; the dispatch functions here are the rule sets'
//! fire-count-free entry points, and the enums they return stay in this
//! module. Every `match` in this module and in `guarded` is intentionally
//! total with **no wildcard arms** — `tests/lint_protocol_tables.rs`
//! asserts this statically so a new `MsgKind` or `LineState` variant forces
//! every table to be revisited.

use ringsim_cache::LineState;
use ringsim_types::NodeId;

use crate::{DirEntry, MsgKind};

/// What a snooping cache interface does to its own copy as a ring message
/// passes by (paper §3.1, plus the directory's multicast invalidation).
///
/// The caller is responsible for the requester-side arbitration that is not
/// a property of the line state: a node whose *own* transaction is in flight
/// on the block does not participate at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopAction {
    /// No local action.
    Ignore,
    /// Drop the read-shared copy (write/upgrade/invalidation passing a
    /// sharer). The invalidation is counted against the requester.
    Invalidate,
    /// Dirty owner relinquishes: supply the block to the requester and
    /// invalidate the local copy (write probe passing the owner).
    SupplyInvalidate,
    /// Dirty owner downgrades: supply the block, keep a read-shared copy,
    /// and write the dirty data back to the home (read probe passing the
    /// owner).
    SupplyDowngrade,
}

/// The snooping cache-side transition table: action for a line in `state`
/// as a message of kind `msg` passes the interface.
///
/// Total over every ([`LineState`], [`MsgKind`]) pair; unicast directory
/// messages are never snooped and map to [`SnoopAction::Ignore`]. The
/// table itself is declared as the guarded rule set
/// [`crate::guarded::SNOOPER_RULES`]; this wrapper is the fire-count-free
/// entry point for the timed simulator.
#[must_use]
pub fn snooper_action(state: LineState, msg: MsgKind) -> SnoopAction {
    crate::guarded::snooper_action(state, msg, None)
}

/// What the home node's memory contributes as a snooping probe passes it
/// (paper §3.1: the dirty bit arbitrates who answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeSnoopAction {
    /// The block is dirty in some cache (or a write-back is in flight): the
    /// memory stays silent and the requester retries if nobody supplied.
    Silent,
    /// Clean read: acknowledge and supply the block from memory.
    Supply,
    /// Clean write miss: acknowledge, supply, and set the dirty bit — the
    /// requester becomes the owner.
    SupplyClaim,
    /// Clean upgrade: acknowledge and set the dirty bit; no data moves.
    AckClaim,
}

/// The snooping home-side transition table: memory action for a probe of
/// kind `msg` given the block's `dirty` bit. Total over every kind;
/// non-probe messages contribute nothing. Declared as the guarded rule set
/// [`crate::guarded::HOME_RULES`].
#[must_use]
pub fn home_snoop_action(dirty: bool, msg: MsgKind) -> HomeSnoopAction {
    crate::guarded::home_snoop_action(dirty, msg, None)
}

/// A request at the directory home's serialisation point, after the
/// busy/pending queue admitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirRequest {
    /// Read miss ([`MsgKind::DirRead`]).
    Read,
    /// Write miss ([`MsgKind::DirWrite`]), including converted upgrades.
    Write,
    /// Upgrade of a still-valid read-shared line ([`MsgKind::DirUpgrade`]).
    Upgrade,
}

impl DirRequest {
    /// Maps a message kind to the request it carries, if any. Total over
    /// [`MsgKind`] so new kinds must decide whether they are home requests.
    #[must_use]
    pub fn classify(kind: MsgKind) -> Option<DirRequest> {
        match kind {
            MsgKind::DirRead => Some(DirRequest::Read),
            MsgKind::DirWrite => Some(DirRequest::Write),
            MsgKind::DirUpgrade => Some(DirRequest::Upgrade),
            MsgKind::SnoopRead
            | MsgKind::SnoopWrite
            | MsgKind::SnoopUpgrade
            | MsgKind::DirFwdRead
            | MsgKind::DirFwdWrite
            | MsgKind::DirInval
            | MsgKind::DirAck
            | MsgKind::BlockData
            | MsgKind::WriteBack
            | MsgKind::MemUpdate => None,
        }
    }
}

/// How the directory home dispatches an admitted request (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirAction {
    /// Forward a read miss to the dirty owner; the owner supplies and
    /// downgrades, then refreshes memory and directory at the home.
    ForwardRead {
        /// Current write-exclusive holder.
        owner: NodeId,
    },
    /// Forward a write miss to the dirty owner; the owner supplies and
    /// invalidates its copy.
    ForwardWrite {
        /// Current write-exclusive holder.
        owner: NodeId,
    },
    /// Multicast an invalidation to the other sharers before granting
    /// ownership to the requester.
    InvalidateSharers,
    /// Reply immediately with the block (clean read, or write with no other
    /// copies).
    GrantData,
    /// Acknowledge an upgrade without moving data (no other copies).
    GrantAck,
}

/// `true` when the directory says the requester itself owns the block: its
/// dirty-victim write-back is still in flight, and the home must reclaim it
/// before serving the request against clean memory.
#[must_use]
pub fn must_reclaim_writeback(entry: &DirEntry, requester: NodeId) -> bool {
    entry.owner == Some(requester)
}

/// `true` when an upgrade request must be demoted to a full write miss: the
/// requester's read-shared line was invalidated while the request waited in
/// the busy queue, so an ack without data would grant ownership of a block
/// the requester no longer holds.
#[must_use]
pub fn upgrade_must_convert(entry: &DirEntry, requester: NodeId) -> bool {
    !entry.has_sharer(requester)
}

/// The full-map directory dispatch table. `entry` is the state *after*
/// [`must_reclaim_writeback`] handling, and `req` the request *after*
/// [`upgrade_must_convert`] demotion. Declared as the guarded rule set
/// [`crate::guarded::DIR_RULES`].
#[must_use]
pub fn dir_action(entry: &DirEntry, requester: NodeId, req: DirRequest) -> DirAction {
    crate::guarded::dir_action(entry, requester, req, None)
}

/// A processor operation at the atomic bus's serialisation point, as seen
/// by the MESI and Dragon rule sets. Misses and upgrades are bus
/// transactions; the two hit variants are local decisions that MESI and
/// Dragon still declare as rules (silent E→M promotion, Dragon's
/// write-to-shared update).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// Read miss.
    ReadMiss,
    /// Write miss (including upgrades demoted after losing the race).
    WriteMiss,
    /// Write to a still-valid read-shared line (MESI invalidating upgrade;
    /// Dragon broadcast update).
    WriteSharedHit,
    /// Write to a clean exclusive line (MESI/Dragon E state): promotes to
    /// modified without any bus transaction.
    WriteExclusiveHit,
}

/// How MESI serves an admitted bus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MesiAction {
    /// Read miss, no other valid copy: memory supplies, fill Exclusive.
    FillExclusive,
    /// Read miss, clean copies elsewhere: memory supplies, fill Shared.
    FillShared,
    /// Read miss, dirty owner elsewhere: the owner supplies, downgrades to
    /// Shared, and memory is refreshed; fill Shared.
    OwnerSuppliesShared,
    /// Write miss, dirty owner elsewhere: the owner supplies and
    /// invalidates its copy; fill Modified.
    OwnerSuppliesModified,
    /// Write miss, clean copies elsewhere: invalidate them; memory
    /// supplies; fill Modified.
    InvalidateAndFillModified,
    /// Write miss, uncached: memory supplies; fill Modified.
    FillModified,
    /// Upgrade with other sharers: invalidate them, promote to Modified.
    InvalidateAndPromote,
    /// Upgrade with no other copy: promote to Modified, no data moves.
    Promote,
    /// Write hit on an Exclusive line: promote to Modified silently (the
    /// MESI payoff — no bus transaction at all).
    PromoteSilently,
}

/// How Dragon serves an admitted bus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DragonAction {
    /// Read miss, uncached: memory supplies, fill Exclusive.
    FillExclusive,
    /// Read miss, clean copies elsewhere: memory supplies, fill
    /// Shared-clean.
    FillShared,
    /// Read miss with an owner (Sm or M): the owner supplies and demotes
    /// to Sm; fill Shared-clean.
    OwnerSuppliesShared,
    /// Write miss, uncached: memory supplies, fill Modified.
    FillModified,
    /// Write miss with copies elsewhere: fetch the block (owner supplies
    /// if dirty), broadcast the update word; requester becomes Sm, the
    /// previous owner demotes to Shared-clean.
    FillSharedOwnerUpdate,
    /// Write hit on a shared line with other copies: broadcast the update
    /// word; requester becomes (or stays) Sm, other copies stay valid.
    BroadcastUpdate,
    /// Write hit on a shared line whose other copies have all rolled out:
    /// the update finds no listeners, promote to Modified.
    PromoteToModified,
    /// Write hit on an Exclusive line: promote to Modified silently.
    PromoteSilently,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooper_table_matches_paper_protocol() {
        assert_eq!(snooper_action(LineState::We, MsgKind::SnoopRead), SnoopAction::SupplyDowngrade);
        assert_eq!(
            snooper_action(LineState::We, MsgKind::SnoopWrite),
            SnoopAction::SupplyInvalidate
        );
        assert_eq!(snooper_action(LineState::Rs, MsgKind::SnoopWrite), SnoopAction::Invalidate);
        assert_eq!(snooper_action(LineState::Rs, MsgKind::SnoopUpgrade), SnoopAction::Invalidate);
        assert_eq!(snooper_action(LineState::Inv, MsgKind::SnoopWrite), SnoopAction::Ignore);
        assert_eq!(snooper_action(LineState::Rs, MsgKind::BlockData), SnoopAction::Ignore);
    }

    #[test]
    fn home_table_claims_only_when_clean() {
        assert_eq!(home_snoop_action(false, MsgKind::SnoopRead), HomeSnoopAction::Supply);
        assert_eq!(home_snoop_action(false, MsgKind::SnoopWrite), HomeSnoopAction::SupplyClaim);
        assert_eq!(home_snoop_action(false, MsgKind::SnoopUpgrade), HomeSnoopAction::AckClaim);
        for kind in [MsgKind::SnoopRead, MsgKind::SnoopWrite, MsgKind::SnoopUpgrade] {
            assert_eq!(home_snoop_action(true, kind), HomeSnoopAction::Silent);
        }
    }

    #[test]
    fn dir_table_forwards_to_owner() {
        let requester = NodeId::new(0);
        let owner = NodeId::new(2);
        let entry = DirEntry { owner: Some(owner), sharers: DirEntry::mask(owner) };
        assert_eq!(
            dir_action(&entry, requester, DirRequest::Read),
            DirAction::ForwardRead { owner }
        );
        assert_eq!(
            dir_action(&entry, requester, DirRequest::Write),
            DirAction::ForwardWrite { owner }
        );
    }

    #[test]
    fn dir_table_invalidates_other_sharers() {
        let requester = NodeId::new(0);
        let mut entry = DirEntry {
            sharers: DirEntry::mask(requester) | DirEntry::mask(NodeId::new(3)),
            ..DirEntry::default()
        };
        assert_eq!(dir_action(&entry, requester, DirRequest::Write), DirAction::InvalidateSharers);
        assert_eq!(
            dir_action(&entry, requester, DirRequest::Upgrade),
            DirAction::InvalidateSharers
        );
        entry.sharers = DirEntry::mask(requester);
        assert_eq!(dir_action(&entry, requester, DirRequest::Write), DirAction::GrantData);
        assert_eq!(dir_action(&entry, requester, DirRequest::Upgrade), DirAction::GrantAck);
    }

    #[test]
    fn reclaim_and_convert_predicates() {
        let n = NodeId::new(1);
        let mut entry = DirEntry::default();
        assert!(!must_reclaim_writeback(&entry, n));
        assert!(upgrade_must_convert(&entry, n));
        entry.owner = Some(n);
        entry.sharers = DirEntry::mask(n);
        assert!(must_reclaim_writeback(&entry, n));
        assert!(!upgrade_must_convert(&entry, n));
    }
}
