//! Pure coherence-invariant evaluators.
//!
//! The runtime sanitizer in `ringsim-core` and the exhaustive model checker
//! in `ringsim-check` both judge protocol states with these functions, so
//! "what counts as a violation" is defined exactly once.
//!
//! All evaluators take a per-node snapshot of one block:
//!
//! * `states[i]` — node `i`'s cache-line state for the block,
//! * `conflicting[i]` — node `i` has a transaction in flight on the block
//!   (such a node's stale copy is permitted transiently: the retry/convert
//!   path drops it before the transaction completes).

use ringsim_cache::LineState;

use crate::DirEntry;

/// Single-writer/multiple-reader: at most one `We` holder, and a `We`
/// holder never coexists with a *settled* `Rs` copy elsewhere. Holds in
/// every reachable state, not only at quiescence.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_swmr(states: &[LineState], conflicting: &[bool]) -> Result<(), String> {
    let writers: Vec<usize> = (0..states.len()).filter(|&i| states[i] == LineState::We).collect();
    if writers.len() > 1 {
        return Err(format!("SWMR: {} write-exclusive holders {writers:?}", writers.len()));
    }
    if let Some(&w) = writers.first() {
        let settled: Vec<usize> =
            (0..states.len()).filter(|&i| states[i] == LineState::Rs && !conflicting[i]).collect();
        if !settled.is_empty() {
            return Err(format!(
                "SWMR: writer P{w} coexists with settled read-shared copies at {settled:?}"
            ));
        }
    }
    Ok(())
}

/// Snooping memory agreement, safe side: a write-exclusive line always has
/// the home's dirty bit set (the probe that created the owner set it).
/// Holds in every reachable state.
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_we_implies_dirty(states: &[LineState], dirty: bool) -> Result<(), String> {
    if dirty {
        return Ok(());
    }
    match states.iter().position(|&s| s == LineState::We) {
        Some(w) => {
            Err(format!("snooping: P{w} holds the block write-exclusive but memory is clean"))
        }
        None => Ok(()),
    }
}

/// Dirty-owner liveness: a dirty block's data must remain reachable — some
/// cache holds it `We`, or the owner's write-back / in-flight transaction
/// will refresh the home. `wb_pending[i]` marks a dirty-victim write-back
/// in flight from node `i`.
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_dirty_data_reachable(
    states: &[LineState],
    conflicting: &[bool],
    wb_pending: &[bool],
    dirty: bool,
) -> Result<(), String> {
    if !dirty {
        return Ok(());
    }
    let reachable =
        (0..states.len()).any(|i| states[i] == LineState::We || conflicting[i] || wb_pending[i]);
    if reachable {
        Ok(())
    } else {
        Err("dirty block with no write-exclusive copy, write-back, or transaction in flight"
            .to_owned())
    }
}

/// Directory–cache agreement at (per-block) quiescence: the presence bits
/// list exactly the caches holding the block, and the dirty bit points at
/// the one write-exclusive holder. The caller must ensure the block is
/// quiescent — entry unlocked, no transaction or write-back in flight.
///
/// # Errors
///
/// Returns a description of the first disagreement found.
pub fn check_dir_agreement(states: &[LineState], entry: &DirEntry) -> Result<(), String> {
    let mut cached = 0u64;
    for (i, &s) in states.iter().enumerate() {
        if s.is_valid() {
            cached |= 1 << i;
        }
    }
    if entry.sharers != cached {
        return Err(format!(
            "directory presence bits {:#b} disagree with cached copies {cached:#b}",
            entry.sharers
        ));
    }
    let we_holder = states.iter().position(|&s| s == LineState::We);
    match (entry.owner, we_holder) {
        (Some(o), Some(w)) if o.index() != w => {
            Err(format!("directory owner {o} but P{w} holds the block write-exclusive"))
        }
        (Some(o), None) => Err(format!("directory owner {o} but no write-exclusive copy")),
        (None, Some(w)) => Err(format!("no directory owner but P{w} is write-exclusive")),
        (Some(_), Some(_)) | (None, None) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_types::NodeId;

    const NONE: [bool; 4] = [false; 4];

    #[test]
    fn swmr_accepts_readers_and_single_writer() {
        use LineState::{Inv, Rs, We};
        assert!(check_swmr(&[Rs, Rs, Inv, Rs], &NONE).is_ok());
        assert!(check_swmr(&[Inv, We, Inv, Inv], &NONE).is_ok());
    }

    #[test]
    fn swmr_rejects_two_writers_and_settled_readers() {
        use LineState::{Inv, Rs, We};
        assert!(check_swmr(&[We, We, Inv, Inv], &NONE).is_err());
        assert!(check_swmr(&[We, Rs, Inv, Inv], &NONE).is_err());
        // ... but tolerates a reader whose conflicting transaction is still
        // in flight (the retry path drops the stale copy).
        assert!(check_swmr(&[We, Rs, Inv, Inv], &[false, true, false, false]).is_ok());
    }

    #[test]
    fn we_implies_dirty() {
        use LineState::{Inv, We};
        assert!(check_we_implies_dirty(&[Inv, We], true).is_ok());
        assert!(check_we_implies_dirty(&[Inv, We], false).is_err());
        assert!(check_we_implies_dirty(&[Inv, Inv], false).is_ok());
    }

    #[test]
    fn dirty_data_reachability() {
        use LineState::{Inv, We};
        assert!(check_dirty_data_reachable(&[Inv, We], &[false; 2], &[false; 2], true).is_ok());
        assert!(check_dirty_data_reachable(&[Inv, Inv], &[false; 2], &[true, false], true).is_ok());
        assert!(check_dirty_data_reachable(&[Inv, Inv], &[false; 2], &[false; 2], true).is_err());
        assert!(check_dirty_data_reachable(&[Inv, Inv], &[false; 2], &[false; 2], false).is_ok());
    }

    #[test]
    fn dir_agreement_mirrors_caches() {
        use LineState::{Inv, Rs, We};
        let mut entry = DirEntry { sharers: 0b0110, ..DirEntry::default() };
        assert!(check_dir_agreement(&[Inv, Rs, Rs, Inv], &entry).is_ok());
        assert!(check_dir_agreement(&[Inv, Rs, Inv, Inv], &entry).is_err());
        entry.sharers = 0b0010;
        entry.owner = Some(NodeId::new(1));
        assert!(check_dir_agreement(&[Inv, We, Inv, Inv], &entry).is_ok());
        assert!(check_dir_agreement(&[Inv, Rs, Inv, Inv], &entry).is_err());
    }
}
