//! SCI linked-list directory protocol: request/action vocabulary, the
//! sharing-list state, and the [`SciEngine`] that serves references.
//!
//! The paper only *accounts* for the linked-list directory (Table 1,
//! [`crate::table1::LinkedListAccountant`]); this module makes it a
//! first-class protocol. Every decision the home makes — head insertion on
//! a miss, list-order invalidation walk on a write, rollout splice on an
//! eviction — is declared in the guarded rule set
//! [`crate::guarded::SCI_RULES`], so the protocol inherits the
//! totality/determinism lint and the dead-rule gate, and the
//! `ringsim-check` model checker drives the same rules.
//!
//! [`SciEngine`] is the untimed core shared by the timed
//! `ringsim-core::SciRingSystem` backend: it owns the caches and sharing
//! lists, serves one [`MemRef`] at a time, and reports how many ring
//! traversals the transaction's message path needs. Replaying a reference
//! stream through the engine in stream order reproduces the
//! [`LinkedListAccountant`]'s [`TraversalReport`] exactly — a test pins
//! that equivalence.
//!
//! [`LinkedListAccountant`]: crate::table1::LinkedListAccountant

use std::collections::HashMap;

use ringsim_cache::{AccessClass, Cache, CacheConfig, LineState};
use ringsim_ring::RingLayout;
use ringsim_types::{AccessKind, BlockAddr, ConfigError, MemRef, NodeId, Region};

use crate::guarded::{sci_action, FireCounts};
use crate::table1::TraversalReport;

/// A request at the SCI home's per-block serialisation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SciRequest {
    /// Read miss: the requester wants to join the sharing list.
    Read,
    /// Write miss: the requester wants the block exclusively.
    Write,
    /// Upgrade of a still-listed read-shared copy (converted to
    /// [`SciRequest::Write`] if the copy was purged while queued).
    Upgrade,
    /// Rollout: an evicted copy splices itself out of the list.
    Rollout,
}

/// How the SCI home serves an admitted request (see
/// [`crate::guarded::SCI_RULES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SciAction {
    /// Read miss on an empty list: memory supplies; the requester becomes
    /// the list head.
    GrantFromMemory,
    /// Read miss on a non-empty list: forward to the head, which supplies
    /// (and downgrades if dirty); the requester prepends itself.
    ForwardToHead,
    /// Write miss on an empty list: memory supplies; the requester becomes
    /// the sole, dirty head.
    GrantClaim,
    /// Write miss on a non-empty list: the head supplies, then the whole
    /// list is purged by walking it in list order; the requester becomes
    /// the sole, dirty head.
    PurgeAndClaim,
    /// Upgrade with other list members: purge them in list order; the
    /// requester re-attaches as the sole, dirty head.
    PurgeOthersAndClaim,
    /// Upgrade by the sole list member: claim dirty, nothing moves.
    Claim,
    /// Rollout: splice the evicted node out of the sharing list.
    Splice,
}

/// Per-block sharing-list state: the distributed SCI list, head first,
/// plus the head-holds-dirty-data bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SciList {
    /// Sharing list, head first (new sharers prepend, as in SCI).
    pub list: Vec<NodeId>,
    /// The head's copy is modified; memory is stale.
    pub dirty: bool,
}

impl SciList {
    /// Whether `node` is on the list.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.list.contains(&node)
    }

    /// List members other than `node`, in list order.
    #[must_use]
    pub fn others(&self, node: NodeId) -> Vec<NodeId> {
        self.list.iter().copied().filter(|&p| p != node).collect()
    }

    /// Splices `node` out (rollout); clears the dirty bit when the list
    /// empties (the rolled-out head wrote the data back).
    pub fn splice(&mut self, node: NodeId) {
        self.list.retain(|&p| p != node);
        if self.list.is_empty() {
            self.dirty = false;
        }
    }
}

/// What serving one reference did, as the timed backend needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SciStep {
    /// Cache-side classification of the reference.
    pub class: AccessClass,
    /// Complete ring traversals the transaction's message path needs
    /// (0 for hits and fully home-local transactions).
    pub traversals: usize,
    /// Data was supplied by a dirty head cache rather than home memory.
    pub dirty_supply: bool,
    /// Copies purged from other caches.
    pub invalidated: usize,
}

impl SciStep {
    const HIT: SciStep =
        SciStep { class: AccessClass::Hit, traversals: 0, dirty_supply: false, invalidated: 0 };
}

/// The SCI linked-list directory engine: caches + sharing lists + the
/// traversal accounting of [`crate::table1::LinkedListAccountant`], with
/// every home decision dispatched through [`crate::guarded::SCI_RULES`].
#[derive(Debug)]
pub struct SciEngine<H> {
    layout: RingLayout,
    home_of: H,
    caches: Vec<Cache>,
    entries: HashMap<u64, SciList>,
    report: TraversalReport,
}

impl<H: Fn(BlockAddr) -> NodeId> SciEngine<H> {
    /// Creates the engine for the ring described by `layout`; `home_of`
    /// maps blocks to home nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the layout has more than 64 nodes.
    pub fn new(layout: RingLayout, home_of: H) -> Result<Self, ConfigError> {
        if layout.nodes() > 64 {
            return Err(ConfigError::new("nodes", "at most 64 nodes supported"));
        }
        let caches = (0..layout.nodes())
            .map(|_| Cache::new(CacheConfig::paper_default()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            layout,
            home_of,
            caches,
            entries: HashMap::new(),
            report: TraversalReport::default(),
        })
    }

    /// The accumulated traversal distributions (matches
    /// [`crate::table1::LinkedListAccountant::report`] when the same
    /// stream is replayed in the same order).
    #[must_use]
    pub fn report(&self) -> TraversalReport {
        self.report
    }

    /// The home node of `block`.
    #[must_use]
    pub fn home(&self, block: BlockAddr) -> NodeId {
        (self.home_of)(block)
    }

    /// Non-mutating classification of a reference against `node`'s cache.
    #[must_use]
    pub fn peek(&self, node: NodeId, block: BlockAddr, kind: AccessKind) -> AccessClass {
        self.caches[node.index()].peek(block, kind)
    }

    /// `node`'s cache-line state for `block` (for the retire-time
    /// sanitizer).
    #[must_use]
    pub fn state_of(&self, node: NodeId, block: BlockAddr) -> LineState {
        self.caches[node.index()].state_of(block)
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.caches.len()
    }

    /// Serves one reference: classifies it, dispatches the home decision
    /// through [`crate::guarded::SCI_RULES`], applies the list and cache
    /// mutations, and accounts the ring traversals.
    pub fn process(&mut self, r: MemRef, counts: Option<&FireCounts>) -> SciStep {
        let node = r.node;
        let block = r.addr.block(16);
        match self.caches[node.index()].classify(block, r.kind) {
            AccessClass::Hit => SciStep::HIT,
            AccessClass::Upgrade => self.serve_upgrade(node, block, r.region, counts),
            AccessClass::Miss => self.serve_miss(node, block, r.kind, r.region, counts),
        }
    }

    fn serve_upgrade(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        region: Region,
        counts: Option<&FireCounts>,
    ) -> SciStep {
        let home = (self.home_of)(block);
        let entry = self.entries.entry(block.raw()).or_default();
        debug_assert!(entry.contains(node), "upgrader must be a sharer");
        let action = sci_action(SciRequest::Upgrade, entry.list.len(), true, counts);
        debug_assert!(
            matches!(action, SciAction::PurgeOthersAndClaim | SciAction::Claim),
            "unexpected {action:?}"
        );
        // SCI-style invalidation: the writer first detaches and re-attaches
        // as list head via the home (one round trip), then purges the
        // remaining members by walking the list in list order.
        let others = entry.others(node);
        let mut n =
            if home == node { 0 } else { self.layout.closed_path_traversals(&[node, home]) };
        if !others.is_empty() {
            let mut purge = vec![node];
            purge.extend(others.iter().copied());
            n += self.layout.closed_path_traversals(&purge);
        }
        if region == Region::Shared {
            self.report.invalidate.record(n);
        }
        for peer in &others {
            self.caches[peer.index()].snoop_invalidate(block);
        }
        entry.list = vec![node];
        entry.dirty = true;
        self.caches[node.index()].promote(block);
        SciStep {
            class: AccessClass::Upgrade,
            traversals: n,
            dirty_supply: false,
            invalidated: others.len(),
        }
    }

    fn serve_miss(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        kind: AccessKind,
        region: Region,
        counts: Option<&FireCounts>,
    ) -> SciStep {
        let home = (self.home_of)(block);
        let entry = self.entries.entry(block.raw()).or_default();
        let req = if kind.is_write() { SciRequest::Write } else { SciRequest::Read };
        let action = sci_action(req, entry.list.len(), false, counts);
        let dirty_supply = entry.dirty && !entry.list.is_empty();
        let mut path = vec![node];
        if home != node {
            path.push(home);
        }
        match action {
            SciAction::GrantFromMemory | SciAction::GrantClaim | SciAction::Claim => {}
            SciAction::ForwardToHead => {
                if let Some(&head) = entry.list.first() {
                    path.push(head);
                }
            }
            SciAction::PurgeAndClaim => {
                // Data comes from the head; the rest of the list is
                // invalidated by walking it in order.
                path.extend(entry.list.iter().copied());
            }
            SciAction::PurgeOthersAndClaim | SciAction::Splice => {
                unreachable!("miss dispatch cannot yield {action:?}")
            }
        }
        let n = if path.len() == 1 { 0 } else { self.layout.closed_path_traversals(&path) };
        if region == Region::Shared {
            self.report.miss.record(n);
        }
        let mut invalidated = 0;
        match kind {
            AccessKind::Read => {
                if entry.dirty {
                    if let Some(&head) = entry.list.first() {
                        self.caches[head.index()].snoop_downgrade(block);
                    }
                    entry.dirty = false;
                }
                entry.list.insert(0, node);
            }
            AccessKind::Write => {
                invalidated = entry.list.len();
                for peer in entry.list.clone() {
                    self.caches[peer.index()].snoop_invalidate(block);
                }
                entry.list = vec![node];
                entry.dirty = true;
            }
        }
        let state = if kind.is_write() { LineState::We } else { LineState::Rs };
        if let Some((victim, _)) = self.caches[node.index()].fill(block, state) {
            // SCI rollout: detach from the victim's sharing list.
            if let Some(v) = self.entries.get_mut(&victim.raw()) {
                let act = sci_action(SciRequest::Rollout, v.list.len(), v.contains(node), counts);
                debug_assert_eq!(act, SciAction::Splice);
                v.splice(node);
            }
        }
        SciStep { class: AccessClass::Miss, traversals: n, dirty_supply, invalidated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::LinkedListAccountant;
    use ringsim_ring::RingConfig;
    use ringsim_trace::{Workload, WorkloadSpec};

    fn layout(n: usize) -> RingLayout {
        RingConfig::standard_500mhz(n).layout().unwrap()
    }

    #[test]
    fn engine_matches_the_accountant_on_a_demo_stream() {
        let mut w = Workload::new(WorkloadSpec::demo(16)).unwrap();
        let space = w.space();
        let mut acct =
            LinkedListAccountant::new(layout(16), move |b| space.home_of_block(b)).unwrap();
        let space2 = w.space();
        let mut engine = SciEngine::new(layout(16), move |b| space2.home_of_block(b)).unwrap();
        let counts = FireCounts::new();
        for r in w.round_robin(4_000) {
            acct.process(r);
            engine.process(r, Some(&counts));
        }
        assert_eq!(engine.report(), acct.report());
        // A busy demo stream exercises every non-rollout rule.
        let fired: Vec<&str> = counts
            .snapshot()
            .iter()
            .filter(|f| f.ruleset == "sci" && f.fired > 0)
            .map(|f| f.rule)
            .collect();
        assert!(fired.len() >= 5, "rules fired: {fired:?}");
    }

    #[test]
    fn worst_case_list_walk_matches_accountant() {
        use ringsim_types::{AccessKind::*, Addr, MemRef, Region::Shared};
        let mut engine = SciEngine::new(layout(16), |_| NodeId::new(0)).unwrap();
        let mk = |node: usize, kind| MemRef {
            node: NodeId::new(node),
            addr: Addr::new(0x300),
            kind,
            region: Shared,
        };
        engine.process(mk(4, Read), None);
        engine.process(mk(8, Read), None);
        engine.process(mk(12, Read), None);
        let step = engine.process(mk(14, Write), None);
        assert_eq!(step.class, AccessClass::Miss);
        assert!(step.traversals >= 3, "walking a descending list wraps: {step:?}");
        assert_eq!(step.invalidated, 3);
        assert_eq!(engine.report().miss.three_plus, 1);
    }

    #[test]
    fn dirty_head_supplies_read_misses() {
        use ringsim_types::{AccessKind::*, Addr, MemRef, Region::Shared};
        let mut engine = SciEngine::new(layout(8), |_| NodeId::new(0)).unwrap();
        let mk = |node: usize, kind| MemRef {
            node: NodeId::new(node),
            addr: Addr::new(0x40),
            kind,
            region: Shared,
        };
        engine.process(mk(3, Write), None);
        let step = engine.process(mk(5, Read), None);
        assert!(step.dirty_supply);
        assert_eq!(engine.state_of(NodeId::new(3), Addr::new(0x40).block(16)), LineState::Rs);
    }
}
