use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use ringsim_types::BlockAddr;

/// Memory-side state of the snooping protocol: one dirty bit per block
/// (paper §3.1).
///
/// When the dirty bit is clear, the home node owns the block and answers
/// probes; when it is set, some cache holds the block write-exclusive and
/// the home stays silent. The home does not know *which* cache — that is the
/// essence of snooping.
///
/// # Examples
///
/// ```
/// use ringsim_proto::HomeMemory;
/// use ringsim_types::BlockAddr;
///
/// let mut mem = HomeMemory::default();
/// let b = BlockAddr::new(7);
/// assert!(!mem.is_dirty(b));
/// mem.set_dirty(b);
/// assert!(mem.is_dirty(b));
/// mem.clear_dirty(b);
/// assert!(!mem.is_dirty(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeMemory {
    dirty: HashSet<u64>,
}

impl HomeMemory {
    /// Creates memory with all dirty bits clear.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the block's dirty bit is set.
    #[must_use]
    pub fn is_dirty(&self, block: BlockAddr) -> bool {
        self.dirty.contains(&block.raw())
    }

    /// Sets the dirty bit (a cache took the block write-exclusive).
    pub fn set_dirty(&mut self, block: BlockAddr) {
        self.dirty.insert(block.raw());
    }

    /// Clears the dirty bit (a write-back or downgrade refreshed memory).
    pub fn clear_dirty(&mut self, block: BlockAddr) {
        self.dirty.remove(&block.raw());
    }

    /// Number of blocks currently dirty somewhere.
    #[must_use]
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_toggle_independently() {
        let mut m = HomeMemory::new();
        let a = BlockAddr::new(1);
        let b = BlockAddr::new(2);
        m.set_dirty(a);
        assert!(m.is_dirty(a));
        assert!(!m.is_dirty(b));
        m.set_dirty(b);
        m.clear_dirty(a);
        assert!(!m.is_dirty(a));
        assert!(m.is_dirty(b));
        assert_eq!(m.dirty_blocks(), 1);
    }

    #[test]
    fn clear_is_idempotent() {
        let mut m = HomeMemory::new();
        m.clear_dirty(BlockAddr::new(9));
        assert!(!m.is_dirty(BlockAddr::new(9)));
    }
}
