//! Cache-coherence protocol building blocks for the slotted ring.
//!
//! This crate provides, protocol by protocol, everything that is not timing:
//!
//! * [`RingMessage`] / [`MsgKind`] — the message vocabulary shared by the
//!   snooping and directory protocols (probes and block messages, paper §2),
//! * [`HomeMemory`] — the memory-side state of the snooping protocol: one
//!   dirty bit per block (paper §3.1),
//! * [`Directory`] — the full-map directory: presence bits + dirty bit per
//!   block, with a busy/pending queue used by the timed simulator to
//!   serialise conflicting transactions (paper §3.2),
//! * [`table1`] — untimed traversal accountants for the full-map and the
//!   SCI-like linked-list directory, which regenerate Table 1,
//! * [`guarded`] — the declarative guarded-action rule sets both protocols'
//!   transition tables are expressed in, with a totality/determinism lint
//!   and per-rule fire counts (dead-rule detection),
//! * [`transitions`] — the pure transition tables consulted by both the
//!   timed simulators and the `ringsim-check` model checker (thin wrappers
//!   over [`guarded`]),
//! * [`invariants`] — the coherence-invariant evaluators shared by the
//!   runtime sanitizer and the model checker.
//!
//! The timed semantics (who waits for which slot when) live in
//! `ringsim-core`; the untimed reference semantics live in
//! `ringsim-trace::RefInterpreter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directory;
pub mod guarded;
pub mod invariants;
mod memory;
mod msg;
pub mod sci;
pub mod table1;
pub mod transitions;

pub use directory::{DirEntry, Directory};
pub use memory::HomeMemory;
pub use msg::{MsgClass, MsgKind, RingMessage};

use serde::{Deserialize, Serialize};

/// Which coherence protocol a ring system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Broadcast snooping over probe slots (paper §3.1).
    Snooping,
    /// Full-map directory at the home nodes (paper §3.2).
    Directory,
    /// SCI-like linked-list directory at the home nodes (paper Table 1,
    /// now a first-class timed and checked protocol).
    Sci,
    /// Classic 4-state MESI on the bus backend (silent E→M promotion).
    Mesi,
    /// Dragon update-based protocol on the bus backend (write updates
    /// instead of invalidations; an Sm owner supplies shared data).
    Dragon,
}

impl ProtocolKind {
    /// Short lowercase label used in tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Snooping => "snooping",
            ProtocolKind::Directory => "directory",
            ProtocolKind::Sci => "sci",
            ProtocolKind::Mesi => "mesi",
            ProtocolKind::Dragon => "dragon",
        }
    }
}

impl core::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}
