//! Sharded execution must be invisible in the artifacts: a sweep split
//! across 4 concurrent shard workers (sharing one cache, as the serve
//! coordinator arranges across *processes*) folds into artifacts that are
//! byte-identical to the single-pool path. This is the `--jobs`-invariance
//! contract lifted one level up — see `crates/sweep/src/shard.rs`.

use std::path::Path;
use std::time::Duration;

use ringsim_sweep::{
    run_experiment, Artifact, Experiment, Shard, SweepConfig, SweepCtx, SweepPoint,
};

/// A two-`map`-call experiment: the second call consumes the first call's
/// results (the shape that forces shard workers to exchange values through
/// the cache, not just partition work).
struct Chained;

impl Experiment for Chained {
    fn name(&self) -> &'static str {
        "chained"
    }
    fn description(&self) -> &'static str {
        "two dependent map calls"
    }
    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let points: Vec<u64> = (0..13).collect();
        let squares = ctx.map(
            &points,
            |p| SweepPoint::new().detail(format!("sq-{p}")),
            |c, p| p * p + u64::from(c.seed == 0),
        );
        // Every point of the second call depends on the *full* first-call
        // vector, so a shard that only knew its own stripe would diverge.
        let total: u64 = squares.iter().sum();
        let shifted =
            ctx.map(&points, |p| SweepPoint::new().detail(format!("sh-{p}")), |_c, p| total + p);
        ctx.write_json("chained", &(squares, shifted));
        ctx.write_dat("chained", "i value", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        ctx.artifacts()
    }
}

fn read_artifacts(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join("chained.json")).expect("json artifact"),
        std::fs::read(dir.join("chained.dat")).expect("dat artifact"),
    )
}

#[test]
fn four_concurrent_shards_fold_to_single_pool_bytes() {
    let base = std::env::temp_dir().join(format!("ringsim-shard-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Reference: plain single-pool run.
    let solo_dir = base.join("solo");
    let solo = run_experiment(&Chained, &SweepConfig::new(3).jobs(2).out_dir(&solo_dir));
    assert_eq!(solo.meta.points, 26);
    let (solo_json, solo_dat) = read_artifacts(&solo_dir);

    // Sharded: 4 workers run concurrently (threads stand in for the serve
    // coordinator's processes — the cache protocol is identical), each with
    // a private out dir and the shared run dir as cache root.
    let run_dir = base.join("run");
    std::thread::scope(|scope| {
        for w in 0..4 {
            let run_dir = run_dir.clone();
            scope.spawn(move || {
                let cfg = SweepConfig::new(3)
                    .jobs(2)
                    .out_dir(run_dir.join(format!("shards/{w}")))
                    .cache_dir(&run_dir)
                    .shard(Shard::new(w, 4).unwrap())
                    .shard_wait(Duration::from_secs(60));
                let report = run_experiment(&Chained, &cfg);
                // Every worker assembles the full result vector.
                assert_eq!(report.meta.points, 26);
            });
        }
    });

    // Fold: re-run against the warm shared cache, single pool. Zero points
    // recomputed; artifacts land in the run dir.
    let fold = run_experiment(
        &Chained,
        &SweepConfig::new(3).jobs(1).out_dir(&run_dir).cache_dir(&run_dir),
    );
    assert_eq!(
        (fold.meta.cache_hits, fold.meta.cache_misses),
        (26, 0),
        "fold must be pure cache replay"
    );
    let (fold_json, fold_dat) = read_artifacts(&run_dir);
    assert_eq!(fold_json, solo_json, "sharded JSON artifact differs from single-pool run");
    assert_eq!(fold_dat, solo_dat, "sharded dat artifact differs from single-pool run");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn lone_shard_equals_unsharded_run() {
    let base = std::env::temp_dir().join(format!("ringsim-shard-lone-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let solo_dir = base.join("solo");
    run_experiment(&Chained, &SweepConfig::new(3).jobs(2).out_dir(&solo_dir));

    let lone_dir = base.join("lone");
    let lone = run_experiment(
        &Chained,
        &SweepConfig::new(3).jobs(2).out_dir(&lone_dir).shard(Shard::new(0, 1).unwrap()),
    );
    assert_eq!(lone.meta.points, 26);
    assert_eq!(read_artifacts(&solo_dir).0, read_artifacts(&lone_dir).0);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn dead_peer_falls_back_to_local_compute() {
    let base = std::env::temp_dir().join(format!("ringsim-shard-dead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Only shard 0 of 2 ever runs; its peer is "dead". With a tiny wait
    // deadline the worker computes the missing stripe itself and still
    // produces correct artifacts.
    let solo_dir = base.join("solo");
    run_experiment(&Chained, &SweepConfig::new(3).jobs(2).out_dir(&solo_dir));

    let run_dir = base.join("run");
    let cfg = SweepConfig::new(3)
        .jobs(2)
        .out_dir(run_dir.join("shards/0"))
        .cache_dir(&run_dir)
        .shard(Shard::new(0, 2).unwrap())
        .shard_wait(Duration::from_millis(40));
    let report = run_experiment(&Chained, &cfg);
    assert_eq!(report.meta.points, 26);

    let fold = run_experiment(
        &Chained,
        &SweepConfig::new(3).jobs(1).out_dir(&run_dir).cache_dir(&run_dir),
    );
    assert_eq!((fold.meta.cache_hits, fold.meta.cache_misses), (26, 0));
    assert_eq!(read_artifacts(&solo_dir).0, read_artifacts(&run_dir).0);

    let _ = std::fs::remove_dir_all(&base);
}
