//! The parallel point runner: a work-sharing pool over std scoped threads.
//!
//! crossbeam is unavailable in this build environment (no crates.io
//! access), so the pool uses `std::thread::scope`, an atomic next-point
//! cursor for work sharing, and an `mpsc` channel to collect results.
//! Determinism does not depend on the schedule: every result carries its
//! point index and is re-assembled in submission order, and every point's
//! RNG seed is a pure function of its identity (see
//! [`SweepPoint::seed`](crate::SweepPoint::seed)).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::{PointCtx, PointStat, SweepPoint};

/// Runs `work` over `points` on up to `jobs` threads, returning results in
/// point order plus one [`PointStat`] per point (also in point order).
pub fn run_points<P, R>(
    experiment: &str,
    jobs: usize,
    refs_per_proc: u64,
    points: &[P],
    key: impl Fn(&P) -> SweepPoint + Sync,
    work: impl Fn(&PointCtx, &P) -> R + Sync,
) -> (Vec<R>, Vec<PointStat>)
where
    P: Sync,
    R: Send,
{
    let n = points.len();
    let jobs = jobs.clamp(1, n.max(1));
    let run_one = |i: usize| -> (R, PointStat) {
        let point = key(&points[i]);
        let pctx = PointCtx {
            experiment: experiment.to_owned(),
            label: point.label(),
            seed: point.seed(experiment),
            refs_per_proc,
            index: i,
        };
        let start = Instant::now();
        let result = work(&pctx, &points[i]);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let stat = PointStat { label: pctx.label, seed: pctx.seed, wall_ms, cached: false };
        (result, stat)
    };

    if jobs == 1 {
        // Serial fast path: no pool, same results by construction.
        let mut results = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        for i in 0..n {
            let (r, s) = run_one(i);
            results.push(r);
            stats.push(s);
        }
        return (results, stats);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R, PointStat)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let run_one = &run_one;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (r, s) = run_one(i);
                if tx.send((i, r, s)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    // Re-assemble in submission order: the artifact bytes cannot depend on
    // which worker finished first.
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut stats: Vec<Option<PointStat>> = (0..n).map(|_| None).collect();
    for (i, r, s) in rx {
        results[i] = Some(r);
        stats[i] = Some(s);
    }
    let results = results.into_iter().map(|r| r.expect("worker completed point")).collect();
    let stats = stats.into_iter().map(|s| s.expect("worker completed point")).collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points(jobs: usize) -> Vec<u64> {
        let points: Vec<u64> = (0..100).collect();
        let (results, stats) = run_points(
            "square",
            jobs,
            0,
            &points,
            |p| SweepPoint::new().detail(p.to_string()),
            |_ctx, p| p * p,
        );
        assert_eq!(stats.len(), 100);
        results
    }

    #[test]
    fn parallel_results_keep_submission_order() {
        let serial = square_points(1);
        for jobs in [2, 4, 8] {
            assert_eq!(square_points(jobs), serial);
        }
    }

    #[test]
    fn point_seeds_do_not_depend_on_jobs() {
        let points: Vec<u64> = (0..32).collect();
        let seeds = |jobs| {
            let (r, _) = run_points(
                "seeds",
                jobs,
                0,
                &points,
                |p| SweepPoint::new().detail(p.to_string()),
                |ctx, _| ctx.seed,
            );
            r
        };
        assert_eq!(seeds(1), seeds(7));
    }

    #[test]
    fn zero_points_is_fine() {
        let (r, s) =
            run_points("empty", 8, 0, &Vec::<u64>::new(), |_| SweepPoint::new(), |_, p| *p);
        assert!(r.is_empty() && s.is_empty());
    }
}
