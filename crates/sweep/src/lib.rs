//! Deterministic parallel sweep engine and the unified `Experiment` API.
//!
//! Every paper artifact (tables, figures, validation runs) is produced by a
//! type implementing [`Experiment`]. An experiment receives a [`SweepCtx`]
//! and fans its sweep points out through [`SweepCtx::map`], which runs them
//! on a thread pool (`--jobs N`) while guaranteeing the **determinism
//! contract**:
//!
//! * each point's RNG seed is a pure function of
//!   `(experiment, bench, procs, protocol, cycle, detail)` — see
//!   [`SweepPoint::seed`] — never of thread ids or schedule order;
//! * results are re-assembled in submission order before anything is
//!   written, so `results/*.json` and `results/*.dat` artifacts are
//!   **byte-identical** for any `--jobs` value;
//! * wall-clock measurements (which *are* schedule-dependent) are kept out
//!   of the artifacts and written to a `results/<name>.meta.json` twin
//!   instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod point;
mod shard;

pub use point::SweepPoint;
pub use shard::Shard;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// A progress event emitted while [`SweepCtx::map`] runs points, so a
/// long-running front end (the HTTP service's job queue, a TUI) can report
/// per-point progress without waiting for the whole sweep to finish.
#[derive(Debug, Clone)]
pub enum Progress {
    /// A `map` call began with this many points.
    MapStarted {
        /// Number of points submitted to this `map` call.
        points: usize,
    },
    /// One point finished (computed or served from the per-point cache).
    PointDone {
        /// Canonical point label.
        label: String,
        /// Whether the result came from the per-point cache.
        cached: bool,
    },
}

/// Progress callback. Invoked from worker threads, possibly concurrently,
/// so implementations must be cheap and thread-safe. Observational only:
/// it runs outside the work closure and cannot affect results.
pub type ProgressFn = Arc<dyn Fn(&Progress) + Send + Sync>;

/// How the engine runs an experiment: thread budget, per-processor
/// reference budget, and where artifacts land.
#[derive(Clone)]
pub struct SweepConfig {
    /// Maximum worker threads for [`SweepCtx::map`]; `1` forces the serial
    /// path.
    pub jobs: usize,
    /// Per-processor synthetic-reference budget handed to experiments.
    pub refs_per_proc: u64,
    /// Directory artifacts and meta twins are written into.
    pub out_dir: PathBuf,
    /// Whether [`SweepCtx::map`] consults the per-point result cache under
    /// `<out_dir>/.cache/` (see the `cache` module docs).
    pub use_cache: bool,
    /// Optional per-point progress callback (see [`Progress`]).
    pub progress: Option<ProgressFn>,
    /// Directory the `.cache/` tree hangs under; `None` means the out
    /// dir. Shard workers point this at the shared run directory so every
    /// shard merges through one cache (see [`Shard`]).
    pub cache_dir: Option<PathBuf>,
    /// This process's slice of a multi-process sweep, if sharded. Sharding
    /// forces the cache on — it is the merge substrate.
    pub shard: Option<Shard>,
    /// How long a shard worker polls the shared cache for a peer's point
    /// before computing it itself (liveness fallback; see [`Shard`]).
    pub shard_wait: Duration,
}

impl fmt::Debug for SweepConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepConfig")
            .field("jobs", &self.jobs)
            .field("refs_per_proc", &self.refs_per_proc)
            .field("out_dir", &self.out_dir)
            .field("use_cache", &self.use_cache)
            .field("progress", &self.progress.is_some())
            .field("cache_dir", &self.cache_dir)
            .field("shard", &self.shard)
            .finish()
    }
}

impl SweepConfig {
    /// A config with `jobs` = available parallelism, the default reference
    /// budget, `results/` as the output directory, and caching on.
    #[must_use]
    pub fn new(refs_per_proc: u64) -> Self {
        Self {
            jobs: default_jobs(),
            refs_per_proc,
            out_dir: PathBuf::from("results"),
            use_cache: true,
            progress: None,
            cache_dir: None,
            shard: None,
            shard_wait: Duration::from_secs(600),
        }
    }

    /// Overrides the thread budget (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the output directory.
    #[must_use]
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    /// Turns the per-point result cache on or off (`--no-cache`).
    #[must_use]
    pub fn cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Installs a per-point progress callback (see [`Progress`]).
    #[must_use]
    pub fn on_progress(mut self, f: ProgressFn) -> Self {
        self.progress = Some(f);
        self
    }

    /// Points the `.cache/` tree at a directory other than the out dir
    /// (shard workers share one cache under the run directory while
    /// keeping their scratch artifacts apart).
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Restricts this process to one [`Shard`] of the sweep (multi-process
    /// execution; forces the cache on).
    #[must_use]
    pub fn shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Overrides the peer-wait deadline of the sharded path.
    #[must_use]
    pub fn shard_wait(mut self, wait: Duration) -> Self {
        self.shard_wait = wait;
        self
    }

    /// The directory the `.cache/` tree hangs under.
    #[must_use]
    pub fn cache_root(&self) -> &Path {
        self.cache_dir.as_deref().unwrap_or(&self.out_dir)
    }
}

/// The default `--jobs` value: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-point context handed to the work closure of [`SweepCtx::map`].
#[derive(Debug, Clone)]
pub struct PointCtx {
    /// Name of the owning experiment.
    pub experiment: String,
    /// Canonical point label (see [`SweepPoint::label`]).
    pub label: String,
    /// Stable per-point RNG seed (see [`SweepPoint::seed`]).
    pub seed: u64,
    /// Per-processor reference budget for this run.
    pub refs_per_proc: u64,
    /// Index of this point in the submitted slice.
    pub index: usize,
}

/// Wall-time record for one completed sweep point; lands in the meta twin,
/// never in artifacts.
#[derive(Debug, Clone, Serialize)]
pub struct PointStat {
    /// Canonical point label.
    pub label: String,
    /// The seed the point ran with.
    pub seed: u64,
    /// Wall time of the point's work closure in milliseconds.
    pub wall_ms: f64,
    /// Whether the result came from the per-point cache.
    pub cached: bool,
}

/// What kind of file an [`Artifact`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ArtifactKind {
    /// Pretty-printed JSON (`.json`).
    Json,
    /// Gnuplot-ready whitespace table (`.dat`).
    Dat,
}

/// One file an experiment produced.
#[derive(Debug, Clone, Serialize)]
pub struct Artifact {
    /// Stem the experiment chose (`fig3`, `table2`, ...).
    pub name: String,
    /// File format.
    pub kind: ArtifactKind,
    /// Where it was written.
    pub path: PathBuf,
}

/// A named, self-describing paper experiment.
///
/// Implementations compute their sweep through [`SweepCtx::map`] (so points
/// parallelise), then print any human-readable table serially and write
/// artifacts via [`SweepCtx::write_json`] / [`SweepCtx::write_dat`].
pub trait Experiment: Sync {
    /// Stable registry name (`table1`, `fig4`, `ring_access`, ...).
    fn name(&self) -> &'static str;
    /// One-line description shown by `--list`.
    fn description(&self) -> &'static str;
    /// Runs the experiment, returning the artifacts it wrote (typically
    /// `ctx.artifacts()`).
    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact>;
}

/// The engine-side context an [`Experiment`] runs against: owns the config,
/// accumulates point statistics across `map` calls, and records artifacts.
pub struct SweepCtx {
    experiment: &'static str,
    cfg: SweepConfig,
    stats: Mutex<Vec<PointStat>>,
    artifacts: Mutex<Vec<Artifact>>,
    /// Ordinal of the next [`SweepCtx::map`] call, part of the cache key
    /// (two calls may reuse labels but run different work).
    map_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl SweepCtx {
    /// Builds a context for `experiment` and ensures the output directory
    /// exists.
    #[must_use]
    pub fn new(experiment: &'static str, cfg: SweepConfig) -> Self {
        let _ = fs::create_dir_all(&cfg.out_dir);
        Self {
            experiment,
            cfg,
            stats: Mutex::new(Vec::new()),
            artifacts: Mutex::new(Vec::new()),
            map_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The owning experiment's registry name.
    #[must_use]
    pub fn experiment(&self) -> &'static str {
        self.experiment
    }

    /// The thread budget this context runs with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.cfg.jobs
    }

    /// Per-processor reference budget experiments should size their
    /// workloads by.
    #[must_use]
    pub fn refs_per_proc(&self) -> u64 {
        self.cfg.refs_per_proc
    }

    /// The directory artifacts are written into.
    #[must_use]
    pub fn out_dir(&self) -> &Path {
        &self.cfg.out_dir
    }

    /// Runs `work` over `points` on up to [`jobs`](Self::jobs) threads and
    /// returns the results **in submission order**.
    ///
    /// `key` names each point; from it the engine derives the stable seed
    /// exposed as [`PointCtx::seed`]. The closure must not print or write
    /// files — compute rows here, render them serially afterwards.
    ///
    /// When the per-point cache is on (the default), each point's result is
    /// looked up under `<out_dir>/.cache/<experiment>/` first and only
    /// computed on a miss — which is why results must round-trip through
    /// serde (`Serialize + Deserialize`). Hit/miss counts land in the meta
    /// twin via [`RunMeta`].
    pub fn map<P, R>(
        &self,
        points: &[P],
        key: impl Fn(&P) -> SweepPoint + Sync,
        work: impl Fn(&PointCtx, &P) -> R + Sync,
    ) -> Vec<R>
    where
        P: Sync,
        R: Send + Serialize + Deserialize,
    {
        let map_call = self.map_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(shard) = self.cfg.shard {
            return self.map_sharded(map_call, shard, points, key, work);
        }
        let use_cache = self.cfg.use_cache;
        let progress = self.cfg.progress.as_ref();
        if let Some(p) = progress {
            p(&Progress::MapStarted { points: points.len() });
        }
        let wrapped = |pctx: &PointCtx, p: &P| -> (R, bool) {
            let entry = cache::entry_path(
                self.cfg.cache_root(),
                self.experiment,
                map_call,
                pctx.refs_per_proc,
                &pctx.label,
                pctx.seed,
            );
            if use_cache {
                if let Some(r) = cache::read::<R>(&entry) {
                    if let Some(pf) = progress {
                        pf(&Progress::PointDone { label: pctx.label.clone(), cached: true });
                    }
                    return (r, true);
                }
            }
            // Label this worker's telemetry so exported timelines sort
            // into a jobs-count-independent order.
            ringsim_obs::set_run_label(Some(&format!("{}/{}", pctx.experiment, pctx.label)));
            let r = work(pctx, p);
            ringsim_obs::set_run_label(None);
            if use_cache {
                cache::write(&entry, &r);
            }
            if let Some(pf) = progress {
                pf(&Progress::PointDone { label: pctx.label.clone(), cached: false });
            }
            (r, false)
        };
        let (results, mut stats) = engine::run_points(
            self.experiment,
            self.cfg.jobs,
            self.cfg.refs_per_proc,
            points,
            key,
            wrapped,
        );
        let mut out = Vec::with_capacity(results.len());
        for ((r, cached), stat) in results.into_iter().zip(&mut stats) {
            stat.cached = cached;
            let counter = if cached { &self.cache_hits } else { &self.cache_misses };
            counter.fetch_add(1, Ordering::Relaxed);
            out.push(r);
        }
        self.stats.lock().expect("stats lock").extend(stats);
        out
    }

    /// The multi-process path of [`map`](Self::map): this process computes
    /// only the points its [`Shard`] owns, then fills the rest of the
    /// result vector from the shared cache its peers write into.
    ///
    /// Two phases keep the critical path clean. **Phase 1** runs the owned
    /// stripe on the thread pool exactly like an unsharded `map` (cache
    /// consulted first, results written atomically into the shared
    /// `.cache/`), emitting progress for owned points only — so across all
    /// shards the per-point events sum to exactly the sweep size. **Phase
    /// 2** polls the shared cache for every peer-owned point; peers advance
    /// through the same map calls in lockstep, so the wait is bounded by
    /// shard skew, and since the slowest shard bounds the run anyway the
    /// poll adds nothing to wall clock. If the deadline
    /// ([`SweepConfig::shard_wait`]) expires — a peer died — the point is
    /// computed locally so the run still terminates with correct results.
    fn map_sharded<P, R>(
        &self,
        map_call: u64,
        shard: Shard,
        points: &[P],
        key: impl Fn(&P) -> SweepPoint + Sync,
        work: impl Fn(&PointCtx, &P) -> R + Sync,
    ) -> Vec<R>
    where
        P: Sync,
        R: Send + Serialize + Deserialize,
    {
        let n = points.len();
        let progress = self.cfg.progress.as_ref();
        // Per-point identity (label, seed, cache entry) in submission
        // order; `PointCtx::index` stays the *global* index so work
        // closures see the same context as in a single-pool run.
        let metas: Vec<(PointCtx, PathBuf)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let sp = key(p);
                let label = sp.label();
                let seed = sp.seed(self.experiment);
                let entry = cache::entry_path(
                    self.cfg.cache_root(),
                    self.experiment,
                    map_call,
                    self.cfg.refs_per_proc,
                    &label,
                    seed,
                );
                let pctx = PointCtx {
                    experiment: self.experiment.to_owned(),
                    label,
                    seed,
                    refs_per_proc: self.cfg.refs_per_proc,
                    index: i,
                };
                (pctx, entry)
            })
            .collect();
        let owned: Vec<usize> = (0..n).filter(|&i| shard.owns(i)).collect();
        if let Some(p) = progress {
            p(&Progress::MapStarted { points: owned.len() });
        }

        // Runs one owned (or fallback) point: cache-consult, compute,
        // atomic publish into the shared cache.
        let run_one = |i: usize, announce: bool| -> (R, bool, PointStat) {
            let (pctx, entry) = &metas[i];
            let start = Instant::now();
            if let Some(r) = cache::read::<R>(entry) {
                if announce {
                    if let Some(pf) = progress {
                        pf(&Progress::PointDone { label: pctx.label.clone(), cached: true });
                    }
                }
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let stat =
                    PointStat { label: pctx.label.clone(), seed: pctx.seed, wall_ms, cached: true };
                return (r, true, stat);
            }
            ringsim_obs::set_run_label(Some(&format!("{}/{}", pctx.experiment, pctx.label)));
            let r = work(pctx, &points[i]);
            ringsim_obs::set_run_label(None);
            cache::write(entry, &r);
            if announce {
                if let Some(pf) = progress {
                    pf(&Progress::PointDone { label: pctx.label.clone(), cached: false });
                }
            }
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let stat =
                PointStat { label: pctx.label.clone(), seed: pctx.seed, wall_ms, cached: false };
            (r, false, stat)
        };

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut stats: Vec<Option<PointStat>> = (0..n).map(|_| None).collect();

        // Phase 1: this shard's stripe, on the thread pool.
        let jobs = self.cfg.jobs.clamp(1, owned.len().max(1));
        if jobs == 1 {
            for &i in &owned {
                let (r, cached, stat) = run_one(i, true);
                self.count_cache(cached);
                results[i] = Some(r);
                stats[i] = Some(stat);
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, (R, bool, PointStat))>();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    let tx = tx.clone();
                    let next = &next;
                    let owned = &owned;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= owned.len() {
                            break;
                        }
                        let i = owned[k];
                        let out = run_one(i, true);
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    });
                }
            });
            drop(tx);
            for (i, (r, cached, stat)) in rx {
                self.count_cache(cached);
                results[i] = Some(r);
                stats[i] = Some(stat);
            }
        }

        // Phase 2: peers' points, from the shared cache. Poll order is
        // submission order; no progress events for these (the owning shard
        // already announced them).
        let deadline = Instant::now() + self.cfg.shard_wait;
        for i in 0..n {
            if results[i].is_some() {
                continue;
            }
            let (pctx, entry) = &metas[i];
            let start = Instant::now();
            let (r, cached) = loop {
                if let Some(r) = cache::read::<R>(entry) {
                    break (r, true);
                }
                if Instant::now() >= deadline {
                    // Liveness fallback: the owning peer is gone; compute
                    // the point locally so the run still completes.
                    let (r, cached, _) = run_one(i, false);
                    break (r, cached);
                }
                std::thread::sleep(Duration::from_millis(15));
            };
            self.count_cache(cached);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            stats[i] =
                Some(PointStat { label: pctx.label.clone(), seed: pctx.seed, wall_ms, cached });
            results[i] = Some(r);
        }

        let stats: Vec<PointStat> = stats.into_iter().map(|s| s.expect("point filled")).collect();
        self.stats.lock().expect("stats lock").extend(stats);
        results.into_iter().map(|r| r.expect("point filled")).collect()
    }

    fn count_cache(&self, hit: bool) {
        let counter = if hit { &self.cache_hits } else { &self.cache_misses };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// `(hits, misses)` of the per-point cache across this context's `map`
    /// calls so far.
    #[must_use]
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Writes `value` as pretty JSON into `<out_dir>/<name>.json` and
    /// records the artifact.
    ///
    /// # Panics
    ///
    /// Panics if serialisation or the write fails (experiments want a loud
    /// failure).
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) {
        let path = self.cfg.out_dir.join(format!("{name}.json"));
        let data = serde_json::to_string_pretty(value).expect("serialisable result");
        fs::write(&path, data).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        self.record(name, ArtifactKind::Json, path);
    }

    /// Writes a gnuplot-ready data file into `<out_dir>/<name>.dat` (a `#`
    /// header line, then whitespace-separated columns) and records the
    /// artifact.
    ///
    /// # Panics
    ///
    /// Panics if the write fails.
    pub fn write_dat(&self, name: &str, header: &str, rows: &[Vec<f64>]) {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(rows.len() * 32 + header.len() + 3);
        out.push_str("# ");
        out.push_str(header);
        out.push('\n');
        for row in rows {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{v:.6}");
            }
            out.push('\n');
        }
        let path = self.cfg.out_dir.join(format!("{name}.dat"));
        fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        self.record(name, ArtifactKind::Dat, path);
    }

    /// The artifacts recorded so far (the conventional `Experiment::run`
    /// return value).
    #[must_use]
    pub fn artifacts(&self) -> Vec<Artifact> {
        self.artifacts.lock().expect("artifact lock").clone()
    }

    fn record(&self, name: &str, kind: ArtifactKind, path: PathBuf) {
        self.artifacts.lock().expect("artifact lock").push(Artifact {
            name: name.to_owned(),
            kind,
            path,
        });
    }

    fn take_stats(&self) -> Vec<PointStat> {
        std::mem::take(&mut self.stats.lock().expect("stats lock"))
    }
}

/// The meta twin written next to an experiment's artifacts: run shape plus
/// all schedule-dependent timings, kept out of the artifacts themselves.
#[derive(Debug, Clone, Serialize)]
pub struct RunMeta {
    /// Experiment registry name.
    pub experiment: String,
    /// Thread budget the run used.
    pub jobs: usize,
    /// Per-processor reference budget the run used.
    pub refs_per_proc: u64,
    /// Number of sweep points executed.
    pub points: usize,
    /// Points whose results were reused from the per-point cache.
    pub cache_hits: u64,
    /// Points that were actually (re)computed.
    pub cache_misses: u64,
    /// End-to-end wall time of `Experiment::run` in milliseconds.
    pub total_wall_ms: f64,
    /// Sweep points completed per wall-clock second.
    pub points_per_sec: f64,
    /// Artifact stems the run produced.
    pub artifacts: Vec<String>,
    /// Per-point labels, seeds and wall times.
    pub point_stats: Vec<PointStat>,
}

/// Outcome of [`run_experiment`]: the artifacts plus the meta twin.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Artifacts the experiment wrote.
    pub artifacts: Vec<Artifact>,
    /// The meta twin (also written to `<out_dir>/<name>.meta.json`).
    pub meta: RunMeta,
}

/// Runs `exp` under `cfg`, writes the `<name>.meta.json` twin, and returns
/// the report.
///
/// # Panics
///
/// Panics if the meta twin cannot be written.
pub fn run_experiment(exp: &dyn Experiment, cfg: &SweepConfig) -> RunReport {
    let ctx = SweepCtx::new(exp.name(), cfg.clone());
    let start = Instant::now();
    let artifacts = exp.run(&ctx);
    let total_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let point_stats = ctx.take_stats();
    let (cache_hits, cache_misses) = ctx.cache_counts();
    let meta = RunMeta {
        experiment: exp.name().to_owned(),
        jobs: cfg.jobs,
        refs_per_proc: cfg.refs_per_proc,
        points: point_stats.len(),
        cache_hits,
        cache_misses,
        total_wall_ms,
        points_per_sec: if total_wall_ms > 0.0 {
            point_stats.len() as f64 / (total_wall_ms / 1e3)
        } else {
            0.0
        },
        artifacts: artifacts.iter().map(|a| a.name.clone()).collect(),
        point_stats,
    };
    let path = cfg.out_dir.join(format!("{}.meta.json", exp.name()));
    let data = serde_json::to_string_pretty(&meta).expect("serialisable meta");
    fs::write(&path, data).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    RunReport { artifacts, meta }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Experiment for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn description(&self) -> &'static str {
            "doubles numbers"
        }
        fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
            let points: Vec<u64> = (0..10).collect();
            let doubled =
                ctx.map(&points, |p| SweepPoint::new().detail(p.to_string()), |_c, p| p * 2);
            ctx.write_json("doubler", &doubled);
            ctx.artifacts()
        }
    }

    #[test]
    fn harness_writes_artifact_and_meta_twin() {
        let dir = std::env::temp_dir().join(format!("ringsim-sweep-test-{}", std::process::id()));
        let cfg = SweepConfig::new(0).jobs(4).out_dir(&dir);
        let report = run_experiment(&Doubler, &cfg);
        assert_eq!(report.artifacts.len(), 1);
        assert_eq!(report.meta.points, 10);
        assert!(dir.join("doubler.json").is_file());
        assert!(dir.join("doubler.meta.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_run_is_all_hits_with_identical_artifacts() {
        let dir = std::env::temp_dir().join(format!("ringsim-cache-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig::new(0).jobs(2).out_dir(&dir);

        let cold = run_experiment(&Doubler, &cfg);
        assert_eq!((cold.meta.cache_hits, cold.meta.cache_misses), (0, 10));
        assert!(cold.meta.point_stats.iter().all(|s| !s.cached));
        let cold_bytes = std::fs::read(dir.join("doubler.json")).unwrap();

        // Warm, with a different jobs count: zero points re-run, identical
        // artifact bytes.
        let warm = run_experiment(&Doubler, &cfg.clone().jobs(7));
        assert_eq!((warm.meta.cache_hits, warm.meta.cache_misses), (10, 0));
        assert!(warm.meta.point_stats.iter().all(|s| s.cached));
        assert_eq!(std::fs::read(dir.join("doubler.json")).unwrap(), cold_bytes);

        // `--no-cache` recomputes (and still matches).
        let fresh = run_experiment(&Doubler, &cfg.clone().cache(false));
        assert_eq!((fresh.meta.cache_hits, fresh.meta.cache_misses), (0, 10));
        assert_eq!(std::fs::read(dir.join("doubler.json")).unwrap(), cold_bytes);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_callback_counts_points_and_cache_hits() {
        use std::sync::atomic::AtomicUsize;

        let dir =
            std::env::temp_dir().join(format!("ringsim-sweep-progress-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let total = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let cached = Arc::new(AtomicUsize::new(0));
        let observer: ProgressFn = {
            let (total, done, cached) = (total.clone(), done.clone(), cached.clone());
            Arc::new(move |ev| match ev {
                Progress::MapStarted { points } => {
                    total.fetch_add(*points, Ordering::Relaxed);
                }
                Progress::PointDone { cached: c, label } => {
                    assert!(!label.is_empty());
                    done.fetch_add(1, Ordering::Relaxed);
                    if *c {
                        cached.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };
        let cfg = SweepConfig::new(0).jobs(4).out_dir(&dir).on_progress(observer);
        run_experiment(&Doubler, &cfg);
        assert_eq!((total.load(Ordering::Relaxed), done.load(Ordering::Relaxed)), (10, 10));
        assert_eq!(cached.load(Ordering::Relaxed), 0);
        // Warm run: every point reports as a cache hit.
        run_experiment(&Doubler, &cfg);
        assert_eq!((total.load(Ordering::Relaxed), done.load(Ordering::Relaxed)), (20, 20));
        assert_eq!(cached.load(Ordering::Relaxed), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_fall_back_to_recompute() {
        let dir =
            std::env::temp_dir().join(format!("ringsim-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig::new(0).jobs(1).out_dir(&dir);
        let cold = run_experiment(&Doubler, &cfg);
        let cold_bytes = std::fs::read(dir.join("doubler.json")).unwrap();
        // Truncate every entry; the warm run must notice and recompute.
        let cache_dir = dir.join(".cache").join("doubler");
        for entry in std::fs::read_dir(&cache_dir).unwrap() {
            std::fs::write(entry.unwrap().path(), "{").unwrap();
        }
        let warm = run_experiment(&Doubler, &cfg);
        assert_eq!((warm.meta.cache_hits, warm.meta.cache_misses), (0, 10));
        assert_eq!(std::fs::read(dir.join("doubler.json")).unwrap(), cold_bytes);
        assert_eq!(cold.meta.points, warm.meta.points);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
