//! Sweep points and stable per-point seed derivation.

use serde::Serialize;

/// The identity of one sweep point: which benchmark/processor-count/
/// protocol/processor-cycle (plus a free-form `detail` discriminator for
/// experiment-specific axes) a task computes.
///
/// A point's [`seed`](SweepPoint::seed) is a pure function of the
/// experiment name and these fields, so any task draws the same random
/// stream no matter which worker thread runs it, in which order — the
/// backbone of the engine's byte-identical determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SweepPoint {
    /// Benchmark name (`mp3d`, `water`, ...), if the axis applies.
    pub bench: Option<String>,
    /// Processor count, if the axis applies.
    pub procs: Option<usize>,
    /// Protocol name (`snooping`, `directory`, `bus`, ...), if the axis
    /// applies.
    pub protocol: Option<String>,
    /// Processor cycle time in picoseconds, if the axis applies.
    pub cycle_ps: Option<u64>,
    /// Experiment-specific extra axis (`block=32`, `think=500`, ...).
    pub detail: Option<String>,
}

impl SweepPoint {
    /// An empty point (single-point experiments).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the benchmark axis.
    #[must_use]
    pub fn bench(mut self, bench: impl Into<String>) -> Self {
        self.bench = Some(bench.into());
        self
    }

    /// Sets the processor-count axis.
    #[must_use]
    pub fn procs(mut self, procs: usize) -> Self {
        self.procs = Some(procs);
        self
    }

    /// Sets the protocol axis.
    #[must_use]
    pub fn protocol(mut self, protocol: impl Into<String>) -> Self {
        self.protocol = Some(protocol.into());
        self
    }

    /// Sets the processor-cycle axis from picoseconds.
    #[must_use]
    pub fn cycle_ps(mut self, ps: u64) -> Self {
        self.cycle_ps = Some(ps);
        self
    }

    /// Sets the processor-cycle axis from nanoseconds.
    #[must_use]
    pub fn cycle_ns(mut self, ns: u64) -> Self {
        self.cycle_ps = Some(ns * 1000);
        self
    }

    /// Sets the free-form detail axis.
    #[must_use]
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Canonical text form, used both as the display label and as the seed
    /// preimage: `bench=mp3d|procs=16|protocol=snooping|cycle_ps=5000`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(b) = &self.bench {
            parts.push(format!("bench={b}"));
        }
        if let Some(p) = self.procs {
            parts.push(format!("procs={p}"));
        }
        if let Some(p) = &self.protocol {
            parts.push(format!("protocol={p}"));
        }
        if let Some(c) = self.cycle_ps {
            parts.push(format!("cycle_ps={c}"));
        }
        if let Some(d) = &self.detail {
            parts.push(format!("detail={d}"));
        }
        if parts.is_empty() {
            "point".to_owned()
        } else {
            parts.join("|")
        }
    }

    /// Stable per-point RNG seed: FNV-1a over `experiment` and the
    /// canonical label, finalised with a SplitMix64 avalanche.
    ///
    /// The derivation is part of the determinism contract: it depends only
    /// on `(experiment, bench, procs, protocol, cycle, detail)` — never on
    /// thread ids, schedule order or wall time — and is locked by a unit
    /// test so artifacts stay reproducible across releases.
    #[must_use]
    pub fn seed(&self, experiment: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in experiment.bytes().chain([0x1f]).chain(self.label().bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64 finaliser: spreads FNV's weak high bits.
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_is_canonical() {
        let p = SweepPoint::new().bench("mp3d").procs(16).protocol("snooping").cycle_ns(5);
        assert_eq!(p.label(), "bench=mp3d|procs=16|protocol=snooping|cycle_ps=5000");
        assert_eq!(SweepPoint::new().label(), "point");
    }

    /// Locks the seed derivation. These constants are part of the
    /// determinism contract: changing FNV/SplitMix64, the separator byte or
    /// the label grammar silently re-seeds every stochastic experiment and
    /// invalidates archived artifacts, so any such change must be a
    /// deliberate, versioned decision that updates this table.
    #[test]
    fn seed_derivation_is_locked() {
        let golden: [(&str, SweepPoint, u64); 4] = [
            (
                "fig3",
                SweepPoint::new().bench("mp3d").procs(16).protocol("snooping").cycle_ns(5),
                0x3ddb_5de8_d21d_2443,
            ),
            ("ring_access", SweepPoint::new().detail("think=500"), 0xe3ae_c2a0_1446_7dd0),
            ("table1", SweepPoint::new().bench("water"), 0x6390_c89e_14df_c7e5),
            ("x", SweepPoint::new(), 0x78b4_6110_0322_7e89),
        ];
        for (experiment, point, expected) in golden {
            assert_eq!(
                point.seed(experiment),
                expected,
                "seed derivation changed for {experiment}/{}",
                point.label()
            );
        }
    }

    #[test]
    fn seed_depends_on_every_axis() {
        let base = SweepPoint::new().bench("mp3d").procs(16);
        let seeds = [
            base.clone().seed("fig3"),
            base.clone().seed("fig4"),
            base.clone().procs(32).seed("fig3"),
            base.clone().bench("water").seed("fig3"),
            base.clone().protocol("snooping").seed("fig3"),
            base.clone().cycle_ns(5).seed("fig3"),
            base.detail("x").seed("fig3"),
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
