//! Incremental per-point result caching.
//!
//! [`SweepCtx::map`](crate::SweepCtx::map) consults
//! `<out_dir>/.cache/<experiment>/<key-hash>.json` before running a point's
//! work closure: on a hit the cached result is deserialised and the point
//! is not re-run, so a warm `run_experiment` re-executes zero points while
//! re-rendering byte-identical artifacts (artifact serialisation is
//! deterministic, and wall times live in the meta twin, never in
//! artifacts).
//!
//! The cache key covers everything a point's result may depend on apart
//! from the experiment's code itself: a schema version (bumped when the
//! entry format or key derivation changes), the experiment name, the
//! ordinal of the `map` call inside the experiment (two calls may reuse
//! labels but run different work), the per-processor reference budget, the
//! point's canonical label, and its derived seed. Anything else —
//! `--jobs`, worker schedule, wall time — is excluded by construction, so
//! hits are valid across thread counts. Invalidation is by key: change any
//! input and the key hashes elsewhere; the stale entry is simply never
//! read again. Unreadable or unparsable entries count as misses and are
//! rewritten.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Entry-format / key-derivation version; bump to orphan all old entries.
const SCHEMA: u64 = 1;

/// Where the entry for one `(experiment, map call, point)` lives.
/// `cache_root` is the directory the `.cache/` tree hangs under — the out
/// dir by default, or a shared run directory when several shard workers
/// merge through one cache (see [`SweepConfig::cache_dir`](crate::SweepConfig::cache_dir)).
pub(crate) fn entry_path(
    cache_root: &Path,
    experiment: &str,
    map_call: u64,
    refs_per_proc: u64,
    label: &str,
    seed: u64,
) -> PathBuf {
    let key = format!(
        "v{SCHEMA}|{experiment}|map={map_call}|refs={refs_per_proc}|seed={seed:016x}|{label}"
    );
    cache_root.join(".cache").join(experiment).join(format!("{:016x}.json", fnv1a(key.as_bytes())))
}

/// FNV-1a over the key string (same family as `SweepPoint::seed`, but the
/// two derivations are independent: seeds are locked, cache keys carry a
/// bumpable schema version).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads a cached result; any IO or parse failure is a miss.
pub(crate) fn read<R: Deserialize>(path: &Path) -> Option<R> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Writes a result entry; failures are non-fatal (the next run recomputes).
///
/// The write is **atomic** (temp file + rename): shard workers in other
/// processes poll entries while they land, and a reader must only ever see
/// a complete entry or none at all. Two writers racing on the same entry
/// write identical bytes (results are pure functions of the key), so the
/// last rename winning is harmless.
pub(crate) fn write<R: Serialize>(path: &Path, value: &R) {
    let Some(dir) = path.parent() else { return };
    let _ = std::fs::create_dir_all(dir);
    let Ok(data) = serde_json::to_string_pretty(value) else { return };
    let tmp = dir.join(format!(".tmp-{}-{:?}", std::process::id(), std::thread::current().id()));
    if std::fs::write(&tmp, data).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_separates_every_axis() {
        let d = Path::new("results");
        let base = entry_path(d, "fig3", 0, 100, "procs=8", 42);
        assert_ne!(base, entry_path(d, "fig4", 0, 100, "procs=8", 42));
        assert_ne!(base, entry_path(d, "fig3", 1, 100, "procs=8", 42));
        assert_ne!(base, entry_path(d, "fig3", 0, 200, "procs=8", 42));
        assert_ne!(base, entry_path(d, "fig3", 0, 100, "procs=16", 42));
        assert_ne!(base, entry_path(d, "fig3", 0, 100, "procs=8", 43));
        assert_eq!(base, entry_path(d, "fig3", 0, 100, "procs=8", 42));
        assert!(base.starts_with("results/.cache/fig3"));
    }

    #[test]
    fn round_trips_and_tolerates_garbage() {
        let dir = std::env::temp_dir().join(format!("ringsim-cache-test-{}", std::process::id()));
        let path = entry_path(&dir, "t", 0, 1, "p", 7);
        assert_eq!(read::<Vec<u64>>(&path), None);
        write(&path, &vec![1u64, 2, 3]);
        assert_eq!(read::<Vec<u64>>(&path), Some(vec![1, 2, 3]));
        // Shape mismatch parses but fails typed rebuild → miss.
        assert_eq!(read::<Vec<String>>(&path), None);
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(read::<Vec<u64>>(&path), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
