//! Deterministic shard planning for multi-process sweep execution.
//!
//! A sweep's points are **embarrassingly parallel**, so a run can be split
//! across worker *processes* the same way [`SweepCtx::map`](crate::SweepCtx::map)
//! already splits it across threads. A [`Shard`] names one worker's slice
//! of the plan: with `count` shards, shard `index` owns every point whose
//! submission index `i` satisfies `i % count == index` (round-robin
//! striping, so expensive points that cluster at one end of a sweep — the
//! 64-processor configs usually come last — spread evenly over shards).
//!
//! Ownership is a pure function of `(submission index, shard count)`:
//! never of timing, hostnames or pids, which is what makes the sharded
//! path reproducible. The **merge substrate is the per-point result
//! cache**: every worker writes its owned points into the *shared*
//! `.cache/` (see [`SweepConfig::cache_dir`](crate::SweepConfig::cache_dir)),
//! and the coordinator afterwards re-runs the experiment against that warm
//! cache — zero points recomputed — to render artifacts that are
//! byte-identical to a single-pool run. This is the `--jobs`-invariance
//! discipline lifted one level: artifacts may not depend on the shard
//! count, just as they may not depend on the thread count.
//!
//! Workers still need the *values* of points they do not own (experiment
//! code consumes the full result vector between `map` calls), so after
//! computing its stripe a worker polls the shared cache for its peers'
//! entries. Peers advance through the same map calls at roughly the same
//! pace, so the wait is bounded by shard skew — and because the slowest
//! shard bounds the whole run anyway, waiting adds nothing to the critical
//! path. If a peer dies, the wait deadline
//! ([`SweepConfig::shard_wait`](crate::SweepConfig::shard_wait)) expires
//! and the worker computes the missing point itself: liveness never
//! depends on every shard surviving.

use std::fmt;
use std::str::FromStr;

/// One worker's slice of a sharded sweep: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This worker's shard number, in `0..count`.
    pub index: usize,
    /// Total number of shards the sweep is split into.
    pub count: usize,
}

impl Shard {
    /// Builds a shard spec, validating `index < count` and `count >= 1`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an empty or out-of-range spec.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shard(s)"));
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns the point at submission index `i` of a
    /// `map` call (round-robin striping).
    #[must_use]
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    /// Parses the CLI spelling `index/count` (e.g. `0/4`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some((i, n)) = s.split_once('/') else {
            return Err(format!("malformed shard `{s}` (expected `index/count`, e.g. `0/4`)"));
        };
        let index =
            i.parse::<usize>().map_err(|_| format!("malformed shard index `{i}` in `{s}`"))?;
        let count =
            n.parse::<usize>().map_err(|_| format!("malformed shard count `{n}` in `{s}`"))?;
        Self::new(index, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_is_owned_by_exactly_one_shard() {
        for count in 1..=8 {
            for i in 0..1000 {
                let owners: Vec<usize> =
                    (0..count).filter(|&s| Shard::new(s, count).unwrap().owns(i)).collect();
                assert_eq!(owners.len(), 1, "point {i} with {count} shards: {owners:?}");
            }
        }
    }

    #[test]
    fn striping_is_balanced() {
        let count = 4;
        for s in 0..count {
            let shard = Shard::new(s, count).unwrap();
            let owned = (0..100).filter(|&i| shard.owns(i)).count();
            assert_eq!(owned, 25);
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let s: Shard = "2/4".parse().unwrap();
        assert_eq!((s.index, s.count), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert_eq!("0/1".parse::<Shard>().unwrap(), Shard::new(0, 1).unwrap());
        for bad in ["", "3", "4/4", "1/0", "a/4", "1/b", "-1/4"] {
            assert!(bad.parse::<Shard>().is_err(), "accepted `{bad}`");
        }
    }
}
