//! Benchmarks of the experiment kernels behind each table and figure of the
//! paper (scaled down): what it costs to regenerate them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ringsim_analytic::{match_bus_clock, ModelInput, RingModel};
use ringsim_proto::table1::{FullMapAccountant, LinkedListAccountant};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_trace::{characterize, Benchmark, Workload};
use ringsim_types::Time;

fn input16() -> ModelInput {
    let ch = characterize(&Benchmark::Mp3d.spec(16).unwrap().with_refs(4_000)).unwrap();
    ModelInput::from_characteristics(&ch)
}

fn bench_table1_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("traversal_accounting_16p", |b| {
        b.iter(|| {
            let mut w = Workload::new(Benchmark::Mp3d.spec(16).unwrap().with_refs(2_000)).unwrap();
            let layout = RingConfig::standard_500mhz(16).layout().unwrap();
            let space = w.space();
            let mut full =
                FullMapAccountant::new(layout.clone(), move |blk| space.home_of_block(blk))
                    .unwrap();
            let space2 = w.space();
            let mut ll =
                LinkedListAccountant::new(layout, move |blk| space2.home_of_block(blk)).unwrap();
            for r in w.round_robin(2_000) {
                full.process(r);
                ll.process(r);
            }
            black_box((full.report(), ll.report()))
        });
    });
    g.finish();
}

fn bench_table2_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.bench_function("characterize_mp3d16", |b| {
        b.iter(|| {
            black_box(characterize(&Benchmark::Mp3d.spec(16).unwrap().with_refs(4_000)).unwrap())
        });
    });
    g.finish();
}

fn bench_table3_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.bench_function("snoop_rates_all_cells", |b| {
        b.iter(|| {
            let mut total = Time::ZERO;
            for block in [16u64, 32, 64, 128] {
                for link in [2u64, 4, 8] {
                    let cfg = RingConfig {
                        block_bytes: block,
                        link_bytes: link,
                        ..RingConfig::standard_500mhz(16)
                    };
                    total += cfg.snoop_interarrival();
                }
            }
            black_box(total)
        });
    });
    g.finish();
}

fn bench_table4_kernel(c: &mut Criterion) {
    let input = input16();
    let mut g = c.benchmark_group("table4");
    g.bench_function("match_bus_clock", |b| {
        b.iter(|| {
            black_box(match_bus_clock(
                &input,
                RingConfig::standard_500mhz(16),
                ProtocolKind::Snooping,
                Time::from_ns(10),
            ))
        });
    });
    g.finish();
}

fn bench_fig3_kernel(c: &mut Criterion) {
    let input = input16();
    let mut g = c.benchmark_group("fig3");
    g.bench_function("model_sweep_1_to_20ns", |b| {
        let model = RingModel::new(RingConfig::standard_500mhz(16), ProtocolKind::Snooping);
        b.iter(|| black_box(model.sweep(&input, 1, 20)));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1_kernel, bench_table2_kernel, bench_table3_kernel, bench_table4_kernel, bench_fig3_kernel
}
criterion_main!(benches);
