//! Criterion macro-benchmarks: one full simulator run per backend, the
//! same scenarios the committed `BENCH_*.json` baselines track (the `perf`
//! binary regenerates those; this bench is for interactive `cargo bench`
//! comparisons while optimizing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ringsim_bench::perf;

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

fn full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_sim");
    for scenario in perf::scenarios() {
        group.bench_function(scenario.name(), |b| {
            b.iter(|| black_box(scenario.run_once().0.sim_end));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = full_runs
}
criterion_main!(benches);
