//! Whole-simulation benchmarks: how fast the timed ring and bus system
//! simulators execute a fixed reference budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ringsim_core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim_proto::ProtocolKind;
use ringsim_trace::{Workload, WorkloadSpec};

const REFS: u64 = 2_000;

fn bench_ring_sims(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_system");
    for (label, protocol) in
        [("snooping", ProtocolKind::Snooping), ("directory", ProtocolKind::Directory)]
    {
        g.bench_function(format!("{label}_8p_{REFS}refs"), |b| {
            b.iter(|| {
                let cfg = SystemConfig::ring_500mhz(protocol, 8);
                let w = Workload::new(WorkloadSpec::demo(8).with_refs(REFS)).unwrap();
                black_box(RingSystem::new(cfg, w).unwrap().run())
            });
        });
    }
    g.finish();
}

fn bench_bus_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus_system");
    g.bench_function(format!("snooping_8p_{REFS}refs"), |b| {
        b.iter(|| {
            let cfg = BusSystemConfig::bus_100mhz(8);
            let w = Workload::new(WorkloadSpec::demo(8).with_refs(REFS)).unwrap();
            black_box(BusSystem::new(cfg, w).unwrap().run())
        });
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ring_sims, bench_bus_sim
}
criterion_main!(benches);
