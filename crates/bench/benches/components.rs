//! Micro-benchmarks of the simulator building blocks: cache operations,
//! ring stepping, reference generation and the untimed interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ringsim_cache::{Cache, CacheConfig, LineState};
use ringsim_ring::{RingConfig, SlotRing};
use ringsim_trace::{RefInterpreter, Workload, WorkloadSpec};
use ringsim_types::rng::Xoshiro256;
use ringsim_types::{AccessKind, BlockAddr, NodeId};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("classify_fill_mix", |b| {
        let mut cache = Cache::new(CacheConfig::paper_default()).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| {
            let block = BlockAddr::new(rng.next_below(16_384));
            let kind = if rng.chance(0.3) { AccessKind::Write } else { AccessKind::Read };
            match cache.classify(block, kind) {
                ringsim_cache::AccessClass::Miss => {
                    cache.fill(block, if kind.is_write() { LineState::We } else { LineState::Rs });
                }
                ringsim_cache::AccessClass::Upgrade => {
                    cache.promote(block);
                }
                ringsim_cache::AccessClass::Hit => {}
            }
            black_box(cache.valid_lines() > 0)
        });
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("slot_ring");
    for nodes in [8usize, 64] {
        g.bench_function(format!("advance_{nodes}_nodes"), |b| {
            let mut ring: SlotRing<u64> =
                SlotRing::new(RingConfig::standard_500mhz(nodes)).unwrap();
            // Put some traffic on it.
            let mut tag = 0u64;
            b.iter(|| {
                for n in 0..nodes {
                    let node = NodeId::new(n);
                    if let Some(slot) = ring.arrival(node) {
                        if ring.peek(slot).is_some() {
                            if tag.is_multiple_of(3) {
                                black_box(ring.remove(slot, node));
                            }
                        } else {
                            tag += 1;
                            let _ = ring.try_insert(slot, node, tag);
                        }
                    }
                }
                ring.advance();
            });
        });
    }
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.bench_function("next_ref", |b| {
        let mut w = Workload::new(WorkloadSpec::demo(8)).unwrap();
        let stream = &mut w.streams_mut()[0];
        b.iter(|| black_box(stream.next_ref()));
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.bench_function("process_ref", |b| {
        let mut w = Workload::new(WorkloadSpec::demo(8)).unwrap();
        let mut interp = RefInterpreter::new(8, w.space()).unwrap();
        let mut refs = w.round_robin(u64::MAX / 16);
        b.iter(|| interp.process(refs.next().expect("infinite-ish stream")));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache, bench_ring, bench_generator, bench_interpreter
}
criterion_main!(benches);
