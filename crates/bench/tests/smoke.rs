//! Smoke tests: every registered experiment completes on a tiny budget and
//! leaves its artifacts plus a `.meta.json` twin behind. Guards the harness
//! against bit-rot.

use std::path::PathBuf;

use ringsim_bench::experiments;
use ringsim_sweep::{run_experiment, SweepConfig};

const TINY: u64 = 2_000;

fn smoke(name: &str) {
    let exp = experiments::find(name).expect("registered experiment");
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("smoke-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SweepConfig::new(TINY).jobs(2).out_dir(&dir);
    let report = run_experiment(exp, &cfg);
    assert!(!report.artifacts.is_empty(), "{name} wrote no artifacts");
    for a in &report.artifacts {
        assert!(a.path.is_file(), "{name}: missing artifact {}", a.path.display());
    }
    assert!(dir.join(format!("{name}.meta.json")).is_file(), "{name}: missing meta twin");
    assert!(report.meta.points > 0, "{name} ran no sweep points");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_covers_seventeen_experiments() {
    assert_eq!(experiments::ALL.len(), 17);
}

#[test]
fn table1_runs() {
    smoke("table1");
}

#[test]
fn table2_runs() {
    smoke("table2");
}

#[test]
fn table3_runs() {
    smoke("table3");
}

#[test]
fn table4_runs() {
    smoke("table4");
}

#[test]
fn fig3_runs() {
    let exp = experiments::find("fig3").unwrap();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("smoke-fig3-dats");
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_experiment(exp, &SweepConfig::new(TINY).jobs(2).out_dir(&dir));
    assert!(dir.join("fig3.json").is_file());
    assert!(dir.join("fig3_mp3d_8p_snooping.dat").is_file());
    // One JSON plus one .dat per (bench, procs, protocol) curve.
    assert_eq!(report.artifacts.len(), 1 + 18);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig4_runs() {
    smoke("fig4");
}

#[test]
fn fig5_runs() {
    smoke("fig5");
}

#[test]
fn fig6_runs() {
    smoke("fig6");
}

#[test]
fn validate_runs() {
    smoke("validate");
}

#[test]
fn ablation_runs() {
    smoke("ablation");
}

#[test]
fn future_work_runs() {
    smoke("future_work");
}

#[test]
fn block_sweep_runs() {
    smoke("block_sweep");
}

#[test]
fn hierarchy_runs() {
    smoke("hierarchy");
}

#[test]
fn wide_ring_runs() {
    smoke("wide_ring");
}

#[test]
fn ring_access_runs() {
    smoke("ring_access");
}

#[test]
fn sci_vs_fullmap_runs() {
    smoke("sci_vs_fullmap");
}

#[test]
fn topology_sweep_runs() {
    smoke("topology_sweep");
}
