//! Smoke tests: every experiment runner completes on a tiny budget and
//! leaves its JSON artefact behind. Guards the harness against bit-rot.

use ringsim_bench::experiments as ex;
use ringsim_bench::results_dir;

const TINY: u64 = 2_000;

fn json_exists(name: &str) -> bool {
    results_dir().join(format!("{name}.json")).exists()
}

#[test]
fn table1_runs() {
    ex::table1::run(TINY);
    assert!(json_exists("table1"));
}

#[test]
fn table2_runs() {
    ex::table2::run(TINY);
    assert!(json_exists("table2"));
}

#[test]
fn table3_runs() {
    ex::table3::run();
    assert!(json_exists("table3"));
}

#[test]
fn table4_runs() {
    ex::table4::run(TINY);
    assert!(json_exists("table4"));
}

#[test]
fn fig3_runs() {
    ex::fig3::run(TINY);
    assert!(json_exists("fig3"));
    assert!(results_dir().join("fig3_mp3d_8p_snooping.dat").exists());
}

#[test]
fn fig5_runs() {
    ex::fig5::run(TINY);
    assert!(json_exists("fig5"));
}

#[test]
fn fig6_runs() {
    ex::fig6::run(TINY);
    assert!(json_exists("fig6"));
}

#[test]
fn validate_runs() {
    ex::validate::run(TINY);
    assert!(json_exists("validate"));
}

#[test]
fn ablation_runs() {
    ex::ablation::run(TINY);
    assert!(json_exists("ablation"));
}

#[test]
fn future_work_runs() {
    ex::future_work::run(TINY);
    assert!(json_exists("future_work"));
}

#[test]
fn block_sweep_runs() {
    ex::block_sweep::run(TINY);
    assert!(json_exists("block_sweep"));
}

#[test]
fn hierarchy_runs() {
    ex::hierarchy::run(TINY);
    assert!(json_exists("hierarchy"));
}

#[test]
fn wide_ring_runs() {
    ex::wide_ring::run(TINY);
    assert!(json_exists("wide_ring"));
}
