//! Byte-identity gate for engine optimizations: every registered backend's
//! report must serialise to exactly the bytes the committed goldens were
//! blessed from (captured on the pre-optimization engine). A hot-path
//! change that shifts any simulation result — event order, a latency sum,
//! a utilisation denominator — flips a digest and fails here.
//!
//! To bless new goldens after an *intentional* semantic change:
//!
//! ```text
//! RINGSIM_BLESS=1 cargo test -p ringsim-bench --test simkind_goldens
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use ringsim_bench::perf::{report_digest, Scenario};
use ringsim_core::SimKind;

const GOLDEN: &str = "tests/goldens/simkind_digests.json";

/// Small fixed budgets: big enough to exercise retries, conflicts and both
/// slot classes, small enough for debug-mode test runs.
fn golden_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for kind in SimKind::ALL {
        out.push(Scenario { kind, procs: 16, refs_per_proc: 2_000, topo: None });
        out.push(Scenario { kind, procs: 64, refs_per_proc: 400, topo: None });
    }
    out
}

fn current_digests() -> BTreeMap<String, String> {
    golden_scenarios()
        .iter()
        .map(|s| {
            let (report, _) = s.run_once();
            (format!("{}-r{}", s.name(), s.refs_per_proc), report_digest(&report))
        })
        .collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN)
}

#[test]
fn reports_match_blessed_digests() {
    let current = current_digests();
    let path = golden_path();
    if std::env::var_os("RINGSIM_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("serialise");
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, json + "\n").expect("write goldens");
        eprintln!("blessed {} digests into {}", current.len(), path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing goldens {GOLDEN} ({e}); bless with RINGSIM_BLESS=1"));
    let blessed: BTreeMap<String, String> = serde_json::from_str(&raw).expect("parse goldens");
    assert_eq!(
        blessed.len(),
        current.len(),
        "golden scenario set changed; bless with RINGSIM_BLESS=1"
    );
    for (name, digest) in &current {
        let want = blessed
            .get(name)
            .unwrap_or_else(|| panic!("no blessed digest for {name}; bless with RINGSIM_BLESS=1"));
        assert_eq!(
            digest, want,
            "{name}: report bytes diverged from the blessed pre-optimization capture \
             (an engine change altered simulation results; if intentional, re-bless \
             with RINGSIM_BLESS=1)"
        );
    }
}

#[test]
fn runs_are_deterministic_within_a_process() {
    // The digest gate above compares against a capture from another build;
    // this guards the weaker (but load-bearing) half: re-running the same
    // scenario in-process yields the same bytes.
    for kind in SimKind::ALL {
        let s = Scenario { kind, procs: 16, refs_per_proc: 500, topo: None };
        let (a, _) = s.run_once();
        let (b, _) = s.run_once();
        assert_eq!(report_digest(&a), report_digest(&b), "{}", s.name());
    }
}
