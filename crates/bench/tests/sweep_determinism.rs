//! Locks the sweep engine's determinism contract: every artifact an
//! experiment writes must be byte-identical no matter how many worker
//! threads computed its points. Wall-time metrics are quarantined in the
//! `<name>.meta.json` twins, which are the only files allowed to differ.

use std::fs;
use std::path::{Path, PathBuf};

use ringsim_bench::experiments;
use ringsim_sweep::{run_experiment, SweepConfig};

const REFS: u64 = 2_000;

fn run_into(name: &str, jobs: usize, dir: &Path) -> Vec<PathBuf> {
    let exp = experiments::find(name).expect("known experiment");
    let report = run_experiment(exp, &SweepConfig::new(REFS).jobs(jobs).out_dir(dir));
    report.artifacts.into_iter().map(|a| a.path).collect()
}

/// One analytic experiment (table3), one simulation experiment whose points
/// share a characterisation (block_sweep), the one experiment that draws
/// per-point RNG streams from `PointCtx::seed` (ring_access) — the three
/// ways a schedule-dependent bug could leak into artifacts — plus the SCI
/// comparison, which runs two different timed backends per point, and the
/// topology sweep, which runs the hierarchical engine at every tree depth
/// (including the deflecting-bridge mode, whose deflection counts must
/// also be schedule-independent).
#[test]
fn artifacts_are_byte_identical_across_jobs() {
    for name in ["table3", "block_sweep", "ring_access", "sci_vs_fullmap", "topology_sweep"] {
        let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("det-{name}"));
        let serial = run_into(name, 1, &base.join("jobs1"));
        let parallel = run_into(name, 8, &base.join("jobs8"));
        assert!(!serial.is_empty(), "{name} wrote no artifacts");
        assert_eq!(serial.len(), parallel.len(), "{name} artifact count differs");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.file_name(), b.file_name(), "{name} artifact order differs");
            let left = fs::read(a).unwrap();
            let right = fs::read(b).unwrap();
            assert_eq!(
                left,
                right,
                "{name} artifact {:?} differs between --jobs 1 and --jobs 8",
                a.file_name()
            );
        }
    }
}

/// Repeating the same run must also reproduce the same bytes (the RNG
/// streams are functions of the point identity, not of process state).
#[test]
fn artifacts_are_byte_identical_across_runs() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("det-rerun");
    let first = run_into("ring_access", 4, &base.join("a"));
    let second = run_into("ring_access", 4, &base.join("b"));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(fs::read(a).unwrap(), fs::read(b).unwrap());
    }
}
