//! Pinned byte-identity for the topology refactor: the two-level `hier`
//! backend must keep producing exactly the report bytes captured *before*
//! `RingHierarchy` was generalised into the recursive `RingTopology` tree
//! and `HierNetSim` was rebuilt around `Bridge` junctions.
//!
//! Unlike `simkind_goldens` (which can be re-blessed), these digests are
//! hard-coded from the pre-refactor engine on purpose: if this test fails,
//! the refactor changed classic two-level simulation semantics — fix the
//! engine, do not update the constants.

use ringsim_bench::perf::{report_digest, Scenario};
use ringsim_core::SimKind;

/// `report_digest` of `hier-16p` at 2000 refs/proc, captured at commit
/// `21c1868` (the last pre-refactor engine).
const HIER_16P_R2000: &str = "2f94d03b846d893b";
/// `report_digest` of `hier-64p` at 400 refs/proc, same capture.
const HIER_64P_R400: &str = "7201885e8b8675df";

#[test]
fn two_level_hier_matches_pre_refactor_digest_16p() {
    let s = Scenario { kind: SimKind::Hier, procs: 16, refs_per_proc: 2_000, topo: None };
    let (report, _) = s.run_once();
    assert_eq!(
        report_digest(&report),
        HIER_16P_R2000,
        "the refactored topology engine no longer reproduces the pre-refactor \
         two-level hier run bit-for-bit"
    );
}

#[test]
fn two_level_hier_matches_pre_refactor_digest_64p() {
    let s = Scenario { kind: SimKind::Hier, procs: 64, refs_per_proc: 400, topo: None };
    let (report, _) = s.run_once();
    assert_eq!(
        report_digest(&report),
        HIER_64P_R400,
        "the refactored topology engine no longer reproduces the pre-refactor \
         two-level hier run bit-for-bit"
    );
}
