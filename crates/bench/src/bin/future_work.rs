//! Regenerates the `future_work` experiment (see
//! `ringsim_bench::experiments::future_work`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("future_work")
}
