//! Regenerates the `table2` experiment (see
//! `ringsim_bench::experiments::table2`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("table2")
}
