//! Regenerates the `validate` experiment (see
//! `ringsim_bench::experiments::validate`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("validate")
}
