//! Regenerates the `fig5` experiment (see
//! `ringsim_bench::experiments::fig5`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("fig5")
}
