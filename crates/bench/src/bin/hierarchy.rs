//! Regenerates the `hierarchy` experiment (see
//! `ringsim_bench::experiments::hierarchy`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("hierarchy")
}
