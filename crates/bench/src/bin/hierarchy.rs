//! Runs the hierarchical-ring extension experiment.
fn main() {
    let refs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ringsim_bench::EXPERIMENT_REFS);
    ringsim_bench::experiments::hierarchy::run(refs);
}
