//! Regenerates the `table3` experiment (see
//! `ringsim_bench::experiments::table3`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("table3")
}
