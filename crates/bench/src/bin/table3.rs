//! Regenerates the paper's Table 3 (pure geometry).
fn main() {
    ringsim_bench::experiments::table3::run();
}
