//! Regenerates the `table1` experiment (see
//! `ringsim_bench::experiments::table1`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("table1")
}
