//! Regenerates the paper's fig4 output. See `ringsim_bench::experiments`.
fn main() {
    let refs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ringsim_bench::EXPERIMENT_REFS);
    ringsim_bench::experiments::fig4::run(refs);
}
