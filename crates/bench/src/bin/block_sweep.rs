//! Regenerates the `block_sweep` experiment (see
//! `ringsim_bench::experiments::block_sweep`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("block_sweep")
}
