//! Load-tests a running `ringsim serve` instance and gates on the result.
//!
//! ```text
//! loadtest --addr 127.0.0.1:8080 [--clients N] [--requests N]
//!          [--storm N] [--experiments a,b] [--refs N]
//!          [--p99-ms BOUND] [--report out.json]
//! ```
//!
//! Exit status: 0 when every gate holds (zero 5xx, zero dropped
//! connections, every operation's p99 under the bound), 1 otherwise. The
//! JSON report is written regardless so CI can upload it as an artifact.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use ringsim_bench::loadtest::{run_loadtest, LoadConfig};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{key}`").into());
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    let mut cfg = LoadConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    }
    if let Some(c) = flags.get("clients") {
        cfg.clients = c.parse::<usize>()?.max(1);
    }
    if let Some(r) = flags.get("requests") {
        cfg.requests_per_client = r.parse()?;
    }
    if let Some(s) = flags.get("storm") {
        cfg.storm_submits = s.parse()?;
    }
    if let Some(e) = flags.get("experiments") {
        cfg.experiments = e.split(',').map(str::to_owned).collect();
        if cfg.experiments.is_empty() {
            return Err("--experiments needs at least one name".into());
        }
    }
    if let Some(r) = flags.get("refs") {
        cfg.refs = r.parse()?;
    }
    let p99_bound = Duration::from_millis(flags.get("p99-ms").map_or(Ok(5000), |v| v.parse())?);

    eprintln!(
        "loadtest: {} clients x ({} storm + {} mixed) against {}",
        cfg.clients, cfg.storm_submits, cfg.requests_per_client, cfg.addr
    );
    let report = run_loadtest(&cfg);
    let json = serde_json::to_string_pretty(&report)?;
    if let Some(path) = flags.get("report") {
        std::fs::write(path, &json)?;
        eprintln!("loadtest: report written to {path}");
    }
    println!("{json}");
    match report.gate(p99_bound) {
        Ok(()) => {
            eprintln!(
                "loadtest: PASS — {} ops over {} run(s), {} ms wall",
                report.total_ops, report.runs_seen, report.wall_ms
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            eprintln!("loadtest: FAIL — {why}");
            Ok(ExitCode::FAILURE)
        }
    }
}
