//! Regenerates (or checks) the committed `BENCH_*.json` perf baselines.
//!
//! ```text
//! cargo run --release -p ringsim-bench --bin perf                 # measure + write
//! cargo run --release -p ringsim-bench --bin perf -- --check      # CI gate
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use ringsim_bench::perf;

const HELP: &str = "\
perf — macro-benchmark harness for the committed BENCH_*.json baselines

Times a full simulator run for every registered backend (ring500, ring250,
bus50, bus100, bus50-mesi, bus50-dragon, sci500, sci250, hier, hier3,
hier-deflect) at 16 and 64 processors on the deterministic demo workload —
plus the flat and two-level topology overrides of hier at 64 processors —
and writes the grouped baselines BENCH_ring.json / BENCH_bus.json /
BENCH_proto.json / BENCH_sci.json / BENCH_hier.json / BENCH_topo.json.

USAGE:
  perf [OPTIONS]

OPTIONS:
  --out DIR          directory for the BENCH_*.json files (default: .)
  --baseline DIR     fold the medians found in DIR's BENCH_*.json files in
                     as `baseline_median_ns_per_run` (records the speedup
                     of the current build against that older capture)
  --check            do not write: validate the BENCH_*.json in --out
                     (schema, group shape, config fingerprints), re-measure
                     in quick mode, and fail on any regression beyond
                     --max-regress
  --quick            fewer samples per scenario (3 instead of 5)
  --only SUBSTR      measure only scenarios whose name contains SUBSTR
                     (repeatable; only groups whose scenarios are all
                     measured get their baseline file written)
  --interleave CMD   immediately before timing each scenario, run
                     `CMD <scenario-name>` — a pre-optimization build of
                     this harness that prints its median ns/run — and
                     record that as the scenario's baseline. Interleaving
                     the two builds keeps each comparison inside the same
                     machine-load window (overrides --baseline per entry)
  --max-regress PCT  allowed slowdown vs the committed medians in --check
                     mode, in percent (default: 25)
  --list             print the scenario matrix and exit
  --help             this text
";

struct Options {
    out: PathBuf,
    baseline: Option<PathBuf>,
    check: bool,
    quick: bool,
    max_regress: f64,
    list: bool,
    only: Vec<String>,
    interleave: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: PathBuf::from("."),
        baseline: None,
        check: false,
        quick: false,
        max_regress: 0.25,
        list: false,
        only: Vec::new(),
        interleave: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--baseline" => {
                opts.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a directory")?));
            }
            "--check" => opts.check = true,
            "--quick" => opts.quick = true,
            "--max-regress" => {
                let v = it.next().ok_or("--max-regress needs a percentage")?;
                let pct: f64 =
                    v.parse().map_err(|e| format!("--max-regress {v}: not a number ({e})"))?;
                if !(pct >= 0.0 && pct.is_finite()) {
                    return Err(format!("--max-regress {v}: must be a non-negative percentage"));
                }
                opts.max_regress = pct / 100.0;
            }
            "--list" => opts.list = true,
            "--only" => {
                opts.only.push(it.next().ok_or("--only needs a name substring")?.clone());
            }
            "--interleave" => {
                opts.interleave = Some(it.next().ok_or("--interleave needs a command")?.clone());
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

/// Runs `cmd <scenario>` (a pre-optimization build of this harness) and
/// parses the median ns/run it prints.
fn interleaved_baseline(cmd: &str, scenario: &str) -> Result<u64, String> {
    let output = std::process::Command::new(cmd)
        .arg(scenario)
        .output()
        .map_err(|e| format!("--interleave: running `{cmd} {scenario}`: {e}"))?;
    if !output.status.success() {
        return Err(format!("--interleave: `{cmd} {scenario}` failed ({})", output.status));
    }
    let text = String::from_utf8_lossy(&output.stdout);
    text.trim()
        .parse()
        .map_err(|e| format!("--interleave: `{cmd} {scenario}` printed `{}`: {e}", text.trim()))
}

fn measure_all(
    quick: bool,
    only: &[String],
    interleave: Option<&str>,
    baselines: &mut HashMap<String, u64>,
) -> Result<Vec<perf::Measurement>, String> {
    let samples = if quick { 3 } else { 5 };
    let mut out = Vec::new();
    for s in perf::scenarios()
        .iter()
        .filter(|s| only.is_empty() || only.iter().any(|f| s.name().contains(f.as_str())))
    {
        if let Some(cmd) = interleave {
            let b = interleaved_baseline(cmd, &s.name())?;
            eprintln!("baseline  {:>12} ...  {:>12} ns/run", s.name(), b);
            baselines.insert(s.name(), b);
        }
        eprint!("measuring {:>12} ...", s.name());
        let m = perf::measure(s, samples);
        eprintln!(" {:>12} ns/run", m.median_ns);
        out.push(m);
    }
    Ok(out)
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.list {
        for s in perf::scenarios() {
            println!(
                "{:>12}  refs/proc={} fingerprint={}",
                s.name(),
                s.refs_per_proc,
                s.fingerprint()
            );
        }
        return Ok(());
    }
    if opts.check {
        let mut committed = Vec::new();
        for group in perf::GROUPS {
            let path = opts.out.join(perf::file_name(group));
            committed.push(perf::load_file(&path)?);
            eprintln!("schema ok: {}", path.display());
        }
        let fresh = measure_all(true, &opts.only, None, &mut HashMap::new())?;
        for file in &committed {
            perf::regression_check(file, &fresh, opts.max_regress)?;
        }
        eprintln!("no regressions beyond {:.0}%", opts.max_regress * 100.0);
        return Ok(());
    }
    let mut baselines: HashMap<String, u64> = match &opts.baseline {
        Some(dir) => perf::read_medians(dir)?,
        None => HashMap::new(),
    };
    let measurements =
        measure_all(opts.quick, &opts.only, opts.interleave.as_deref(), &mut baselines)?;
    // Write only groups the (possibly --only-filtered) measurements cover
    // completely; a half-measured group would fail schema validation.
    let (complete, partial): (Vec<_>, Vec<_>) = perf::assemble(&measurements, &baselines)
        .into_iter()
        .partition(|f| perf::validate(f).is_ok());
    for f in &partial {
        for e in &f.entries {
            eprintln!(
                "{:>12}  {:>12} ns/run (group `{}` incomplete, not written)",
                e.name, e.median_ns_per_run, f.group
            );
        }
    }
    if complete.is_empty() {
        return Ok(());
    }
    perf::write_files(&opts.out, &complete)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse(&args).and_then(|opts| run(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
