//! Regenerates the `ablation` experiment (see
//! `ringsim_bench::experiments::ablation`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("ablation")
}
