//! Runs the slotted vs register-insertion access-control experiment.
fn main() {
    let txns = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    ringsim_bench::experiments::ring_access::run(txns);
}
