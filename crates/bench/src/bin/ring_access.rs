//! Regenerates the `ring_access` experiment (see
//! `ringsim_bench::experiments::ring_access`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("ring_access")
}
