//! Runs the 64-bit-ring experiment (the paper's unshown figure).
fn main() {
    let refs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ringsim_bench::EXPERIMENT_REFS);
    ringsim_bench::experiments::wide_ring::run(refs);
}
