//! Regenerates the `wide_ring` experiment (see
//! `ringsim_bench::experiments::wide_ring`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("wide_ring")
}
