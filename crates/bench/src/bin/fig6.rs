//! Regenerates the `fig6` experiment (see
//! `ringsim_bench::experiments::fig6`). Accepts `--jobs N`, `--refs N`
//! and `--out DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_single("fig6")
}
