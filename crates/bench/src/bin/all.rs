//! Runs every experiment in sequence, writing all tables and figures into
//! `results/`.
fn main() {
    let refs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ringsim_bench::EXPERIMENT_REFS);
    use ringsim_bench::experiments as ex;
    ex::table1::run(refs);
    println!();
    ex::table2::run(refs);
    println!();
    ex::table3::run();
    println!();
    ex::table4::run(refs);
    println!();
    ex::fig3::run(refs);
    println!();
    ex::fig4::run(refs);
    println!();
    ex::fig5::run(refs);
    println!();
    ex::fig6::run(refs);
    println!();
    ex::validate::run(refs.min(40_000));
    println!();
    ex::ablation::run(refs.min(40_000));
    println!();
    ex::future_work::run(refs);
    println!();
    ex::block_sweep::run(refs);
    println!();
    ex::hierarchy::run(refs);
    println!();
    ex::wide_ring::run(refs);
    println!();
    ex::ring_access::run(300);
}
