//! Runs every registered experiment in sequence, writing all tables and
//! figures into `results/` (plus `.meta.json` wall-time twins).
//!
//! ```text
//! all [--list] [--only a,b] [--jobs N] [--refs N] [--out DIR]
//! ```
use std::process::ExitCode;

fn main() -> ExitCode {
    ringsim_bench::cli::run_all()
}
