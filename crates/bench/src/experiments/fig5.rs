//! Figure 5: breakdown of directory-protocol remote misses into 1-cycle
//! clean, 1-cycle dirty and 2-cycle classes, for all twelve benchmark
//! configurations.

use serde::{Deserialize, Serialize};

use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;

use crate::benchmark_input;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    one_cycle_clean_pct: f64,
    one_cycle_dirty_pct: f64,
    two_cycle_pct: f64,
}

/// Regenerates Figure 5.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "directory-protocol remote-miss class breakdown (Figure 5)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let configs: Vec<(Benchmark, usize)> = Benchmark::paper_configs().collect();
        let rows = ctx.map(
            &configs,
            |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs),
            |pctx, &(bench, procs)| {
                let (ch, _) =
                    benchmark_input(bench, procs, pctx.refs_per_proc).expect("paper config");
                let e = ch.events;
                let c1 = e.fig5_one_cycle_clean() as f64;
                let d1 = e.fig5_one_cycle_dirty() as f64;
                let c2 = e.fig5_two_cycle() as f64;
                let total = (c1 + d1 + c2).max(1.0);
                Row {
                    bench: bench.name().to_owned(),
                    procs,
                    one_cycle_clean_pct: 100.0 * c1 / total,
                    one_cycle_dirty_pct: 100.0 * d1 / total,
                    two_cycle_pct: 100.0 * c2 / total,
                }
            },
        );
        println!("Figure 5: directory-protocol remote-miss class breakdown (%)");
        println!("{:-<72}", "");
        println!(
            "{:<12} {:>4} | {:>14} {:>14} {:>10} | bar",
            "bench", "P", "1-cycle clean", "1-cycle dirty", "2-cycle"
        );
        for row in &rows {
            let bar_len = 40usize;
            let n1 = (row.one_cycle_clean_pct / 100.0 * bar_len as f64).round() as usize;
            let n2 = (row.one_cycle_dirty_pct / 100.0 * bar_len as f64).round() as usize;
            let n3 = bar_len.saturating_sub(n1 + n2);
            println!(
                "{:<12} {:>4} | {:>13.1}% {:>13.1}% {:>9.1}% | {}{}{}",
                row.bench,
                row.procs,
                row.one_cycle_clean_pct,
                row.one_cycle_dirty_pct,
                row.two_cycle_pct,
                "#".repeat(n1),
                "+".repeat(n2),
                ".".repeat(n3),
            );
        }
        println!("(# = 1-cycle clean, + = 1-cycle dirty, . = 2-cycle)");
        ctx.write_json("fig5", &rows);
        ctx.artifacts()
    }
}
