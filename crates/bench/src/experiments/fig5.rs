//! Figure 5: breakdown of directory-protocol remote misses into 1-cycle
//! clean, 1-cycle dirty and 2-cycle classes, for all twelve benchmark
//! configurations.

use serde::Serialize;

use ringsim_trace::Benchmark;

use crate::{benchmark_input, write_json};

#[derive(Debug, Serialize)]
struct Row {
    bench: String,
    procs: usize,
    one_cycle_clean_pct: f64,
    one_cycle_dirty_pct: f64,
    two_cycle_pct: f64,
}

/// Regenerates Figure 5.
pub fn run(refs_per_proc: u64) {
    println!("Figure 5: directory-protocol remote-miss class breakdown (%)");
    println!("{:-<72}", "");
    println!(
        "{:<12} {:>4} | {:>14} {:>14} {:>10} | bar",
        "bench", "P", "1-cycle clean", "1-cycle dirty", "2-cycle"
    );
    let mut rows = Vec::new();
    for (bench, procs) in Benchmark::paper_configs() {
        let (ch, _) = benchmark_input(bench, procs, refs_per_proc).expect("paper config");
        let e = ch.events;
        let c1 = e.fig5_one_cycle_clean() as f64;
        let d1 = e.fig5_one_cycle_dirty() as f64;
        let c2 = e.fig5_two_cycle() as f64;
        let total = (c1 + d1 + c2).max(1.0);
        let row = Row {
            bench: bench.name().to_owned(),
            procs,
            one_cycle_clean_pct: 100.0 * c1 / total,
            one_cycle_dirty_pct: 100.0 * d1 / total,
            two_cycle_pct: 100.0 * c2 / total,
        };
        let bar_len = 40usize;
        let n1 = (row.one_cycle_clean_pct / 100.0 * bar_len as f64).round() as usize;
        let n2 = (row.one_cycle_dirty_pct / 100.0 * bar_len as f64).round() as usize;
        let n3 = bar_len.saturating_sub(n1 + n2);
        println!(
            "{:<12} {:>4} | {:>13.1}% {:>13.1}% {:>9.1}% | {}{}{}",
            row.bench,
            procs,
            row.one_cycle_clean_pct,
            row.one_cycle_dirty_pct,
            row.two_cycle_pct,
            "#".repeat(n1),
            "+".repeat(n2),
            ".".repeat(n3),
        );
        rows.push(row);
    }
    println!("(# = 1-cycle clean, + = 1-cycle dirty, . = 2-cycle)");
    write_json("fig5", &rows);
}
