//! Table 1: distribution of ring traversals per shared miss / invalidation,
//! full-map versus linked-list directory, for the 16-processor SPLASH
//! benchmarks.

use serde::{Deserialize, Serialize};

use ringsim_proto::table1::{FullMapAccountant, LinkedListAccountant, TraversalReport};
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::{Benchmark, Workload};

/// Paper-reported percentages `(one, two, three_plus)`.
type Pcts = (f64, f64, f64);

/// Paper values for MP3D/WATER/CHOLESKY at 16 processors.
fn paper_values(bench: Benchmark) -> [(Pcts, Pcts); 2] {
    // [(full miss, full inval), (llist miss, llist inval)]
    match bench {
        Benchmark::Mp3d => {
            [((70.5, 29.5, 0.0), (12.6, 87.4, 0.0)), ((67.0, 32.0, 1.0), (7.1, 87.7, 5.2))]
        }
        Benchmark::Water => {
            [((72.4, 27.6, 0.0), (12.6, 87.4, 0.0)), ((53.5, 45.9, 0.6), (7.2, 88.6, 4.2))]
        }
        Benchmark::Cholesky => {
            [((84.5, 15.5, 0.0), (17.1, 82.9, 0.0)), ((66.5, 31.5, 1.8), (5.2, 75.5, 19.3))]
        }
        _ => unreachable!("table 1 covers the SPLASH benchmarks"),
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    full: TraversalReport,
    linked_list: TraversalReport,
}

/// Runs one benchmark through both accountants.
fn run_bench(bench: Benchmark, refs_per_proc: u64) -> Row {
    let procs = 16;
    let spec = bench.spec(procs).expect("16-proc spec").with_refs(refs_per_proc);
    let mut workload = Workload::new(spec).expect("valid spec");
    let layout = RingConfig::standard_500mhz(procs).layout().expect("valid ring");
    let space = workload.space();
    let mut full = FullMapAccountant::new(layout.clone(), move |b| space.home_of_block(b))
        .expect("accountant");
    let mut llist =
        LinkedListAccountant::new(layout, move |b| space.home_of_block(b)).expect("accountant");
    let per_node = workload.spec().warmup_refs_per_proc + workload.spec().data_refs_per_proc;
    for r in workload.round_robin(per_node) {
        full.process(r);
        llist.process(r);
    }
    Row { bench: bench.name().to_owned(), full: full.report(), linked_list: llist.report() }
}

/// Regenerates Table 1.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "ring traversals per transaction, full-map vs linked-list directory (Table 1)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let benches = [Benchmark::Mp3d, Benchmark::Water, Benchmark::Cholesky];
        let rows = ctx.map(
            &benches,
            |b| SweepPoint::new().bench(b.name()).procs(16),
            |pctx, b| run_bench(*b, pctx.refs_per_proc),
        );
        println!("Table 1: ring traversals per transaction, full map vs linked list (16 procs)");
        println!("{:-<100}", "");
        println!(
            "{:<10} {:>6} | {:>22} | {:>22} || paper full | paper l.list",
            "bench", "kind", "full map (1/2/3+ %)", "linked list (1/2/3+ %)"
        );
        for (row, bench) in rows.iter().zip(benches) {
            let paper = paper_values(bench);
            for (kind, ours_full, ours_ll, p_full, p_ll) in [
                (
                    "miss",
                    row.full.miss.percentages(),
                    row.linked_list.miss.percentages(),
                    paper[0].0,
                    paper[1].0,
                ),
                (
                    "inval",
                    row.full.invalidate.percentages(),
                    row.linked_list.invalidate.percentages(),
                    paper[0].1,
                    paper[1].1,
                ),
            ] {
                println!(
                    "{:<10} {:>6} | {:>5.1} {:>5.1} {:>5.1}      | {:>5.1} {:>5.1} {:>5.1}      || {:>4.1}/{:>4.1}/{:>3.1} | {:>4.1}/{:>4.1}/{:>4.1}",
                    row.bench,
                    kind,
                    ours_full.0,
                    ours_full.1,
                    ours_full.2,
                    ours_ll.0,
                    ours_ll.1,
                    ours_ll.2,
                    p_full.0,
                    p_full.1,
                    p_full.2,
                    p_ll.0,
                    p_ll.1,
                    p_ll.2,
                );
            }
        }
        ctx.write_json("table1", &rows);
        ctx.artifacts()
    }
}
