//! Table 3: snooping rate — minimum probe inter-arrival time per
//! dual-directory bank for 500 MHz links, across ring widths and block
//! sizes. Pure geometry; reproduced exactly.

use serde::{Deserialize, Serialize};

use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};

/// Paper values in nanoseconds, indexed `[block][width]` for blocks
/// 16/32/64/128 bytes and widths 16/32/64 bits.
const PAPER: [[u64; 3]; 4] = [[40, 20, 10], [56, 28, 14], [88, 44, 22], [152, 76, 38]];

#[derive(Debug, Serialize, Deserialize)]
struct Cell {
    block_bytes: u64,
    link_bits: u64,
    measured_ns: f64,
    paper_ns: u64,
}

/// Regenerates Table 3.
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn description(&self) -> &'static str {
        "snooping rate per directory bank across ring widths and block sizes (Table 3)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let mut points = Vec::new();
        for (bi, block) in [16u64, 32, 64, 128].into_iter().enumerate() {
            for (wi, link_bytes) in [2u64, 4, 8].into_iter().enumerate() {
                points.push((block, link_bytes, PAPER[bi][wi]));
            }
        }
        let cells = ctx.map(
            &points,
            |&(block, link_bytes, _)| {
                SweepPoint::new().detail(format!("block={block}|link_bytes={link_bytes}"))
            },
            |_pctx, &(block, link_bytes, paper)| {
                let cfg = RingConfig {
                    block_bytes: block,
                    link_bytes,
                    ..RingConfig::standard_500mhz(16)
                };
                Cell {
                    block_bytes: block,
                    link_bits: link_bytes * 8,
                    measured_ns: cfg.snoop_interarrival().as_ns_f64(),
                    paper_ns: paper,
                }
            },
        );
        println!(
            "Table 3: snooping rate (ns) — probe inter-arrival per directory bank, 500 MHz links"
        );
        println!("{:-<60}", "");
        println!("{:<12} | {:>10} {:>10} {:>10}", "block size", "16-bit", "32-bit", "64-bit");
        let mut exact = true;
        for chunk in cells.chunks(3) {
            let mut row = format!("{:<12} |", format!("{} bytes", chunk[0].block_bytes));
            for cell in chunk {
                exact &= (cell.measured_ns - cell.paper_ns as f64).abs() < 1e-9;
                row.push_str(&format!(" {:>10.0}", cell.measured_ns));
            }
            println!("{row}");
        }
        println!(
            "{}",
            if exact {
                "all 12 entries match the paper exactly"
            } else {
                "MISMATCH with paper values!"
            }
        );
        ctx.write_json("table3", &cells);
        ctx.artifacts()
    }
}
