//! Figure 3: snooping vs directory on 500 MHz 32-bit rings — processor
//! utilisation, ring utilisation and miss latency as the processor cycle
//! sweeps 1–20 ns, for MP3D/WATER/CHOLESKY at 8/16/32 processors.

use serde::{Deserialize, Serialize};

use ringsim_analytic::RingModel;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;

use crate::benchmark_input;

/// One full curve for one (benchmark, procs, protocol) combination.
#[derive(Debug, Serialize, Deserialize)]
pub struct Curve {
    /// Benchmark name.
    pub bench: String,
    /// Processor count.
    pub procs: usize,
    /// Protocol name.
    pub protocol: String,
    /// Points `(proc_cycle_ns, proc_util, ring_util, miss_latency_ns)`.
    pub points: Vec<(u64, f64, f64, f64)>,
}

/// Sweeps one benchmark/size under both protocols.
pub fn curves_for(
    bench: Benchmark,
    procs: usize,
    ring: RingConfig,
    refs_per_proc: u64,
) -> Vec<Curve> {
    let (_, input) = benchmark_input(bench, procs, refs_per_proc).expect("paper config");
    [ProtocolKind::Snooping, ProtocolKind::Directory]
        .into_iter()
        .map(|protocol| {
            let model = RingModel::new(ring, protocol);
            let points = (1..=20)
                .map(|ns| {
                    let (t, o) = model.sweep_point(&input, ns);
                    (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns)
                })
                .collect();
            Curve {
                bench: bench.name().to_owned(),
                procs,
                protocol: protocol.name().to_owned(),
                points,
            }
        })
        .collect()
}

/// Writes each curve as a gnuplot-ready `.dat` series.
pub fn write_curve_dats(ctx: &SweepCtx, prefix: &str, curves: &[Curve]) {
    for c in curves {
        let rows: Vec<Vec<f64>> = c
            .points
            .iter()
            .map(|&(ns, u, r, l)| vec![ns as f64, 100.0 * u, 100.0 * r, l])
            .collect();
        ctx.write_dat(
            &format!("{prefix}_{}_{}p_{}", c.bench, c.procs, c.protocol),
            "proc_cycle_ns proc_util_pct ring_util_pct miss_latency_ns",
            &rows,
        );
    }
}

/// Prints a compact view of a set of curves at selected processor cycles.
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("{title}");
    println!("{:-<98}", "");
    println!(
        "{:<12} {:>4} {:<10} | {:>22} | {:>22} | {:>26}",
        "bench",
        "P",
        "protocol",
        "proc util % @2/5/10/20ns",
        "ring util % @2/5/10/20",
        "miss latency ns @2/5/10/20"
    );
    for c in curves {
        let pick = |ns: u64| c.points.iter().find(|p| p.0 == ns).expect("sweep point");
        let u: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).1).collect();
        let r: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).2).collect();
        let l: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| pick(n).3).collect();
        println!(
            "{:<12} {:>4} {:<10} | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>5.0} {:>5.0} {:>5.0} {:>5.0}",
            c.bench, c.procs, c.protocol,
            u[0], u[1], u[2], u[3],
            r[0], r[1], r[2], r[3],
            l[0], l[1], l[2], l[3],
        );
    }
}

/// Runs the Figure 3 sweep (one parallel point per benchmark/size pair).
pub fn sweep_configs(ctx: &SweepCtx, configs: &[(Benchmark, usize)]) -> Vec<Curve> {
    ctx.map(
        configs,
        |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs),
        |pctx, &(bench, procs)| {
            curves_for(bench, procs, RingConfig::standard_500mhz(procs), pctx.refs_per_proc)
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Regenerates Figure 3.
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn description(&self) -> &'static str {
        "snooping vs directory on 500 MHz rings, SPLASH at 8/16/32 procs (Figure 3)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let mut configs = Vec::new();
        for bench in [Benchmark::Mp3d, Benchmark::Water, Benchmark::Cholesky] {
            for &procs in bench.paper_sizes() {
                configs.push((bench, procs));
            }
        }
        let all = sweep_configs(ctx, &configs);
        print_curves(
            "Figure 3: snooping vs directory, 500 MHz 32-bit rings (SPLASH, 8/16/32 procs)",
            &all,
        );
        write_curve_dats(ctx, "fig3", &all);
        ctx.write_json("fig3", &all);
        ctx.artifacts()
    }
}
