//! Figure 3: snooping vs directory on 500 MHz 32-bit rings — processor
//! utilisation, ring utilisation and miss latency as the processor cycle
//! sweeps 1–20 ns, for MP3D/WATER/CHOLESKY at 8/16/32 processors.

use serde::Serialize;

use ringsim_analytic::{ModelOutput, RingModel};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_trace::Benchmark;

use crate::{benchmark_input, write_dat, write_json};

/// One full curve for one (benchmark, procs, protocol) combination.
#[derive(Debug, Serialize)]
pub struct Curve {
    /// Benchmark name.
    pub bench: String,
    /// Processor count.
    pub procs: usize,
    /// Protocol name.
    pub protocol: String,
    /// Points `(proc_cycle_ns, proc_util, ring_util, miss_latency_ns)`.
    pub points: Vec<(u64, f64, f64, f64)>,
}

/// Sweeps one benchmark/size under both protocols.
pub fn curves_for(
    bench: Benchmark,
    procs: usize,
    ring: RingConfig,
    refs_per_proc: u64,
) -> Vec<Curve> {
    let (_, input) = benchmark_input(bench, procs, refs_per_proc).expect("paper config");
    [ProtocolKind::Snooping, ProtocolKind::Directory]
        .into_iter()
        .map(|protocol| {
            let model = RingModel::new(ring, protocol);
            let points = model
                .sweep(&input, 1, 20)
                .into_iter()
                .map(|(t, o): (_, ModelOutput)| {
                    (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns)
                })
                .collect();
            Curve {
                bench: bench.name().to_owned(),
                procs,
                protocol: protocol.name().to_owned(),
                points,
            }
        })
        .collect()
}

/// Writes each curve as a gnuplot-ready `.dat` series.
pub fn write_curve_dats(prefix: &str, curves: &[Curve]) {
    for c in curves {
        let rows: Vec<Vec<f64>> = c
            .points
            .iter()
            .map(|&(ns, u, r, l)| vec![ns as f64, 100.0 * u, 100.0 * r, l])
            .collect();
        write_dat(
            &format!("{prefix}_{}_{}p_{}", c.bench, c.procs, c.protocol),
            "proc_cycle_ns proc_util_pct ring_util_pct miss_latency_ns",
            &rows,
        );
    }
}

/// Prints a compact view of a set of curves at selected processor cycles.
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("{title}");
    println!("{:-<98}", "");
    println!(
        "{:<12} {:>4} {:<10} | {:>22} | {:>22} | {:>26}",
        "bench", "P", "protocol", "proc util % @2/5/10/20ns", "ring util % @2/5/10/20", "miss latency ns @2/5/10/20"
    );
    for c in curves {
        let pick = |ns: u64| c.points.iter().find(|p| p.0 == ns).expect("sweep point");
        let u: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).1).collect();
        let r: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).2).collect();
        let l: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| pick(n).3).collect();
        println!(
            "{:<12} {:>4} {:<10} | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>5.0} {:>5.0} {:>5.0} {:>5.0}",
            c.bench, c.procs, c.protocol,
            u[0], u[1], u[2], u[3],
            r[0], r[1], r[2], r[3],
            l[0], l[1], l[2], l[3],
        );
    }
}

/// Regenerates Figure 3.
pub fn run(refs_per_proc: u64) {
    let mut all = Vec::new();
    for bench in [Benchmark::Mp3d, Benchmark::Water, Benchmark::Cholesky] {
        for &procs in bench.paper_sizes() {
            all.extend(curves_for(
                bench,
                procs,
                RingConfig::standard_500mhz(procs),
                refs_per_proc,
            ));
        }
    }
    print_curves(
        "Figure 3: snooping vs directory, 500 MHz 32-bit rings (SPLASH, 8/16/32 procs)",
        &all,
    );
    write_curve_dats("fig3", &all);
    write_json("fig3", &all);
}
