//! Figure 4: snooping vs directory on 500 MHz 32-bit rings for the
//! 64-processor benchmarks (FFT, WEATHER, SIMPLE).

use ringsim_sweep::{Artifact, Experiment, SweepCtx};
use ringsim_trace::Benchmark;

use crate::experiments::fig3::{print_curves, sweep_configs, write_curve_dats};

/// Regenerates Figure 4.
pub struct Fig4;

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "snooping vs directory on 500 MHz rings, FFT/WEATHER/SIMPLE at 64 procs (Figure 4)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let configs = [(Benchmark::Fft, 64), (Benchmark::Weather, 64), (Benchmark::Simple, 64)];
        let all = sweep_configs(ctx, &configs);
        print_curves(
            "Figure 4: snooping vs directory, 500 MHz 32-bit rings (FFT/WEATHER/SIMPLE, 64 procs)",
            &all,
        );
        write_curve_dats(ctx, "fig4", &all);
        ctx.write_json("fig4", &all);
        ctx.artifacts()
    }
}
