//! Figure 4: snooping vs directory on 500 MHz 32-bit rings for the
//! 64-processor benchmarks (FFT, WEATHER, SIMPLE).

use ringsim_ring::RingConfig;
use ringsim_trace::Benchmark;

use crate::experiments::fig3::{curves_for, print_curves, write_curve_dats};
use crate::write_json;

/// Regenerates Figure 4.
pub fn run(refs_per_proc: u64) {
    let mut all = Vec::new();
    for bench in [Benchmark::Fft, Benchmark::Weather, Benchmark::Simple] {
        all.extend(curves_for(bench, 64, RingConfig::standard_500mhz(64), refs_per_proc));
    }
    print_curves(
        "Figure 4: snooping vs directory, 500 MHz 32-bit rings (FFT/WEATHER/SIMPLE, 64 procs)",
        &all,
    );
    write_curve_dats("fig4", &all);
    write_json("fig4", &all);
}
