//! Figure 6: 32-bit slotted rings (250/500 MHz, snooping) versus 64-bit
//! split-transaction buses (50/100 MHz) — processor utilisation, network
//! utilisation and miss latency over the 1–20 ns processor-cycle sweep, for
//! MP3D and WATER at 8/16/32 processors.

use serde::{Deserialize, Serialize};

use ringsim_analytic::{BusModel, RingModel};
use ringsim_bus::BusConfig;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;

use crate::benchmark_input;

/// One interconnect curve.
#[derive(Debug, Serialize, Deserialize)]
pub struct Curve {
    /// Benchmark name.
    pub bench: String,
    /// Processor count.
    pub procs: usize,
    /// Interconnect label ("ring-500", "bus-100", ...).
    pub network: String,
    /// Points `(proc_cycle_ns, proc_util, net_util, miss_latency_ns)`.
    pub points: Vec<(u64, f64, f64, f64)>,
}

/// Regenerates Figure 6.
pub struct Fig6;

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "32-bit slotted rings vs 64-bit split-transaction buses (Figure 6)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let mut configs = Vec::new();
        for bench in [Benchmark::Mp3d, Benchmark::Water] {
            for &procs in bench.paper_sizes() {
                configs.push((bench, procs));
            }
        }
        let per_config = ctx.map(
            &configs,
            |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs),
            |pctx, &(bench, procs)| {
                let (_, input) =
                    benchmark_input(bench, procs, pctx.refs_per_proc).expect("paper config");
                let mut curves: Vec<Curve> = Vec::new();
                for (label, ring) in [
                    ("ring-500", RingConfig::standard_500mhz(procs)),
                    ("ring-250", RingConfig::standard_250mhz(procs)),
                ] {
                    let model = RingModel::new(ring, ProtocolKind::Snooping);
                    let points = (1..=20)
                        .map(|ns| {
                            let (t, o) = model.sweep_point(&input, ns);
                            (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns)
                        })
                        .collect();
                    curves.push(Curve {
                        bench: bench.name().to_owned(),
                        procs,
                        network: label.to_owned(),
                        points,
                    });
                }
                for (label, bus) in [
                    ("bus-100", BusConfig::bus_100mhz(procs)),
                    ("bus-50", BusConfig::bus_50mhz(procs)),
                ] {
                    let model = BusModel::new(bus);
                    let points = (1..=20)
                        .map(|ns| {
                            let (t, o) = model.sweep_point(&input, ns);
                            (t.as_ps() / 1000, o.proc_util, o.net_util, o.miss_latency_ns)
                        })
                        .collect();
                    curves.push(Curve {
                        bench: bench.name().to_owned(),
                        procs,
                        network: label.to_owned(),
                        points,
                    });
                }
                curves
            },
        );
        println!("Figure 6: 32-bit slotted ring (snooping) vs 64-bit split-transaction bus");
        println!("{:-<100}", "");
        println!(
            "{:<12} {:>4} {:<9} | {:>22} | {:>22} | {:>26}",
            "bench",
            "P",
            "network",
            "proc util % @2/5/10/20",
            "net util % @2/5/10/20",
            "miss latency ns @2/5/10/20"
        );
        let all: Vec<Curve> = per_config.into_iter().flatten().collect();
        for c in &all {
            let pick = |ns: u64| c.points.iter().find(|p| p.0 == ns).expect("sweep point");
            let u: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).1).collect();
            let r: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| 100.0 * pick(n).2).collect();
            let l: Vec<f64> = [2, 5, 10, 20].iter().map(|&n| pick(n).3).collect();
            println!(
                "{:<12} {:>4} {:<9} | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>4.0} {:>4.0} {:>4.0} {:>4.0}      | {:>5.0} {:>5.0} {:>5.0} {:>5.0}",
                c.bench, c.procs, c.network,
                u[0], u[1], u[2], u[3],
                r[0], r[1], r[2], r[3],
                l[0], l[1], l[2], l[3],
            );
        }
        ctx.write_json("fig6", &all);
        ctx.artifacts()
    }
}
