//! One [`Experiment`] per paper table/figure, plus validation and
//! ablations, all registered in [`ALL`].
//!
//! Every experiment prints a human-readable table and writes JSON (and for
//! the figure sweeps, gnuplot `.dat`) artifacts through its
//! [`ringsim_sweep::SweepCtx`]; the `all` binary drives the registry.

use ringsim_sweep::Experiment;

pub mod ablation;
pub mod block_sweep;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod future_work;
pub mod hierarchy;
pub mod ring_access;
pub mod sci_vs_fullmap;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod topology_sweep;
pub mod validate;
pub mod wide_ring;

/// Every experiment, in the order the `all` driver runs them.
pub static ALL: [&dyn Experiment; 17] = [
    &table1::Table1,
    &table2::Table2,
    &table3::Table3,
    &table4::Table4,
    &fig3::Fig3,
    &fig4::Fig4,
    &fig5::Fig5,
    &fig6::Fig6,
    &validate::Validate,
    &ablation::Ablation,
    &future_work::FutureWork,
    &block_sweep::BlockSweep,
    &hierarchy::Hierarchy,
    &wide_ring::WideRing,
    &ring_access::RingAccess,
    &sci_vs_fullmap::SciVsFullmap,
    &topology_sweep::TopologySweep,
];

/// Looks an experiment up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    ALL.into_iter().find(|e| e.name() == name)
}

/// The full registry, for front ends beyond the `all` binary — the CLI
/// `--list` output and the HTTP service's `GET /experiments` endpoint both
/// render name/description pairs from this slice.
#[must_use]
pub fn registry() -> &'static [&'static dyn Experiment] {
    &ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
        for e in ALL {
            assert!(find(e.name()).is_some());
            assert!(!e.description().is_empty());
        }
    }
}
