//! One runner per paper table/figure, plus validation and ablations.
//!
//! Every runner prints a human-readable table and writes a JSON twin into
//! `results/`. The `all` binary chains them.

pub mod ablation;
pub mod block_sweep;
pub mod fig3;
pub mod future_work;
pub mod hierarchy;
pub mod ring_access;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod validate;
pub mod wide_ring;
