//! Paper §6's forward-looking claims, evaluated with the extended models:
//!
//! * "the slotted ring could benefit from latency tolerance techniques ...
//!   because the large latencies observed for the slotted ring are, in most
//!   cases, not caused by heavy contention but by pure delays";
//! * "most latency tolerance techniques ... can be self-defeating in an
//!   interconnect working close to saturation. This would probably happen
//!   in a split transaction bus using very fast processors";
//! * "the ring would be able to accommodate the increase in the load
//!   without significantly altering the expected latencies".

use serde::{Deserialize, Serialize};

use ringsim_analytic::{BusModel, RingModel};
use ringsim_bus::BusConfig;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::benchmark_input;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    network: String,
    mips: u64,
    base_util: f64,
    tolerant_util: f64,
    gain_points: f64,
    base_read_latency: f64,
    tolerant_read_latency: f64,
    base_net_util: f64,
    tolerant_net_util: f64,
}

/// Evaluates write-latency tolerance (write buffers / weak ordering) on the
/// ring and on the bus, per paper §6.
pub struct FutureWork;

impl Experiment for FutureWork {
    fn name(&self) -> &'static str {
        "future_work"
    }

    fn description(&self) -> &'static str {
        "write-latency tolerance on ring vs bus, per paper section 6"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let procs = 16;
        // The characterisation is shared by all points; run it once on the
        // harness thread (it is a pure function of the spec, so this does
        // not affect determinism).
        let (_, input) =
            benchmark_input(Benchmark::Mp3d, procs, ctx.refs_per_proc()).expect("paper config");
        let mut points = Vec::new();
        for mips in [100u64, 200, 400] {
            points.push(("ring-500", mips));
            points.push(("bus-50", mips));
        }
        let rows = ctx.map(
            &points,
            |&(network, mips)| {
                SweepPoint::new()
                    .bench("mp3d")
                    .procs(procs)
                    .protocol(network)
                    .detail(format!("mips={mips}"))
            },
            |_pctx, &(network, mips)| {
                let t = Time::from_ps(1_000_000 / mips);
                let (b, w) = if network == "ring-500" {
                    let base =
                        RingModel::new(RingConfig::standard_500mhz(procs), ProtocolKind::Snooping);
                    let tol = base.with_write_tolerance(true);
                    (base.evaluate(&input, t), tol.evaluate(&input, t))
                } else {
                    // Bus at 50 MHz (the saturation-prone baseline).
                    let base = BusModel::new(BusConfig::bus_50mhz(procs));
                    let tol = base.with_write_tolerance(true);
                    (base.evaluate(&input, t), tol.evaluate(&input, t))
                };
                Row {
                    network: network.to_owned(),
                    mips,
                    base_util: b.proc_util,
                    tolerant_util: w.proc_util,
                    gain_points: w.proc_util - b.proc_util,
                    base_read_latency: b.miss_latency_ns,
                    tolerant_read_latency: w.miss_latency_ns,
                    base_net_util: b.net_util,
                    tolerant_net_util: w.net_util,
                }
            },
        );
        println!("Paper §6: write-latency tolerance on mp3d.16 — ring vs bus");
        println!("{:-<100}", "");
        println!(
            "{:<9} {:>5} | {:>8} {:>8} {:>7} | {:>9} {:>9} | {:>8} {:>8}",
            "network",
            "MIPS",
            "baseU%",
            "tolU%",
            "gain",
            "baseLat",
            "tolLat",
            "baseNet%",
            "tolNet%"
        );
        for r in &rows {
            println!(
                "{:<9} {:>5} | {:>8.1} {:>8.1} {:>+6.1}pp | {:>9.0} {:>9.0} | {:>8.1} {:>8.1}",
                r.network,
                r.mips,
                100.0 * r.base_util,
                100.0 * r.tolerant_util,
                100.0 * r.gain_points,
                r.base_read_latency,
                r.tolerant_read_latency,
                100.0 * r.base_net_util,
                100.0 * r.tolerant_net_util,
            );
        }
        // Summarise the paper's prediction.
        let ring_lat_growth: f64 = rows
            .iter()
            .filter(|r| r.network == "ring-500")
            .map(|r| r.tolerant_read_latency / r.base_read_latency - 1.0)
            .fold(0.0, f64::max);
        let bus_lat_growth: f64 = rows
            .iter()
            .filter(|r| r.network == "bus-50")
            .map(|r| r.tolerant_read_latency / r.base_read_latency - 1.0)
            .fold(0.0, f64::max);
        println!();
        println!(
            "tolerating write latency inflates remaining miss latency by ≤{:.0}% on the ring but {:.0}% on the saturated bus",
            100.0 * ring_lat_growth,
            100.0 * bus_lat_growth
        );
        ctx.write_json("future_work", &rows);
        ctx.artifacts()
    }
}
