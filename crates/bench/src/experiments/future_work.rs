//! Paper §6's forward-looking claims, evaluated with the extended models:
//!
//! * "the slotted ring could benefit from latency tolerance techniques ...
//!   because the large latencies observed for the slotted ring are, in most
//!   cases, not caused by heavy contention but by pure delays";
//! * "most latency tolerance techniques ... can be self-defeating in an
//!   interconnect working close to saturation. This would probably happen
//!   in a split transaction bus using very fast processors";
//! * "the ring would be able to accommodate the increase in the load
//!   without significantly altering the expected latencies".

use serde::Serialize;

use ringsim_analytic::{BusModel, RingModel};
use ringsim_bus::BusConfig;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::{benchmark_input, write_json};

#[derive(Debug, Serialize)]
struct Row {
    network: &'static str,
    mips: u64,
    base_util: f64,
    tolerant_util: f64,
    gain_points: f64,
    base_read_latency: f64,
    tolerant_read_latency: f64,
    base_net_util: f64,
    tolerant_net_util: f64,
}

/// Evaluates write-latency tolerance (write buffers / weak ordering) on the
/// ring and on the bus, per paper §6.
pub fn run(refs_per_proc: u64) {
    let procs = 16;
    let (_, input) = benchmark_input(Benchmark::Mp3d, procs, refs_per_proc).expect("paper config");
    println!("Paper §6: write-latency tolerance on mp3d.16 — ring vs bus");
    println!("{:-<100}", "");
    println!(
        "{:<9} {:>5} | {:>8} {:>8} {:>7} | {:>9} {:>9} | {:>8} {:>8}",
        "network", "MIPS", "baseU%", "tolU%", "gain", "baseLat", "tolLat", "baseNet%", "tolNet%"
    );
    let mut rows = Vec::new();
    for mips in [100u64, 200, 400] {
        let t = Time::from_ps(1_000_000 / mips);
        // Ring, snooping.
        let base = RingModel::new(RingConfig::standard_500mhz(procs), ProtocolKind::Snooping);
        let tol = base.with_write_tolerance(true);
        let (b, w) = (base.evaluate(&input, t), tol.evaluate(&input, t));
        rows.push(Row {
            network: "ring-500",
            mips,
            base_util: b.proc_util,
            tolerant_util: w.proc_util,
            gain_points: w.proc_util - b.proc_util,
            base_read_latency: b.miss_latency_ns,
            tolerant_read_latency: w.miss_latency_ns,
            base_net_util: b.net_util,
            tolerant_net_util: w.net_util,
        });
        // Bus at 50 MHz (the saturation-prone baseline).
        let base = BusModel::new(BusConfig::bus_50mhz(procs));
        let tol = base.with_write_tolerance(true);
        let (b, w) = (base.evaluate(&input, t), tol.evaluate(&input, t));
        rows.push(Row {
            network: "bus-50",
            mips,
            base_util: b.proc_util,
            tolerant_util: w.proc_util,
            gain_points: w.proc_util - b.proc_util,
            base_read_latency: b.miss_latency_ns,
            tolerant_read_latency: w.miss_latency_ns,
            base_net_util: b.net_util,
            tolerant_net_util: w.net_util,
        });
    }
    for r in &rows {
        println!(
            "{:<9} {:>5} | {:>8.1} {:>8.1} {:>+6.1}pp | {:>9.0} {:>9.0} | {:>8.1} {:>8.1}",
            r.network,
            r.mips,
            100.0 * r.base_util,
            100.0 * r.tolerant_util,
            100.0 * r.gain_points,
            r.base_read_latency,
            r.tolerant_read_latency,
            100.0 * r.base_net_util,
            100.0 * r.tolerant_net_util,
        );
    }
    // Summarise the paper's prediction.
    let ring_lat_growth: f64 = rows
        .iter()
        .filter(|r| r.network == "ring-500")
        .map(|r| r.tolerant_read_latency / r.base_read_latency - 1.0)
        .fold(0.0, f64::max);
    let bus_lat_growth: f64 = rows
        .iter()
        .filter(|r| r.network == "bus-50")
        .map(|r| r.tolerant_read_latency / r.base_read_latency - 1.0)
        .fold(0.0, f64::max);
    println!();
    println!(
        "tolerating write latency inflates remaining miss latency by ≤{:.0}% on the ring but {:.0}% on the saturated bus",
        100.0 * ring_lat_growth,
        100.0 * bus_lat_growth
    );
    write_json("future_work", &rows);
}
