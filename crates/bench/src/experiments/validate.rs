//! Model-versus-simulation validation: run the timed simulators at 50 MIPS
//! and compare with the analytical models at the same point (the paper
//! reports agreement within 15% on latency and 5% on utilisations).

use serde::{Deserialize, Serialize};

use ringsim_analytic::{BusModel, ModelInput, RingModel};
use ringsim_bus::BusConfig;
use ringsim_core::{RunOptions, SimKind, SimSpec};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::{Benchmark, Workload};
use ringsim_types::Time;

use crate::benchmark_input;

/// The timed simulations are the slowest part of the suite; cap their
/// reference budget so validation stays tractable at the default budget.
const MAX_REFS: u64 = 40_000;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    config: String,
    sim_proc_util: f64,
    model_proc_util: f64,
    sim_net_util: f64,
    model_net_util: f64,
    sim_miss_ns: f64,
    model_miss_ns: f64,
}

impl Row {
    fn util_err(&self) -> f64 {
        (self.sim_proc_util - self.model_proc_util).abs()
    }
    fn lat_err(&self) -> f64 {
        if self.sim_miss_ns <= 0.0 {
            0.0
        } else {
            (self.sim_miss_ns - self.model_miss_ns).abs() / self.sim_miss_ns
        }
    }
}

/// One validation point: a benchmark configuration under one network.
#[derive(Debug, Clone, Copy)]
enum Variant {
    Ring(ProtocolKind),
    Bus,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Ring(p) => p.name(),
            Variant::Bus => "bus100",
        }
    }
}

fn run_point(bench: Benchmark, procs: usize, variant: Variant, refs: u64) -> Row {
    let (_, input) = benchmark_input(bench, procs, refs).expect("paper config");
    let proc = Time::from_ns(20);
    let wl_spec = bench.spec(procs).expect("spec").with_refs(refs);
    let workload = Workload::new(wl_spec).expect("workload");
    let (kind, config) = match variant {
        Variant::Ring(p) => {
            (SimKind::Ring500, format!("{}.{} ring {}", bench.name(), procs, p.name()))
        }
        Variant::Bus => (SimKind::Bus100, format!("{}.{} bus 100MHz", bench.name(), procs)),
    };
    let spec = match variant {
        Variant::Ring(p) => SimSpec::new(workload).with_protocol(p).with_proc_cycle(proc),
        Variant::Bus => SimSpec::new(workload).with_proc_cycle(proc),
    };
    let mut system = kind.build(&spec).expect("system");
    let sim = system.run(&RunOptions::default()).report;
    // Feed the *simulator's own* event mix to the model, mirroring the
    // paper's methodology (simulation-derived parameters).
    let sim_input = ModelInput::from_report(&sim, input.instr_per_data);
    let model = match variant {
        Variant::Ring(protocol) => {
            RingModel::new(RingConfig::standard_500mhz(procs), protocol).evaluate(&sim_input, proc)
        }
        Variant::Bus => BusModel::new(BusConfig::bus_100mhz(procs)).evaluate(&sim_input, proc),
    };
    Row {
        config,
        sim_proc_util: sim.proc_util,
        model_proc_util: model.proc_util,
        sim_net_util: sim.ring_util,
        model_net_util: model.net_util,
        sim_miss_ns: sim.miss_latency_ns(),
        model_miss_ns: model.miss_latency_ns,
    }
}

/// Runs the validation suite.
pub struct Validate;

impl Experiment for Validate {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn description(&self) -> &'static str {
        "timed simulation vs analytical model at 50 MIPS (paper: within 5%/15%)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let cases = [
            (Benchmark::Mp3d, 8),
            (Benchmark::Mp3d, 16),
            (Benchmark::Water, 8),
            (Benchmark::Cholesky, 16),
        ];
        let mut points = Vec::new();
        for (bench, procs) in cases {
            points.push((bench, procs, Variant::Ring(ProtocolKind::Snooping)));
            points.push((bench, procs, Variant::Ring(ProtocolKind::Directory)));
            points.push((bench, procs, Variant::Bus));
        }
        let rows = ctx.map(
            &points,
            |&(bench, procs, variant)| {
                SweepPoint::new().bench(bench.name()).procs(procs).protocol(variant.label())
            },
            |pctx, &(bench, procs, variant)| {
                run_point(bench, procs, variant, pctx.refs_per_proc.min(MAX_REFS))
            },
        );
        println!("Validation: timed simulation vs analytical model at 50 MIPS (20 ns processors)");
        println!("{:-<100}", "");
        println!(
            "{:<28} | {:>8} {:>8} | {:>8} {:>8} | {:>9} {:>9} | err(U) err(L)",
            "configuration", "simU%", "modU%", "simNet%", "modNet%", "simLat", "modLat"
        );
        let mut worst_u = 0.0f64;
        let mut worst_l = 0.0f64;
        for r in &rows {
            println!(
                "{:<28} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1} | {:>9.0} {:>9.0} | {:>5.1}pp {:>5.1}%",
                r.config,
                100.0 * r.sim_proc_util,
                100.0 * r.model_proc_util,
                100.0 * r.sim_net_util,
                100.0 * r.model_net_util,
                r.sim_miss_ns,
                r.model_miss_ns,
                100.0 * r.util_err(),
                100.0 * r.lat_err(),
            );
            worst_u = worst_u.max(r.util_err());
            worst_l = worst_l.max(r.lat_err());
        }
        println!(
            "worst-case disagreement: {:.1} percentage points (utilisation), {:.1}% (latency); paper reports 5% / 15%",
            100.0 * worst_u,
            100.0 * worst_l
        );
        ctx.write_json("validate", &rows);
        ctx.artifacts()
    }
}
