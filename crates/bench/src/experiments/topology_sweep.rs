//! Timed topology sweep over the hierarchical slotted-ring engine: the
//! same SPLASH workloads through a flat ring, the default two-level
//! hierarchy, a three-level hierarchy, and a two-level hierarchy with
//! finite deflecting bridges — all at equal processor counts, so the only
//! variable is the topology tree (and the bridge discipline).

use serde::{Deserialize, Serialize};

use ringsim_core::{HierTopology, RunOptions, SimKind, SimSpec};
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::{Benchmark, Workload};

/// Cap the budget like the other timed comparisons so the experiment stays
/// tractable at the default budget.
const MAX_REFS: u64 = 40_000;

/// The four topologies compared, as (label, backend, topology override).
const CONFIGS: [(&str, SimKind, Option<HierTopology>); 4] = [
    ("flat", SimKind::Hier, Some(HierTopology::Flat)),
    ("2level", SimKind::Hier, None),
    ("3level", SimKind::Hier3, None),
    ("deflect", SimKind::HierDeflect, None),
];

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    topology: String,
    proc_util: f64,
    /// Combined slot utilisation of the leaf rings (the whole ring when
    /// flat).
    leaf_util: f64,
    /// Combined slot utilisation of every ring above the leaves (0 when
    /// flat).
    upper_util: f64,
    miss_ns: f64,
    p95_miss_ns: f64,
    /// Bridge deflections over the run (0 except for `deflect`).
    deflections: u64,
    sim_end_ns: f64,
}

fn run_point(bench: Benchmark, procs: usize, label: &str, refs: u64) -> Row {
    let (_, kind, topo) = *CONFIGS.iter().find(|(l, ..)| *l == label).expect("known config");
    let spec = bench.spec(procs).expect("paper spec").with_refs(refs);
    let workload = Workload::new(spec).expect("workload");
    let mut sim_spec = SimSpec::new(workload);
    if let Some(t) = topo {
        sim_spec = sim_spec.with_topology(t);
    }
    let mut sim = kind.build(&sim_spec).expect("hier topology system");
    let report = sim.run(&RunOptions::default()).report;
    Row {
        bench: bench.name().to_owned(),
        procs,
        topology: label.to_owned(),
        proc_util: report.proc_util,
        leaf_util: report.ring_util,
        upper_util: report.block_util,
        miss_ns: report.miss_latency_ns(),
        p95_miss_ns: report.miss_latency_percentile(0.95).unwrap_or(0.0),
        deflections: report.retries,
        sim_end_ns: report.sim_end.as_ns_f64(),
    }
}

/// Compares ring topologies (flat / two-level / three-level / deflecting
/// bridges) at equal processor counts.
pub struct TopologySweep;

impl Experiment for TopologySweep {
    fn name(&self) -> &'static str {
        "topology_sweep"
    }

    fn description(&self) -> &'static str {
        "flat vs two-level vs three-level vs deflecting-bridge ring topologies, timed"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let procs = 16; // every SPLASH paper spec exists at 16 processors
        let mut cases = Vec::new();
        for bench in [Benchmark::Mp3d, Benchmark::Water, Benchmark::Cholesky] {
            for (label, ..) in CONFIGS {
                cases.push((bench, label));
            }
        }
        let rows = ctx.map(
            &cases,
            |&(bench, label)| {
                SweepPoint::new().bench(bench.name()).procs(procs).detail(format!("topo={label}"))
            },
            |pctx, &(bench, label)| {
                run_point(bench, procs, label, pctx.refs_per_proc.min(MAX_REFS))
            },
        );
        println!("Ring topology sweep, timed at 500 MHz ({procs} procs)");
        println!("{:-<86}", "");
        println!(
            "{:<10} {:<8} | {:>9} {:>9} {:>9} | {:>9} {:>9} | {:>8}",
            "bench", "topo", "procU%", "leafU%", "upperU%", "miss ns", "p95 ns", "defl"
        );
        for row in &rows {
            println!(
                "{:<10} {:<8} | {:>8.1}% {:>8.1}% {:>8.1}% | {:>9.1} {:>9.0} | {:>8}",
                row.bench,
                row.topology,
                100.0 * row.proc_util,
                100.0 * row.leaf_util,
                100.0 * row.upper_util,
                row.miss_ns,
                row.p95_miss_ns,
                row.deflections,
            );
        }
        println!(
            "(defl = bridge deflections; only the finite-buffer `deflect` config can deflect)"
        );
        ctx.write_json("topology_sweep", &rows);
        ctx.artifacts()
    }
}
