//! Table 2: trace characteristics of the synthetic workloads, next to the
//! paper's published values (this doubles as the calibration report for the
//! trace substitution documented in DESIGN.md).

use serde::{Deserialize, Serialize};

use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::CoherenceEvents;

use crate::{benchmark_input, paper_table2, PaperTable2Row};

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    events: CoherenceEvents,
    measured_total_mr: f64,
    measured_shared_mr: f64,
    measured_shared_frac: f64,
    measured_shared_wf: f64,
    measured_private_wf: f64,
    paper: PaperTable2Row,
}

/// Regenerates Table 2 (measured vs paper).
pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "synthetic-trace characteristics vs the paper's published values (Table 2)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let paper = paper_table2();
        let configs: Vec<(Benchmark, usize)> = Benchmark::paper_configs().collect();
        let rows = ctx.map(
            &configs,
            |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs),
            |pctx, &(bench, procs)| {
                let (ch, _) =
                    benchmark_input(bench, procs, pctx.refs_per_proc).expect("paper config");
                let e = ch.events;
                let p = paper
                    .iter()
                    .find(|r| r.bench == bench.name() && r.procs == procs)
                    .expect("paper row")
                    .clone();
                Row {
                    bench: bench.name().to_owned(),
                    procs,
                    measured_total_mr: e.total_miss_rate(),
                    measured_shared_mr: e.shared_miss_rate(),
                    measured_shared_frac: e.shared_refs() as f64 / e.data_refs().max(1) as f64,
                    measured_shared_wf: e.shared_write_frac(),
                    measured_private_wf: e.private_write_frac(),
                    events: e,
                    paper: p,
                }
            },
        );
        println!("Table 2: trace characteristics — measured (synthetic) vs paper");
        println!("{:-<108}", "");
        println!(
            "{:<12} {:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>8} | {:>7} {:>7} | {:>7} {:>7}",
            "bench",
            "P",
            "totMR%",
            "paper",
            "shMR%",
            "paper",
            "sh-ref%",
            "paper",
            "shW%",
            "paper",
            "pvW%",
            "paper"
        );
        for row in &rows {
            let p = &row.paper;
            println!(
                "{:<12} {:>4} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>8.1} {:>8.1} | {:>7.1} {:>7.1} | {:>7.1} {:>7.1}",
                row.bench,
                row.procs,
                100.0 * row.measured_total_mr,
                100.0 * p.total_miss_rate,
                100.0 * row.measured_shared_mr,
                100.0 * p.shared_miss_rate,
                100.0 * row.measured_shared_frac,
                100.0 * p.shared_frac,
                100.0 * row.measured_shared_wf,
                100.0 * p.shared_write_frac,
                100.0 * row.measured_private_wf,
                100.0 * p.private_write_frac,
            );
        }
        ctx.write_json("table2", &rows);
        ctx.artifacts()
    }
}
