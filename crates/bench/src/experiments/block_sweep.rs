//! Block-size sensitivity: Table 3 fixes the snooping-rate constraint per
//! block size; this experiment adds the performance dimension — how the
//! frame geometry (longer block slots, fewer slots per ring) moves
//! utilisation and latency for a fixed event mix.
//!
//! The reference mix is held constant across block sizes (a conservative
//! choice: larger blocks would also change miss rates; here we isolate the
//! interconnect effect, which is the part the paper's §3.3 discusses).

use serde::{Deserialize, Serialize};

use ringsim_analytic::RingModel;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::benchmark_input;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    block_bytes: u64,
    frame_stages: usize,
    snoop_interarrival_ns: f64,
    ring_stages: usize,
    proc_util: f64,
    ring_util: f64,
    miss_latency_ns: f64,
}

/// Sweeps the cache-block / block-slot size for a 16-processor snooping
/// ring at 200 MIPS.
pub struct BlockSweep;

impl Experiment for BlockSweep {
    fn name(&self) -> &'static str {
        "block_sweep"
    }

    fn description(&self) -> &'static str {
        "cache-block size vs frame geometry on a 16-proc snooping ring"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let procs = 16;
        // Shared characterisation: pure function of the spec, computed once.
        let (_, input) =
            benchmark_input(Benchmark::Mp3d, procs, ctx.refs_per_proc()).expect("paper config");
        let t = Time::from_ns(5);
        let blocks = [16u64, 32, 64, 128];
        let rows = ctx.map(
            &blocks,
            |&block| SweepPoint::new().bench("mp3d").procs(procs).detail(format!("block={block}")),
            |_pctx, &block| {
                let ring = RingConfig { block_bytes: block, ..RingConfig::standard_500mhz(procs) };
                let layout = ring.layout().expect("valid");
                let out = RingModel::new(ring, ProtocolKind::Snooping).evaluate(&input, t);
                Row {
                    block_bytes: block,
                    frame_stages: ring.frame_stages(),
                    snoop_interarrival_ns: ring.snoop_interarrival().as_ns_f64(),
                    ring_stages: layout.stages(),
                    proc_util: out.proc_util,
                    ring_util: out.net_util,
                    miss_latency_ns: out.miss_latency_ns,
                }
            },
        );
        println!("Block-size sweep: mp3d.16 event mix, snooping, 500 MHz 32-bit ring, 200 MIPS");
        println!("{:-<88}", "");
        println!(
            "{:>6} | {:>6} {:>10} {:>7} | {:>10} {:>10} {:>14}",
            "block", "frame", "snoop(ns)", "stages", "proc util%", "ring util%", "miss lat (ns)"
        );
        for row in &rows {
            println!(
                "{:>4} B | {:>6} {:>10.0} {:>7} | {:>10.1} {:>10.1} {:>14.0}",
                row.block_bytes,
                row.frame_stages,
                row.snoop_interarrival_ns,
                row.ring_stages,
                100.0 * row.proc_util,
                100.0 * row.ring_util,
                row.miss_latency_ns,
            );
        }
        println!("(fixed event mix: isolates the interconnect cost of bigger blocks)");
        ctx.write_json("block_sweep", &rows);
        ctx.artifacts()
    }
}
