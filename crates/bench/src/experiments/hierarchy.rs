//! Extension: two-level ring hierarchies (paper §5 related work — Hector,
//! KSR1) against the flat 64-node slotted ring, across cluster shapes and
//! home-placement locality.

use serde::Serialize;

use ringsim_analytic::{HierRingModel, RingModel};
use ringsim_proto::ProtocolKind;
use ringsim_ring::{RingConfig, RingHierarchy};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::{benchmark_input, write_json};

#[derive(Debug, Serialize)]
struct Row {
    topology: String,
    locality_pct: u32,
    proc_util: f64,
    miss_latency_ns: f64,
    local_util: f64,
    global_util: f64,
}

/// Compares the flat 64-processor ring with 4×16 / 8×8 / 16×4 hierarchies.
pub fn run(refs_per_proc: u64) {
    let (_, input) = benchmark_input(Benchmark::Weather, 64, refs_per_proc).expect("paper config");
    let t = Time::from_ns(5); // 200 MIPS
    println!("Hierarchical rings vs the flat 64-node ring (weather.64 mix, snooping, 200 MIPS)");
    println!("{:-<86}", "");
    println!(
        "{:<10} {:>9} | {:>10} {:>14} | {:>11} {:>11}",
        "topology", "locality", "proc util%", "miss lat (ns)", "local util%", "global util%"
    );
    let mut rows = Vec::new();

    let flat = RingModel::new(RingConfig::standard_500mhz(64), ProtocolKind::Snooping)
        .evaluate(&input, t);
    println!(
        "{:<10} {:>8}% | {:>10.1} {:>14.0} | {:>11.1} {:>11}",
        "flat-64", "-", 100.0 * flat.proc_util, flat.miss_latency_ns, 100.0 * flat.net_util, "-"
    );
    rows.push(Row {
        topology: "flat-64".into(),
        locality_pct: 0,
        proc_util: flat.proc_util,
        miss_latency_ns: flat.miss_latency_ns,
        local_util: flat.net_util,
        global_util: 0.0,
    });

    for (rings, per) in [(4usize, 16usize), (8, 8), (16, 4)] {
        let hier = RingHierarchy::new(rings, per).expect("valid hierarchy");
        let uniform = (100.0 * hier.uniform_locality()).round() as u32;
        for locality_pct in [uniform, 50, 80] {
            let model = HierRingModel::new(hier.clone())
                .with_locality(f64::from(locality_pct) / 100.0);
            let out = model.evaluate(&input, t);
            println!(
                "{:<10} {:>8}% | {:>10.1} {:>14.0} | {:>11.1} {:>11.1}",
                format!("{rings}x{per}"),
                locality_pct,
                100.0 * out.proc_util,
                out.miss_latency_ns,
                100.0 * out.probe_util,
                100.0 * out.block_util,
            );
            rows.push(Row {
                topology: format!("{rings}x{per}"),
                locality_pct,
                proc_util: out.proc_util,
                miss_latency_ns: out.miss_latency_ns,
                local_util: out.probe_util,
                global_util: out.block_util,
            });
        }
    }
    println!("(locality = fraction of remote transactions homed in the requester's local ring)");
    write_json("hierarchy", &rows);
}
