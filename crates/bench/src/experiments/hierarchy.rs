//! Extension: two-level ring hierarchies (paper §5 related work — Hector,
//! KSR1) against the flat 64-node slotted ring, across cluster shapes and
//! home-placement locality.

use serde::{Deserialize, Serialize};

use ringsim_analytic::{HierRingModel, RingModel};
use ringsim_proto::ProtocolKind;
use ringsim_ring::{RingConfig, RingHierarchy};
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::benchmark_input;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    topology: String,
    locality_pct: u32,
    proc_util: f64,
    miss_latency_ns: f64,
    local_util: f64,
    global_util: f64,
}

/// One topology/locality combination (locality 0 on the flat ring).
#[derive(Debug, Clone, Copy)]
enum Point {
    Flat,
    Hier { rings: usize, per: usize, locality_pct: u32 },
}

impl Point {
    fn label(self) -> String {
        match self {
            Point::Flat => "flat-64".to_owned(),
            Point::Hier { rings, per, locality_pct } => {
                format!("{rings}x{per}|locality={locality_pct}")
            }
        }
    }
}

/// Compares the flat 64-processor ring with 4×16 / 8×8 / 16×4 hierarchies.
pub struct Hierarchy;

impl Experiment for Hierarchy {
    fn name(&self) -> &'static str {
        "hierarchy"
    }

    fn description(&self) -> &'static str {
        "two-level ring hierarchies vs the flat 64-node ring"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        // Shared characterisation: pure function of the spec, computed once.
        let (_, input) =
            benchmark_input(Benchmark::Weather, 64, ctx.refs_per_proc()).expect("paper config");
        let t = Time::from_ns(5); // 200 MIPS
        let mut points = vec![Point::Flat];
        for (rings, per) in [(4usize, 16usize), (8, 8), (16, 4)] {
            let hier = RingHierarchy::new(rings, per).expect("valid hierarchy");
            let uniform = (100.0 * hier.uniform_locality()).round() as u32;
            for locality_pct in [uniform, 50, 80] {
                points.push(Point::Hier { rings, per, locality_pct });
            }
        }
        let rows = ctx.map(
            &points,
            |p| SweepPoint::new().bench("weather").procs(64).detail(p.label()),
            |_pctx, p| match *p {
                Point::Flat => {
                    let flat =
                        RingModel::new(RingConfig::standard_500mhz(64), ProtocolKind::Snooping)
                            .evaluate(&input, t);
                    Row {
                        topology: "flat-64".into(),
                        locality_pct: 0,
                        proc_util: flat.proc_util,
                        miss_latency_ns: flat.miss_latency_ns,
                        local_util: flat.net_util,
                        global_util: 0.0,
                    }
                }
                Point::Hier { rings, per, locality_pct } => {
                    let hier = RingHierarchy::new(rings, per).expect("valid hierarchy");
                    let model =
                        HierRingModel::new(hier).with_locality(f64::from(locality_pct) / 100.0);
                    let out = model.evaluate(&input, t);
                    Row {
                        topology: format!("{rings}x{per}"),
                        locality_pct,
                        proc_util: out.proc_util,
                        miss_latency_ns: out.miss_latency_ns,
                        local_util: out.probe_util,
                        global_util: out.block_util,
                    }
                }
            },
        );
        println!(
            "Hierarchical rings vs the flat 64-node ring (weather.64 mix, snooping, 200 MIPS)"
        );
        println!("{:-<86}", "");
        println!(
            "{:<10} {:>9} | {:>10} {:>14} | {:>11} {:>11}",
            "topology", "locality", "proc util%", "miss lat (ns)", "local util%", "global util%"
        );
        for row in &rows {
            if row.topology == "flat-64" {
                println!(
                    "{:<10} {:>8}% | {:>10.1} {:>14.0} | {:>11.1} {:>11}",
                    row.topology,
                    "-",
                    100.0 * row.proc_util,
                    row.miss_latency_ns,
                    100.0 * row.local_util,
                    "-"
                );
            } else {
                println!(
                    "{:<10} {:>8}% | {:>10.1} {:>14.0} | {:>11.1} {:>11.1}",
                    row.topology,
                    row.locality_pct,
                    100.0 * row.proc_util,
                    row.miss_latency_ns,
                    100.0 * row.local_util,
                    100.0 * row.global_util,
                );
            }
        }
        println!(
            "(locality = fraction of remote transactions homed in the requester's local ring)"
        );
        ctx.write_json("hierarchy", &rows);
        ctx.artifacts()
    }
}
