//! Ablations of the design choices the paper argues in prose:
//!
//! 1. **Slot mix** — the paper claims two probe slots per block slot is the
//!    optimum frame composition for the snooping protocol (§3.3).
//! 2. **Anti-starvation rule** — forbidding a node from reusing a slot it
//!    just freed "has no significant impact on system performance" (§5).
//! 3. **64-bit rings** — "utilization levels never surpass 50% and snooping
//!    performs significantly better than directory in all cases" (§4.2).
//! 4. **Memory-bank contention** — the paper fixes bank time at 140 ns with
//!    no queueing; turning queueing on quantifies how much that assumption
//!    flatters the results.

use serde::{Deserialize, Serialize};

use ringsim_core::{RingSystem, RunOptions, Simulator, SystemConfig};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::{Benchmark, Workload};
use ringsim_types::Time;

/// The ablations are timed simulations; cap their reference budget so they
/// stay tractable at the default budget.
const MAX_REFS: u64 = 40_000;

#[derive(Debug, Serialize, Deserialize)]
struct MixRow {
    probes_per_frame: usize,
    blocks_per_frame: usize,
    proc_util: f64,
    ring_util: f64,
    miss_latency_ns: f64,
    sim_end_us: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct AblationResult {
    slot_mix: Vec<MixRow>,
    starvation_rule_on_util: f64,
    starvation_rule_off_util: f64,
    wide_snoop_util: f64,
    wide_dir_util: f64,
    wide_snoop_ring_util: f64,
    wide_snoop_latency: f64,
    wide_dir_latency: f64,
    bank_contention_off_util: f64,
    bank_contention_on_util: f64,
    bank_contention_off_latency: f64,
    bank_contention_on_latency: f64,
}

/// One independent timed simulation in the ablation suite.
#[derive(Debug, Clone, Copy)]
enum Point {
    Mix { probes: usize, blocks: usize },
    Starvation { rule_on: bool },
    Wide(ProtocolKind),
    Bank { queueing: bool },
}

impl Point {
    fn label(self) -> String {
        match self {
            Point::Mix { probes, blocks } => format!("mix={probes}:{blocks}"),
            Point::Starvation { rule_on } => format!("starvation_rule={rule_on}"),
            Point::Wide(p) => format!("wide64_{}", p.name()),
            Point::Bank { queueing } => format!("bank_queueing={queueing}"),
        }
    }

    fn config(self) -> SystemConfig {
        let procs = 16;
        match self {
            Point::Mix { probes, blocks } => {
                // 200 MIPS: enough load to matter.
                let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs)
                    .with_proc_cycle(Time::from_ns(5));
                cfg.ring.probe_slots_per_frame = probes;
                cfg.ring.block_slots_per_frame = blocks;
                cfg
            }
            Point::Starvation { rule_on } => {
                let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs)
                    .with_proc_cycle(Time::from_ns(5));
                cfg.ring.reuse_after_remove = !rule_on;
                cfg
            }
            Point::Wide(protocol) => {
                let mut cfg =
                    SystemConfig::ring_500mhz(protocol, procs).with_proc_cycle(Time::from_ns(2));
                cfg.ring = RingConfig::wide_64bit_500mhz(procs);
                cfg
            }
            Point::Bank { queueing } => {
                let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs)
                    .with_proc_cycle(Time::from_ns(5));
                cfg.model_bank_contention = queueing;
                cfg
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct SimSummary {
    proc_util: f64,
    ring_util: f64,
    miss_latency_ns: f64,
    sim_end_us: f64,
}

/// The ablation points need bespoke [`SystemConfig`]s (slot mixes, wide
/// rings, bank queueing), so they construct the [`RingSystem`] directly but
/// still run it through the shared [`Simulator::run`] lifecycle so
/// cross-cutting features (metrics sinks, obs) apply here too.
fn simulate(cfg: SystemConfig, refs: u64) -> SimSummary {
    let spec = Benchmark::Mp3d.spec(16).expect("spec").with_refs(refs);
    let workload = Workload::new(spec).expect("workload");
    let mut system = RingSystem::new(cfg, workload).expect("system");
    let r = Simulator::run(&mut system, &RunOptions::default()).report;
    SimSummary {
        proc_util: r.proc_util,
        ring_util: r.ring_util,
        miss_latency_ns: r.miss_latency_ns(),
        sim_end_us: r.sim_end.as_ns_f64() / 1000.0,
    }
}

/// Runs all four ablations (timed simulations on MP3D-16).
pub struct Ablation;

impl Experiment for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn description(&self) -> &'static str {
        "slot-mix, anti-starvation, 64-bit-ring and bank-contention ablations"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let mixes = [(1usize, 1usize), (2, 1), (3, 1), (4, 1), (2, 2)];
        let mut points: Vec<Point> =
            mixes.iter().map(|&(p, b)| Point::Mix { probes: p, blocks: b }).collect();
        points.push(Point::Starvation { rule_on: true });
        points.push(Point::Starvation { rule_on: false });
        points.push(Point::Wide(ProtocolKind::Snooping));
        points.push(Point::Wide(ProtocolKind::Directory));
        points.push(Point::Bank { queueing: false });
        points.push(Point::Bank { queueing: true });

        let results = ctx.map(
            &points,
            |p| SweepPoint::new().bench("mp3d").procs(16).detail(p.label()),
            |pctx, p| simulate(p.config(), pctx.refs_per_proc.min(MAX_REFS)),
        );

        // 1. slot mix sweep.
        println!("Ablation 1: probe/block slot mix (snooping, mp3d.16, 200 MIPS)");
        println!("{:-<76}", "");
        println!(
            "{:>6} | {:>10} {:>10} {:>14} {:>12}",
            "mix", "proc util%", "ring util%", "miss lat (ns)", "exec (us)"
        );
        let mut slot_mix = Vec::new();
        for (&(p, b), r) in mixes.iter().zip(&results) {
            println!(
                "{:>4}:{} | {:>10.1} {:>10.1} {:>14.0} {:>12.1}",
                p,
                b,
                100.0 * r.proc_util,
                100.0 * r.ring_util,
                r.miss_latency_ns,
                r.sim_end_us,
            );
            slot_mix.push(MixRow {
                probes_per_frame: p,
                blocks_per_frame: b,
                proc_util: r.proc_util,
                ring_util: r.ring_util,
                miss_latency_ns: r.miss_latency_ns,
                sim_end_us: r.sim_end_us,
            });
        }

        // 2. anti-starvation rule.
        let (on, off) = (results[5], results[6]);
        println!();
        println!("Ablation 2: anti-starvation slot-reuse rule (snooping, mp3d.16, 200 MIPS)");
        println!(
            "  rule on : proc util {:>5.1}%, miss latency {:>5.0} ns",
            100.0 * on.proc_util,
            on.miss_latency_ns
        );
        println!(
            "  rule off: proc util {:>5.1}%, miss latency {:>5.0} ns  (paper: no significant impact)",
            100.0 * off.proc_util,
            off.miss_latency_ns
        );

        // 3. 64-bit rings.
        let (wide_snoop, wide_dir) = (results[7], results[8]);
        println!();
        println!("Ablation 3: 64-bit parallel ring at 500 MIPS processors (mp3d.16)");
        println!(
            "  snooping : proc util {:>5.1}%, ring util {:>5.1}%, miss latency {:>5.0} ns",
            100.0 * wide_snoop.proc_util,
            100.0 * wide_snoop.ring_util,
            wide_snoop.miss_latency_ns
        );
        println!(
            "  directory: proc util {:>5.1}%, ring util {:>5.1}%, miss latency {:>5.0} ns",
            100.0 * wide_dir.proc_util,
            100.0 * wide_dir.ring_util,
            wide_dir.miss_latency_ns
        );
        println!(
            "  (paper: 64-bit ring utilisation never surpasses 50%; snooping wins everywhere)"
        );

        // 4. memory-bank contention.
        let (no_queue, queue) = (results[9], results[10]);
        println!();
        println!("Ablation 4: memory-bank queueing (snooping, mp3d.16, 200 MIPS)");
        println!(
            "  contention-free banks (paper): proc util {:>5.1}%, miss latency {:>5.0} ns",
            100.0 * no_queue.proc_util,
            no_queue.miss_latency_ns
        );
        println!(
            "  serialised banks              : proc util {:>5.1}%, miss latency {:>5.0} ns",
            100.0 * queue.proc_util,
            queue.miss_latency_ns
        );

        ctx.write_json(
            "ablation",
            &AblationResult {
                slot_mix,
                starvation_rule_on_util: on.proc_util,
                starvation_rule_off_util: off.proc_util,
                wide_snoop_util: wide_snoop.proc_util,
                wide_dir_util: wide_dir.proc_util,
                wide_snoop_ring_util: wide_snoop.ring_util,
                wide_snoop_latency: wide_snoop.miss_latency_ns,
                wide_dir_latency: wide_dir.miss_latency_ns,
                bank_contention_off_util: no_queue.proc_util,
                bank_contention_on_util: queue.proc_util,
                bank_contention_off_latency: no_queue.miss_latency_ns,
                bank_contention_on_latency: queue.miss_latency_ns,
            },
        );
        ctx.artifacts()
    }
}
