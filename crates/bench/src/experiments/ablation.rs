//! Ablations of the design choices the paper argues in prose:
//!
//! 1. **Slot mix** — the paper claims two probe slots per block slot is the
//!    optimum frame composition for the snooping protocol (§3.3).
//! 2. **Anti-starvation rule** — forbidding a node from reusing a slot it
//!    just freed "has no significant impact on system performance" (§5).
//! 3. **64-bit rings** — "utilization levels never surpass 50% and snooping
//!    performs significantly better than directory in all cases" (§4.2).
//! 4. **Memory-bank contention** — the paper fixes bank time at 140 ns with
//!    no queueing; turning queueing on quantifies how much that assumption
//!    flatters the results.

use serde::Serialize;

use ringsim_core::{RingSystem, SystemConfig};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_trace::{Benchmark, Workload};
use ringsim_types::Time;

use crate::write_json;

#[derive(Debug, Serialize)]
struct MixRow {
    probes_per_frame: usize,
    blocks_per_frame: usize,
    proc_util: f64,
    ring_util: f64,
    miss_latency_ns: f64,
    sim_end_us: f64,
}

#[derive(Debug, Serialize)]
struct AblationResult {
    slot_mix: Vec<MixRow>,
    starvation_rule_on_util: f64,
    starvation_rule_off_util: f64,
    wide_snoop_util: f64,
    wide_dir_util: f64,
    wide_snoop_ring_util: f64,
    wide_snoop_latency: f64,
    wide_dir_latency: f64,
    bank_contention_off_util: f64,
    bank_contention_on_util: f64,
    bank_contention_off_latency: f64,
    bank_contention_on_latency: f64,
}

fn run_sim(cfg: SystemConfig, bench: Benchmark, procs: usize, refs: u64) -> ringsim_core::SimReport {
    let spec = bench.spec(procs).expect("spec").with_refs(refs);
    let workload = Workload::new(spec).expect("workload");
    RingSystem::new(cfg, workload).expect("system").run()
}

/// Runs all three ablations (timed simulations on MP3D-16).
pub fn run(refs_per_proc: u64) {
    let procs = 16;
    let bench = Benchmark::Mp3d;
    let proc_cycle = Time::from_ns(5); // 200 MIPS: enough load to matter

    // 1. slot mix sweep.
    println!("Ablation 1: probe/block slot mix (snooping, mp3d.16, 200 MIPS)");
    println!("{:-<76}", "");
    println!(
        "{:>6} | {:>10} {:>10} {:>14} {:>12}",
        "mix", "proc util%", "ring util%", "miss lat (ns)", "exec (us)"
    );
    let mut slot_mix = Vec::new();
    for (p, b) in [(1usize, 1usize), (2, 1), (3, 1), (4, 1), (2, 2)] {
        let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs)
            .with_proc_cycle(proc_cycle);
        cfg.ring.probe_slots_per_frame = p;
        cfg.ring.block_slots_per_frame = b;
        let r = run_sim(cfg, bench, procs, refs_per_proc);
        println!(
            "{:>4}:{} | {:>10.1} {:>10.1} {:>14.0} {:>12.1}",
            p,
            b,
            100.0 * r.proc_util,
            100.0 * r.ring_util,
            r.miss_latency_ns(),
            r.sim_end.as_ns_f64() / 1000.0
        );
        slot_mix.push(MixRow {
            probes_per_frame: p,
            blocks_per_frame: b,
            proc_util: r.proc_util,
            ring_util: r.ring_util,
            miss_latency_ns: r.miss_latency_ns(),
            sim_end_us: r.sim_end.as_ns_f64() / 1000.0,
        });
    }

    // 2. anti-starvation rule.
    let on = run_sim(
        SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs).with_proc_cycle(proc_cycle),
        bench,
        procs,
        refs_per_proc,
    );
    let mut cfg_off =
        SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs).with_proc_cycle(proc_cycle);
    cfg_off.ring.reuse_after_remove = true;
    let off = run_sim(cfg_off, bench, procs, refs_per_proc);
    println!();
    println!("Ablation 2: anti-starvation slot-reuse rule (snooping, mp3d.16, 200 MIPS)");
    println!(
        "  rule on : proc util {:>5.1}%, miss latency {:>5.0} ns",
        100.0 * on.proc_util,
        on.miss_latency_ns()
    );
    println!(
        "  rule off: proc util {:>5.1}%, miss latency {:>5.0} ns  (paper: no significant impact)",
        100.0 * off.proc_util,
        off.miss_latency_ns()
    );

    // 3. 64-bit rings.
    let mk_wide = |protocol| {
        let mut cfg = SystemConfig::ring_500mhz(protocol, procs).with_proc_cycle(Time::from_ns(2));
        cfg.ring = RingConfig::wide_64bit_500mhz(procs);
        run_sim(cfg, bench, procs, refs_per_proc)
    };
    let wide_snoop = mk_wide(ProtocolKind::Snooping);
    let wide_dir = mk_wide(ProtocolKind::Directory);
    println!();
    println!("Ablation 3: 64-bit parallel ring at 500 MIPS processors (mp3d.16)");
    println!(
        "  snooping : proc util {:>5.1}%, ring util {:>5.1}%, miss latency {:>5.0} ns",
        100.0 * wide_snoop.proc_util,
        100.0 * wide_snoop.ring_util,
        wide_snoop.miss_latency_ns()
    );
    println!(
        "  directory: proc util {:>5.1}%, ring util {:>5.1}%, miss latency {:>5.0} ns",
        100.0 * wide_dir.proc_util,
        100.0 * wide_dir.ring_util,
        wide_dir.miss_latency_ns()
    );
    println!("  (paper: 64-bit ring utilisation never surpasses 50%; snooping wins everywhere)");

    // 4. memory-bank contention.
    let base = SystemConfig::ring_500mhz(ProtocolKind::Snooping, procs).with_proc_cycle(proc_cycle);
    let no_queue = run_sim(base, bench, procs, refs_per_proc);
    let mut q_cfg = base;
    q_cfg.model_bank_contention = true;
    let queue = run_sim(q_cfg, bench, procs, refs_per_proc);
    println!();
    println!("Ablation 4: memory-bank queueing (snooping, mp3d.16, 200 MIPS)");
    println!(
        "  contention-free banks (paper): proc util {:>5.1}%, miss latency {:>5.0} ns",
        100.0 * no_queue.proc_util,
        no_queue.miss_latency_ns()
    );
    println!(
        "  serialised banks              : proc util {:>5.1}%, miss latency {:>5.0} ns",
        100.0 * queue.proc_util,
        queue.miss_latency_ns()
    );

    write_json(
        "ablation",
        &AblationResult {
            slot_mix,
            starvation_rule_on_util: on.proc_util,
            starvation_rule_off_util: off.proc_util,
            wide_snoop_util: wide_snoop.proc_util,
            wide_dir_util: wide_dir.proc_util,
            wide_snoop_ring_util: wide_snoop.ring_util,
            wide_snoop_latency: wide_snoop.miss_latency_ns(),
            wide_dir_latency: wide_dir.miss_latency_ns(),
            bank_contention_off_util: no_queue.proc_util,
            bank_contention_on_util: queue.proc_util,
            bank_contention_off_latency: no_queue.miss_latency_ns(),
            bank_contention_on_latency: queue.miss_latency_ns(),
        },
    );
}
