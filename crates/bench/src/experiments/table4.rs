//! Table 4: the bus clock cycle (ns) a 64-bit split-transaction bus needs to
//! match the processor utilisation of 32-bit slotted rings at 250 and
//! 500 MHz, for 100/200/400 MIPS processors.

use serde::{Deserialize, Serialize};

use ringsim_analytic::match_bus_clock;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::benchmark_input;

/// Paper values: `[(bench, procs, [250 MHz: 100/200/400 MIPS], [500 MHz: ...])]`.
fn paper() -> Vec<(&'static str, usize, [f64; 3], [f64; 3])> {
    vec![
        ("mp3d", 8, [12.5, 10.3, 8.9], [7.8, 6.6, 5.6]),
        ("water", 8, [19.6, 19.1, 17.7], [10.0, 10.0, 9.9]),
        ("cholesky", 8, [12.8, 10.6, 9.0], [7.6, 6.6, 5.7]),
        ("mp3d", 16, [9.0, 7.1, 6.2], [6.5, 4.9, 4.0]),
        ("water", 16, [25.4, 21.4, 16.5], [14.1, 12.9, 10.9]),
        ("cholesky", 16, [6.8, 5.4, 4.7], [4.9, 3.7, 3.1]),
        ("mp3d", 32, [3.8, 3.7, 3.6], [2.4, 2.1, 2.0]),
        ("water", 32, [21.4, 13.9, 9.2], [16.2, 11.0, 7.3]),
        ("cholesky", 32, [3.7, 3.5, 3.4], [2.3, 2.0, 1.9]),
    ]
}

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    ring_mhz: u64,
    mips: u64,
    matched_bus_ns: f64,
    paper_bus_ns: f64,
    ring_proc_util: f64,
    bus_net_util: f64,
    ring_net_util: f64,
}

/// Regenerates Table 4.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn description(&self) -> &'static str {
        "bus clock needed to match slotted-ring processor utilisation (Table 4)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let cases = paper();
        // One point per (benchmark, procs); each computes all six cells so
        // the expensive characterisation runs once per point.
        let per_case = ctx.map(
            &cases,
            |&(name, procs, _, _)| SweepPoint::new().bench(name).procs(procs),
            |pctx, &(name, procs, paper250, paper500)| {
                let bench = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name() == name)
                    .expect("benchmark exists");
                let (_, input) =
                    benchmark_input(bench, procs, pctx.refs_per_proc).expect("paper config");
                let mut rows = Vec::new();
                for (mhz, papers) in [(250u64, paper250), (500u64, paper500)] {
                    let ring = if mhz == 250 {
                        RingConfig::standard_250mhz(procs)
                    } else {
                        RingConfig::standard_500mhz(procs)
                    };
                    for (mi, mips) in [100u64, 200, 400].into_iter().enumerate() {
                        let m = match_bus_clock(
                            &input,
                            ring,
                            ProtocolKind::Snooping,
                            Time::from_ps(1_000_000 / mips),
                        );
                        rows.push(Row {
                            bench: name.to_owned(),
                            procs,
                            ring_mhz: mhz,
                            mips,
                            matched_bus_ns: m.bus_period.as_ns_f64(),
                            paper_bus_ns: papers[mi],
                            ring_proc_util: m.ring_proc_util,
                            bus_net_util: m.bus_net_util,
                            ring_net_util: m.ring_net_util,
                        });
                    }
                }
                rows
            },
        );
        println!("Table 4: bus clock cycle (ns) to match slotted-ring performance (snooping)");
        println!("{:-<96}", "");
        println!(
            "{:<14} | {:>28} | {:>28}",
            "benchmark", "250 MHz ring (100/200/400)", "500 MHz ring (100/200/400)"
        );
        for (case_rows, (name, procs, paper250, paper500)) in per_case.iter().zip(cases) {
            let mut line = format!("{:<14} |", format!("{name} {procs}"));
            for (mhz, papers) in [(250u64, paper250), (500u64, paper500)] {
                let mut cell = String::new();
                for r in case_rows.iter().filter(|r| r.ring_mhz == mhz) {
                    cell.push_str(&format!(" {:>4.1}", r.matched_bus_ns));
                }
                let p =
                    format!(" (paper {:>4.1}/{:>4.1}/{:>4.1})", papers[0], papers[1], papers[2]);
                line.push_str(&cell);
                line.push_str(&p);
                line.push_str(" |");
            }
            println!("{line}");
        }
        let rows: Vec<Row> = per_case.into_iter().flatten().collect();
        // Paper's headline observation: matching buses run far hotter than
        // the rings they match.
        let hotter = rows.iter().filter(|r| r.bus_net_util > r.ring_net_util).count();
        println!(
            "bus utilisation exceeds ring utilisation in {hotter}/{} matched configurations",
            rows.len()
        );
        ctx.write_json("table4", &rows);
        ctx.artifacts()
    }
}
