//! SCI linked-list directory versus the full-map directory, timed: the
//! same SPLASH workloads through the full-map directory ring (`ring500`)
//! and through the SCI backend (`sci500`), side by side with the traversal
//! distributions the SCI engine accumulated over the run (the timed
//! counterpart of Table 1's untimed accountants).

use serde::{Deserialize, Serialize};

use ringsim_core::{RunOptions, SciRingSystem, SciSystemConfig, SimKind, SimSpec};
use ringsim_proto::table1::TraversalReport;
use ringsim_proto::ProtocolKind;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::{Benchmark, Workload};
use ringsim_types::Time;

/// Two timed runs per point; cap the budget like the validation suite so
/// the experiment stays tractable at the default budget.
const MAX_REFS: u64 = 40_000;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    /// Full-map directory on the 500 MHz slotted ring.
    fullmap_proc_util: f64,
    fullmap_ring_util: f64,
    fullmap_miss_ns: f64,
    /// SCI linked-list directory on the same ring clock.
    sci_proc_util: f64,
    sci_ring_util: f64,
    sci_miss_ns: f64,
    /// Traversal distributions the SCI engine accumulated over the timed
    /// run (warm-up included — the protocol walks lists from reference
    /// one).
    sci_traversals: TraversalReport,
}

fn run_point(bench: Benchmark, procs: usize, refs: u64) -> Row {
    let proc = Time::from_ns(20);
    let spec = bench.spec(procs).expect("paper spec").with_refs(refs);

    let fullmap = {
        let workload = Workload::new(spec.clone()).expect("workload");
        let sim_spec =
            SimSpec::new(workload).with_protocol(ProtocolKind::Directory).with_proc_cycle(proc);
        let mut system = SimKind::Ring500.build(&sim_spec).expect("system");
        system.run(&RunOptions::default()).report
    };

    // Built directly (not through the registry) so the engine's traversal
    // report stays reachable after the run.
    let workload = Workload::new(spec).expect("workload");
    let cfg = SciSystemConfig::sci_500mhz(procs).with_proc_cycle(proc);
    let mut sci = SciRingSystem::new(cfg, workload).expect("system");
    let sci_report = sci.run();

    Row {
        bench: bench.name().to_owned(),
        procs,
        fullmap_proc_util: fullmap.proc_util,
        fullmap_ring_util: fullmap.ring_util,
        fullmap_miss_ns: fullmap.miss_latency_ns(),
        sci_proc_util: sci_report.proc_util,
        sci_ring_util: sci_report.ring_util,
        sci_miss_ns: sci_report.miss_latency_ns(),
        sci_traversals: sci.traversal_report(),
    }
}

/// Compares the SCI backend with the full-map directory ring.
pub struct SciVsFullmap;

impl Experiment for SciVsFullmap {
    fn name(&self) -> &'static str {
        "sci_vs_fullmap"
    }

    fn description(&self) -> &'static str {
        "timed SCI linked-list directory vs full-map directory ring (500 MHz, 50 MIPS)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let cases = [(Benchmark::Mp3d, 16), (Benchmark::Water, 16), (Benchmark::Cholesky, 16)];
        let rows = ctx.map(
            &cases,
            |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs).protocol("sci"),
            |pctx, &(bench, procs)| run_point(bench, procs, pctx.refs_per_proc.min(MAX_REFS)),
        );
        println!("SCI linked list vs full map, timed at 500 MHz / 50 MIPS (16 procs)");
        println!("{:-<100}", "");
        println!(
            "{:<10} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9} | miss 1/2/3+ %",
            "bench", "fmU%", "fmNet%", "fmLat", "sciU%", "sciNet%", "sciLat"
        );
        for row in &rows {
            let (one, two, three) = row.sci_traversals.miss.percentages();
            println!(
                "{:<10} | {:>7.1}% {:>7.1}% {:>8.1}n | {:>7.1}% {:>7.1}% {:>8.1}n | {:>4.1}/{:>4.1}/{:>4.1}",
                row.bench,
                100.0 * row.fullmap_proc_util,
                100.0 * row.fullmap_ring_util,
                row.fullmap_miss_ns,
                100.0 * row.sci_proc_util,
                100.0 * row.sci_ring_util,
                row.sci_miss_ns,
                one,
                two,
                three,
            );
        }
        ctx.write_json("sci_vs_fullmap", &rows);
        ctx.artifacts()
    }
}
