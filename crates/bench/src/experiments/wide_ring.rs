//! The figure the paper describes but does not show (§4.2): "Our
//! simulation experiments with a 64-bit parallel slotted ring (not shown
//! here) agree with this assessment. With 64-bit parallel rings,
//! utilization levels never surpass 50% and snooping performs
//! significantly better than directory in all cases."
//!
//! This experiment regenerates that unshown comparison across every paper
//! benchmark at its largest size.

use serde::{Deserialize, Serialize};

use ringsim_analytic::RingModel;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_trace::Benchmark;
use ringsim_types::Time;

use crate::benchmark_input;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    procs: usize,
    proc_cycle_ns: u64,
    snoop_util: f64,
    dir_util: f64,
    snoop_ring_util: f64,
    dir_ring_util: f64,
}

/// Regenerates the unshown 64-bit-ring figure.
pub struct WideRing;

impl Experiment for WideRing {
    fn name(&self) -> &'static str {
        "wide_ring"
    }

    fn description(&self) -> &'static str {
        "64-bit parallel ring, snooping vs directory (the paper's unshown figure)"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        // Largest size per benchmark only (64-bit rings target the high end).
        let configs: Vec<(Benchmark, usize)> = Benchmark::paper_configs()
            .filter(|(bench, procs)| bench.paper_sizes().last() == Some(procs))
            .collect();
        let per_config = ctx.map(
            &configs,
            |&(bench, procs)| SweepPoint::new().bench(bench.name()).procs(procs),
            |pctx, &(bench, procs)| {
                let (_, input) =
                    benchmark_input(bench, procs, pctx.refs_per_proc).expect("paper config");
                let ring = RingConfig::wide_64bit_500mhz(procs);
                [2u64, 5, 10]
                    .into_iter()
                    .map(|ns| {
                        let t = Time::from_ns(ns);
                        let s = RingModel::new(ring, ProtocolKind::Snooping).evaluate(&input, t);
                        let d = RingModel::new(ring, ProtocolKind::Directory).evaluate(&input, t);
                        Row {
                            bench: bench.name().to_owned(),
                            procs,
                            proc_cycle_ns: ns,
                            snoop_util: s.proc_util,
                            dir_util: d.proc_util,
                            snoop_ring_util: s.net_util,
                            dir_ring_util: d.net_util,
                        }
                    })
                    .collect::<Vec<Row>>()
            },
        );
        println!(
            "64-bit parallel slotted ring (500 MHz): snooping vs directory — the paper's unshown figure"
        );
        println!("{:-<96}", "");
        println!(
            "{:<12} {:>4} {:>6} | {:>10} {:>10} | {:>12} {:>12} | verdict",
            "bench", "P", "ns", "snoopU%", "dirU%", "snoopRing%", "dirRing%"
        );
        let rows: Vec<Row> = per_config.into_iter().flatten().collect();
        let mut max_util: f64 = 0.0;
        let mut snoop_always_wins = true;
        for row in &rows {
            max_util = max_util.max(row.snoop_ring_util).max(row.dir_ring_util);
            snoop_always_wins &= row.snoop_util >= row.dir_util - 1e-6;
            println!(
                "{:<12} {:>4} {:>6} | {:>10.1} {:>10.1} | {:>12.1} {:>12.1} | {}",
                row.bench,
                row.procs,
                row.proc_cycle_ns,
                100.0 * row.snoop_util,
                100.0 * row.dir_util,
                100.0 * row.snoop_ring_util,
                100.0 * row.dir_ring_util,
                if row.snoop_util >= row.dir_util { "snooping" } else { "directory" },
            );
        }
        println!();
        println!(
            "max ring utilisation observed: {:.1}% (paper: never surpasses 50%); snooping wins everywhere: {}",
            100.0 * max_util,
            snoop_always_wins
        );
        ctx.write_json("wide_ring", &rows);
        ctx.artifacts()
    }
}
