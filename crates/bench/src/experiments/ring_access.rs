//! Settling paper §2's open question: slotted versus register-insertion
//! ring access control, under one workload shape and identical message
//! sizes. The paper *chose* the slotted ring on simplicity grounds and
//! conjectured the performance trade-off; this experiment measures it.

use serde::{Deserialize, Serialize};

use ringsim_core::{AccessNetConfig, InsertionNetSim, SlottedNetSim};
use ringsim_sweep::{Artifact, Experiment, SweepCtx, SweepPoint};
use ringsim_types::Time;

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    think_ns: u64,
    slotted_access_ns: f64,
    insertion_access_ns: f64,
    slotted_latency_ns: f64,
    insertion_latency_ns: f64,
    slotted_util: f64,
    insertion_util: f64,
    insertion_access_max_ns: f64,
}

/// Runs the slotted vs register-insertion comparison across offered load.
pub struct RingAccess;

impl Experiment for RingAccess {
    fn name(&self) -> &'static str {
        "ring_access"
    }

    fn description(&self) -> &'static str {
        "slotted vs register-insertion access control across offered load"
    }

    fn run(&self, ctx: &SweepCtx) -> Vec<Artifact> {
        let nodes = 16;
        let think_times = [4_000u64, 2_000, 1_000, 500, 250, 120, 60];
        let rows = ctx.map(
            &think_times,
            |&think_ns| SweepPoint::new().procs(nodes).detail(format!("think={think_ns}")),
            |pctx, &think_ns| {
                let mut cfg = AccessNetConfig::new(nodes);
                cfg.think_time = Time::from_ns(think_ns);
                // These are open-loop Monte-Carlo simulations: scale the
                // transaction budget from the reference budget (the default
                // 60k refs maps to the historical 300 txns/node) and draw
                // the arrival randomness from the engine's stable per-point
                // seed so results are identical for any --jobs value.
                cfg.txns_per_node = (pctx.refs_per_proc / 200).clamp(50, 400);
                cfg.seed = pctx.seed;
                let s = SlottedNetSim::new(cfg).expect("valid").run();
                let r = InsertionNetSim::new(cfg).expect("valid").run();
                Row {
                    think_ns,
                    slotted_access_ns: s.access_delay.mean(),
                    insertion_access_ns: r.access_delay.mean(),
                    slotted_latency_ns: s.latency.mean(),
                    insertion_latency_ns: r.latency.mean(),
                    slotted_util: s.util,
                    insertion_util: r.util,
                    insertion_access_max_ns: r.access_delay.max().unwrap_or(0.0),
                }
            },
        );
        println!("Paper §2: slotted vs register-insertion access control ({nodes} nodes, 500 MHz)");
        println!("{:-<102}", "");
        println!(
            "{:>8} | {:>12} {:>12} | {:>11} {:>11} | {:>8} {:>8} | {:>12}",
            "think ns",
            "slot access",
            "ins access",
            "slot lat",
            "ins lat",
            "slotU%",
            "insU%",
            "ins acc max"
        );
        for row in &rows {
            println!(
                "{:>8} | {:>10.1}ns {:>10.1}ns | {:>9.0}ns {:>9.0}ns | {:>8.1} {:>8.1} | {:>10.0}ns",
                row.think_ns,
                row.slotted_access_ns,
                row.insertion_access_ns,
                row.slotted_latency_ns,
                row.insertion_latency_ns,
                100.0 * row.slotted_util,
                100.0 * row.insertion_util,
                row.insertion_access_max_ns,
            );
        }
        println!();
        println!("paper §2's conjecture, measured: register insertion wins access time at light");
        println!("load (no slot alignment wait); its access delay grows and spreads under load");
        println!("(bypass-FIFO drains depend on upstream activity), while the slotted ring's");
        println!("access wait stays bounded by the frame discipline.");
        ctx.write_json("ring_access", &rows);
        ctx.artifacts()
    }
}
