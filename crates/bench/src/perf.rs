//! Macro-benchmark harness behind the committed `BENCH_*.json` baselines.
//!
//! Each scenario times a **full** simulator run — build from a [`SimSpec`],
//! run to completion through the [`Simulator`] trait — for every registered
//! backend at 16 and 64 processors, on the deterministic demo workload at a
//! fixed per-processor reference budget. Medians over a handful of samples
//! go into grouped baseline files at the repository root:
//!
//! * `BENCH_ring.json` — `ring500`, `ring250`
//! * `BENCH_bus.json` — `bus50`, `bus100`
//! * `BENCH_proto.json` — `bus50-mesi`, `bus50-dragon`
//! * `BENCH_sci.json` — `sci500`, `sci250`
//! * `BENCH_hier.json` — `hier`
//! * `BENCH_topo.json` — `hier3`, `hier-deflect`, and the flat / two-level
//!   topology overrides of `hier` at 64 processors (the topology-sweep
//!   comparison at equal node counts)
//!
//! Entries carry the median wall time per run, derived simulated-cycles/sec
//! and references/sec throughput, and a fingerprint of the exact
//! configuration measured, so the CI `bench` job can detect both schema
//! drift and (on comparable hardware) wall-clock regressions. Regenerate
//! with `cargo run --release -p ringsim-bench --bin perf` (see `--help`).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use ringsim_core::{HierTopology, RunOptions, SimKind, SimReport, SimSpec, Simulator};
use ringsim_trace::{Workload, WorkloadSpec};
use ringsim_types::Time;

/// Schema tag stamped into (and required of) every baseline file.
pub const BENCH_SCHEMA: &str = "ringsim/bench-baseline/v1";

/// Per-processor reference budget every scenario runs (fixed so committed
/// medians stay comparable across regenerations).
pub const REFS_PER_PROC: u64 = 4_000;

/// Processor counts each backend is measured at.
pub const PROC_POINTS: [usize; 2] = [16, 64];

/// One benchmarked configuration: a backend at a processor count,
/// optionally pinned to an explicit hierarchy topology.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Backend under measurement.
    pub kind: SimKind,
    /// Processor count.
    pub procs: usize,
    /// Per-processor data-reference budget.
    pub refs_per_proc: u64,
    /// Topology override for the hierarchical backends (`None` keeps the
    /// backend's default depth; meaningless for non-hier kinds).
    pub topo: Option<HierTopology>,
}

impl Scenario {
    /// Stable scenario name, e.g. `ring500-64p` — or `hier-flat-64p` when a
    /// topology override is pinned.
    #[must_use]
    pub fn name(&self) -> String {
        match self.topo {
            Some(t) => format!("{}-{}-{}p", self.kind.name(), t.name(), self.procs),
            None => format!("{}-{}p", self.kind.name(), self.procs),
        }
    }

    /// The interconnect clock period the backend's slot pipeline (or bus
    /// arbiter) steps at — the denominator for cycles/sec.
    #[must_use]
    pub fn clock_period(&self) -> Time {
        match self.kind {
            SimKind::Ring500
            | SimKind::Sci500
            | SimKind::Hier
            | SimKind::Hier3
            | SimKind::HierDeflect => Time::from_ns(2),
            SimKind::Ring250 | SimKind::Sci250 => Time::from_ns(4),
            SimKind::Bus50 | SimKind::Bus50Mesi | SimKind::Bus50Dragon => Time::from_ns(20),
            SimKind::Bus100 => Time::from_ns(10),
        }
    }

    /// The baseline group (and thus `BENCH_*.json` file) this scenario
    /// belongs to: topology-override scenarios land in `topo` regardless of
    /// backend, everything else groups by backend.
    #[must_use]
    pub fn group(&self) -> &'static str {
        if self.topo.is_some() {
            "topo"
        } else {
            group_of(self.kind)
        }
    }

    /// Fingerprint of everything that shapes this scenario's runtime: the
    /// backend, topology, workload identity and budget, and the schema
    /// version. Committed baselines are only comparable to a fresh
    /// measurement when the fingerprints match. (The `|topology=` suffix is
    /// only appended when an override is pinned, so fingerprints of the
    /// pre-existing matrix are unchanged.)
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut canon = format!(
            "{schema}|{kind}|procs={procs}|refs={refs}|workload=demo|protocol=snooping|proc_cycle_ps=20000",
            schema = BENCH_SCHEMA,
            kind = self.kind.name(),
            procs = self.procs,
            refs = self.refs_per_proc,
        );
        if let Some(t) = self.topo {
            let _ = write!(canon, "|topology={}", t.name());
        }
        format!("{:016x}", fnv1a(canon.as_bytes()))
    }

    /// Builds the simulator for this scenario.
    ///
    /// # Panics
    ///
    /// Panics when the scenario is not buildable (a registry bug — every
    /// shipped scenario uses composite processor counts).
    #[must_use]
    pub fn build(&self) -> Box<dyn Simulator> {
        let workload = Workload::new(WorkloadSpec::demo(self.procs).with_refs(self.refs_per_proc))
            .expect("demo workload");
        let mut spec = SimSpec::new(workload);
        if let Some(t) = self.topo {
            spec = spec.with_topology(t);
        }
        self.kind.build(&spec).unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }

    /// Builds and runs the scenario once, returning the report and the
    /// wall-clock nanoseconds the run (not the build) took.
    #[must_use]
    pub fn run_once(&self) -> (SimReport, u64) {
        let mut sim = self.build();
        let start = Instant::now();
        let outcome = sim.run(&RunOptions::default());
        let elapsed = start.elapsed();
        (outcome.report, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
    }
}

/// The full committed matrix: every backend at every processor point, plus
/// the `topo` group's flat and two-level overrides of `hier` at 64
/// processors (so `BENCH_topo.json` records all four topologies — flat,
/// two-level, three-level, deflection — at equal node counts).
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for kind in SimKind::ALL {
        for procs in PROC_POINTS {
            out.push(Scenario { kind, procs, refs_per_proc: REFS_PER_PROC, topo: None });
        }
    }
    for topo in [HierTopology::Flat, HierTopology::TwoLevel] {
        out.push(Scenario {
            kind: SimKind::Hier,
            procs: 64,
            refs_per_proc: REFS_PER_PROC,
            topo: Some(topo),
        });
    }
    out
}

/// One measured scenario: the median of `samples` timed runs (after one
/// untimed warm-up) plus the report of the last run for derived throughput.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// What was measured.
    pub scenario: Scenario,
    /// Median wall-clock nanoseconds per full run.
    pub median_ns: u64,
    /// Simulated interconnect cycles one run covers.
    pub sim_cycles: u64,
}

/// Times `scenario` over `samples` runs (one extra warm-up run is
/// discarded) and returns the median.
#[must_use]
pub fn measure(scenario: &Scenario, samples: usize) -> Measurement {
    let (report, _) = scenario.run_once(); // warm-up
    let sim_cycles = report.sim_end.cycles(scenario.clock_period());
    let mut times: Vec<u64> = (0..samples.max(1)).map(|_| scenario.run_once().1).collect();
    times.sort_unstable();
    Measurement { scenario: *scenario, median_ns: times[times.len() / 2], sim_cycles }
}

/// One entry of a committed baseline file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Scenario name (`<network>-<procs>p`).
    pub name: String,
    /// Backend name.
    pub network: String,
    /// Processor count.
    pub procs: usize,
    /// Per-processor reference budget.
    pub refs_per_proc: u64,
    /// Configuration fingerprint (see [`Scenario::fingerprint`]).
    pub config_fingerprint: String,
    /// Median wall-clock nanoseconds for one full run.
    pub median_ns_per_run: u64,
    /// Simulated interconnect cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Data references retired per wall-clock second.
    pub refs_per_sec: f64,
    /// Median of the pre-optimization build this entry was compared
    /// against when the baseline was recorded (`null` on first capture).
    pub baseline_median_ns_per_run: Option<u64>,
    /// `baseline_median_ns_per_run / median_ns_per_run` (`null` on first
    /// capture).
    pub speedup_vs_baseline: Option<f64>,
}

/// A committed `BENCH_*.json` file: schema tag plus one entry per scenario
/// in the group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Must equal [`BENCH_SCHEMA`].
    pub schema: String,
    /// Group name (one of [`GROUPS`]).
    pub group: String,
    /// Measured entries, in registry order.
    pub entries: Vec<BenchEntry>,
}

/// The baseline group (and thus file) a backend belongs to. The bus
/// protocol variants, the SCI backends, and the topology variants form
/// their own groups so the baselines captured before they existed stay
/// comparable file-for-file. Scenarios with a topology override land in
/// `topo` regardless of backend — see [`Scenario::group`].
#[must_use]
pub fn group_of(kind: SimKind) -> &'static str {
    match kind {
        SimKind::Ring500 | SimKind::Ring250 => "ring",
        SimKind::Bus50 | SimKind::Bus100 => "bus",
        SimKind::Bus50Mesi | SimKind::Bus50Dragon => "proto",
        SimKind::Sci500 | SimKind::Sci250 => "sci",
        SimKind::Hier => "hier",
        SimKind::Hier3 | SimKind::HierDeflect => "topo",
    }
}

/// The group names, in file order.
pub const GROUPS: [&str; 6] = ["ring", "bus", "proto", "sci", "hier", "topo"];

/// File name for a group's baseline (`BENCH_<group>.json`).
#[must_use]
pub fn file_name(group: &str) -> String {
    format!("BENCH_{group}.json")
}

fn entry_for(m: &Measurement, baselines: &HashMap<String, u64>) -> BenchEntry {
    let s = &m.scenario;
    let secs = m.median_ns as f64 / 1e9;
    let total_refs = (s.procs as u64) * s.refs_per_proc;
    let baseline = baselines.get(&s.name()).copied();
    BenchEntry {
        name: s.name(),
        network: s.kind.name().to_owned(),
        procs: s.procs,
        refs_per_proc: s.refs_per_proc,
        config_fingerprint: s.fingerprint(),
        median_ns_per_run: m.median_ns,
        cycles_per_sec: m.sim_cycles as f64 / secs,
        refs_per_sec: total_refs as f64 / secs,
        baseline_median_ns_per_run: baseline,
        speedup_vs_baseline: baseline.map(|b| b as f64 / m.median_ns as f64),
    }
}

/// Assembles the grouped baseline files from `measurements`.
/// `baselines` maps scenario names to the pre-optimization medians to
/// record alongside (empty on first capture).
#[must_use]
pub fn assemble(measurements: &[Measurement], baselines: &HashMap<String, u64>) -> Vec<BenchFile> {
    GROUPS
        .iter()
        .map(|group| BenchFile {
            schema: BENCH_SCHEMA.to_owned(),
            group: (*group).to_owned(),
            entries: measurements
                .iter()
                .filter(|m| m.scenario.group() == *group)
                .map(|m| entry_for(m, baselines))
                .collect(),
        })
        .collect()
}

/// Writes the grouped baseline files into `dir`.
///
/// # Errors
///
/// Returns the write error message on I/O failure.
pub fn write_files(dir: &Path, files: &[BenchFile]) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for file in files {
        let path = dir.join(file_name(&file.group));
        let json = serde_json::to_string_pretty(file).map_err(|e| format!("serialising: {e}"))?;
        fs::write(&path, json + "\n").map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Reads the medians out of previously emitted baseline files in `dir`,
/// keyed by scenario name. Missing files are simply skipped; a present but
/// malformed file is an error.
///
/// # Errors
///
/// Returns a description of the first malformed file.
pub fn read_medians(dir: &Path) -> Result<HashMap<String, u64>, String> {
    let mut out = HashMap::new();
    for group in GROUPS {
        let path = dir.join(file_name(group));
        if !path.exists() {
            continue;
        }
        let file = load_file(&path)?;
        for e in file.entries {
            out.insert(e.name, e.median_ns_per_run);
        }
    }
    Ok(out)
}

/// Loads and schema-validates one baseline file.
///
/// # Errors
///
/// Returns a description of what is malformed: unreadable/unparsable JSON,
/// a schema-tag mismatch, an empty or wrong-group entry list, fingerprints
/// that no longer match the current scenario matrix, or non-positive
/// measurements.
pub fn load_file(path: &Path) -> Result<BenchFile, String> {
    let raw = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let file: BenchFile = serde_json::from_str(&raw)
        .map_err(|e| format!("{}: not a bench baseline ({e})", path.display()))?;
    validate(&file).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(file)
}

/// Validates one baseline file against the current scenario matrix.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate(file: &BenchFile) -> Result<(), String> {
    if file.schema != BENCH_SCHEMA {
        return Err(format!("schema `{}` (expected `{BENCH_SCHEMA}`)", file.schema));
    }
    if !GROUPS.contains(&file.group.as_str()) {
        return Err(format!("unknown group `{}`", file.group));
    }
    let expected: Vec<Scenario> =
        scenarios().into_iter().filter(|s| s.group() == file.group).collect();
    if file.entries.len() != expected.len() {
        return Err(format!(
            "group `{}` has {} entries (expected {})",
            file.group,
            file.entries.len(),
            expected.len()
        ));
    }
    for (entry, scen) in file.entries.iter().zip(&expected) {
        if entry.name != scen.name() {
            return Err(format!(
                "entry `{}` out of order (expected `{}`)",
                entry.name,
                scen.name()
            ));
        }
        if entry.config_fingerprint != scen.fingerprint() {
            return Err(format!(
                "entry `{}`: stale config fingerprint {} (scenario is now {}) — regenerate with \
                 `cargo run --release -p ringsim-bench --bin perf`",
                entry.name,
                entry.config_fingerprint,
                scen.fingerprint()
            ));
        }
        if entry.median_ns_per_run == 0 || entry.cycles_per_sec <= 0.0 || entry.refs_per_sec <= 0.0
        {
            return Err(format!("entry `{}`: non-positive measurement", entry.name));
        }
    }
    Ok(())
}

/// Compares fresh measurements against a committed baseline file: any
/// scenario slower than `committed * (1 + max_regress)` is a regression.
///
/// # Errors
///
/// Returns a report listing every regressed scenario.
pub fn regression_check(
    committed: &BenchFile,
    fresh: &[Measurement],
    max_regress: f64,
) -> Result<(), String> {
    let mut failures = String::new();
    for entry in &committed.entries {
        let Some(m) = fresh.iter().find(|m| m.scenario.name() == entry.name) else {
            continue;
        };
        let limit = entry.median_ns_per_run as f64 * (1.0 + max_regress);
        if m.median_ns as f64 > limit {
            let _ = writeln!(
                failures,
                "  {}: {} ns/run vs committed {} ns/run (> {:.0}% over)",
                entry.name,
                m.median_ns,
                entry.median_ns_per_run,
                max_regress * 100.0
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf regressions vs committed baseline:\n{failures}"))
    }
}

/// Canonical digest of a report: FNV-1a over its JSON serialisation.
/// Two runs produce the same digest exactly when their reports are
/// byte-identical after serialisation — the contract the committed
/// golden digests (and the optimization work behind them) are gated on.
///
/// # Panics
///
/// Panics when the report fails to serialise (a serde stand-in bug).
#[must_use]
pub fn report_digest(report: &SimReport) -> String {
    let json = serde_json::to_string(report).expect("report serialises");
    format!("{:016x}", fnv1a(json.as_bytes()))
}

/// 64-bit FNV-1a over `bytes` — same hash the sweep cache keys use, good
/// enough to detect config drift.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_backend_at_both_points() {
        let all = scenarios();
        // Every backend at both points, plus the two 64-processor topology
        // overrides of `hier` in the `topo` group.
        assert_eq!(all.len(), SimKind::ALL.len() * PROC_POINTS.len() + 2);
        for kind in SimKind::ALL {
            for procs in PROC_POINTS {
                assert!(all.iter().any(|s| s.kind == kind && s.procs == procs && s.topo.is_none()));
            }
        }
        let topo: Vec<String> =
            all.iter().filter(|s| s.group() == "topo").map(Scenario::name).collect();
        assert_eq!(
            topo,
            [
                "hier3-16p",
                "hier3-64p",
                "hier-deflect-16p",
                "hier-deflect-64p",
                "hier-flat-64p",
                "hier-2level-64p",
            ]
        );
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let all = scenarios();
        for s in &all {
            assert_eq!(s.fingerprint(), s.fingerprint());
        }
        let mut prints: Vec<String> = all.iter().map(Scenario::fingerprint).collect();
        prints.sort();
        prints.dedup();
        assert_eq!(prints.len(), all.len(), "fingerprint collision");
    }

    #[test]
    fn assemble_round_trips_through_json() {
        let s =
            Scenario { kind: SimKind::Bus50, procs: 16, refs_per_proc: REFS_PER_PROC, topo: None };
        let m = Measurement { scenario: s, median_ns: 1_000_000, sim_cycles: 50_000 };
        let mut baselines = HashMap::new();
        baselines.insert(s.name(), 2_000_000_u64);
        let files = assemble(&[m], &baselines);
        assert_eq!(files.len(), GROUPS.len());
        let bus = files.iter().find(|f| f.group == "bus").unwrap();
        assert_eq!(bus.entries.len(), 1);
        let entry = &bus.entries[0];
        assert_eq!(entry.baseline_median_ns_per_run, Some(2_000_000));
        assert!((entry.speedup_vs_baseline.unwrap() - 2.0).abs() < 1e-12);
        let json = serde_json::to_string_pretty(bus).expect("serialise");
        let back: BenchFile = serde_json::from_str(&json).expect("parse");
        assert_eq!(&back, bus);
    }

    #[test]
    fn validate_rejects_drift() {
        let measurements: Vec<Measurement> = scenarios()
            .iter()
            .map(|s| Measurement { scenario: *s, median_ns: 1_000, sim_cycles: 10 })
            .collect();
        let files = assemble(&measurements, &HashMap::new());
        for f in &files {
            validate(f).expect("fresh files validate");
        }
        let mut bad = files[0].clone();
        bad.schema = "something/else".into();
        assert!(validate(&bad).is_err());
        let mut bad = files[0].clone();
        bad.entries[0].config_fingerprint = "0".repeat(16);
        assert!(validate(&bad).unwrap_err().contains("stale config fingerprint"));
        let mut bad = files[0].clone();
        bad.entries.pop();
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn regression_check_flags_slowdowns() {
        let measurements: Vec<Measurement> = scenarios()
            .iter()
            .map(|s| Measurement { scenario: *s, median_ns: 1_000, sim_cycles: 10 })
            .collect();
        let committed = assemble(&measurements, &HashMap::new());
        let slow: Vec<Measurement> =
            measurements.iter().map(|m| Measurement { median_ns: 2_000, ..m.clone() }).collect();
        assert!(regression_check(&committed[0], &measurements, 0.25).is_ok());
        let err = regression_check(&committed[0], &slow, 0.25).unwrap_err();
        assert!(err.contains("regressions"), "{err}");
    }
}
