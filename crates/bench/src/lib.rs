//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper.
//!
//! Each experiment implements [`ringsim_sweep::Experiment`] and is listed
//! in [`experiments::ALL`]; it prints a formatted text table to stdout and
//! writes the same data as JSON (plus `.dat` series for the figures) into
//! `results/`, with a `<name>.meta.json` wall-time twin. Run one with
//! `cargo run --release -p ringsim-bench --bin <name> [-- --jobs N]`; the
//! `all` binary drives the whole registry (`--list`, `--only a,b`,
//! `--jobs N`). Artifacts are byte-identical for any `--jobs` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod loadtest;
pub mod perf;

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use ringsim_analytic::ModelInput;
use ringsim_trace::{characterize, Benchmark, Characteristics};
use ringsim_types::ConfigError;

/// Paper-reported values from Table 2 (used to report calibration deltas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperTable2Row {
    /// Benchmark.
    pub bench: String,
    /// Processors.
    pub procs: usize,
    /// Total miss rate (fraction).
    pub total_miss_rate: f64,
    /// Shared-data miss rate (fraction).
    pub shared_miss_rate: f64,
    /// Fraction of data references that touch shared data.
    pub shared_frac: f64,
    /// Write fraction among shared references.
    pub shared_write_frac: f64,
    /// Write fraction among private references.
    pub private_write_frac: f64,
}

/// The twelve rows of the paper's Table 2 (rates as fractions).
#[must_use]
pub fn paper_table2() -> Vec<PaperTable2Row> {
    #[allow(clippy::too_many_arguments)] // mirrors the paper's column layout
    fn row(
        bench: &'static str,
        procs: usize,
        private_m: f64,
        pw: f64,
        shared_m: f64,
        sw: f64,
        tmr: f64,
        smr: f64,
    ) -> PaperTable2Row {
        PaperTable2Row {
            bench: bench.to_owned(),
            procs,
            total_miss_rate: tmr,
            shared_miss_rate: smr,
            shared_frac: shared_m / (private_m + shared_m),
            shared_write_frac: sw,
            private_write_frac: pw,
        }
    }
    vec![
        row("mp3d", 8, 2.48, 0.22, 1.27, 0.33, 0.0329, 0.0944),
        row("mp3d", 16, 2.50, 0.22, 1.43, 0.30, 0.0454, 0.1217),
        row("mp3d", 32, 2.51, 0.22, 2.08, 0.21, 0.1655, 0.3574),
        row("water", 8, 9.54, 0.18, 1.50, 0.07, 0.0021, 0.0138),
        row("water", 16, 9.55, 0.18, 1.81, 0.06, 0.0032, 0.0182),
        row("water", 32, 9.56, 0.18, 2.03, 0.06, 0.0073, 0.0382),
        row("cholesky", 8, 5.29, 0.21, 1.62, 0.14, 0.0288, 0.1061),
        row("cholesky", 16, 6.27, 0.20, 2.55, 0.09, 0.0612, 0.1896),
        row("cholesky", 32, 8.21, 0.18, 5.33, 0.05, 0.1947, 0.4671),
        row("fft", 64, 3.28, 0.27, 1.03, 0.50, 0.0685, 0.2612),
        row("weather", 64, 13.11, 0.16, 2.52, 0.19, 0.0525, 0.3078),
        row("simple", 64, 9.94, 0.35, 4.07, 0.11, 0.1597, 0.5416),
    ]
}

/// Directory where experiment outputs are written (`results/` relative to
/// the working directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `value` as pretty JSON into `results/<name>.json`.
///
/// Legacy helper: experiments now write through
/// [`ringsim_sweep::SweepCtx::write_json`], which also records the artifact
/// and honours `--out`; this remains for ad-hoc scripts.
///
/// # Panics
///
/// Panics if serialisation or the write fails (experiment binaries want a
/// loud failure).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialisable result");
    fs::write(&path, data).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Characterises a paper benchmark at a reference-count budget suitable for
/// experiment runs and returns the characteristics plus the derived model
/// input.
///
/// # Errors
///
/// Returns a [`ConfigError`] for invalid benchmark/size combinations.
pub fn benchmark_input(
    bench: Benchmark,
    procs: usize,
    refs_per_proc: u64,
) -> Result<(Characteristics, ModelInput), ConfigError> {
    let spec = bench.spec(procs)?.with_refs(refs_per_proc);
    let ch = characterize(&spec)?;
    let input = ModelInput::from_characteristics(&ch);
    Ok((ch, input))
}

/// Default per-processor reference budget for experiment binaries (release
/// builds).
pub const EXPERIMENT_REFS: u64 = 60_000;

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:5.1}", 100.0 * x)
}

/// Writes a gnuplot-ready data file into `results/<name>.dat`: a commented
/// header line followed by whitespace-separated columns.
///
/// Legacy helper: experiments now write through
/// [`ringsim_sweep::SweepCtx::write_dat`]; this remains for ad-hoc scripts.
///
/// # Panics
///
/// Panics if the write fails.
pub fn write_dat(name: &str, header: &str, rows: &[Vec<f64>]) {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 2);
    out.push_str("# ");
    out.push_str(header);
    out.push('\n');
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v:.6}");
        }
        out.push('\n');
    }
    let path = results_dir().join(format!("{name}.dat"));
    fs::write(&path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_has_twelve_rows() {
        let rows = paper_table2();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.total_miss_rate > 0.0 && r.total_miss_rate < 1.0);
            assert!(r.shared_frac > 0.0 && r.shared_frac < 1.0);
        }
    }

    #[test]
    fn benchmark_input_works_on_small_budget() {
        let (ch, input) = benchmark_input(Benchmark::Mp3d, 8, 3_000).unwrap();
        assert_eq!(ch.procs, 8);
        assert!(input.freqs.miss_total() > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), " 12.3");
    }
}
