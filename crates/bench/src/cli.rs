//! Shared command-line driver for the experiment binaries.
//!
//! Every per-experiment binary and the `all` driver accept the same flags:
//!
//! ```text
//! --jobs <n>      worker threads per experiment; 0 auto-detects the
//!                 available cores (the default)
//! --refs <n>      references per processor (default: 60000; bare number works too)
//! --out <dir>     output directory (default: results/)
//! --list          list experiments and exit            (all only)
//! --only <a,b>    run a comma-separated subset         (all only)
//! --metrics <p>   fold every run's latency histograms and timelines into one JSON file
//! --no-cache      recompute every point, ignoring cached results
//! --cache-stats   print per-experiment cache hit/miss counts
//! ```
//!
//! Artifacts are byte-identical for any `--jobs` value; the wall-time
//! metrics land in `<out>/<name>.meta.json` twins instead. Point results
//! are cached under `<out>/.cache/` keyed by everything they depend on, so
//! a warm re-run re-executes zero points (see `ringsim-sweep`). `--metrics`
//! and `--sanitize` force the cache off: both need every point to actually
//! run.

use std::process::ExitCode;

use ringsim_sweep::{default_jobs, run_experiment, Experiment, SweepConfig};

use crate::experiments;
use crate::EXPERIMENT_REFS;

const HELP: &str = "\
USAGE:
  <experiment> [OPTIONS] [REFS]

OPTIONS:
  --jobs, -j N    worker threads per experiment; 0 auto-detects the
                  available cores (the default)
  --refs N        references per processor (a bare number works too)
  --out DIR       output directory (default: results/)
  --list          list experiments and exit            (all only)
  --only a,b      run a comma-separated subset         (all only)
  --metrics PATH  fold every run's latency histograms and timelines
                  into one JSON file (disables the point cache)
  --sanitize      run the coherence sanitizer on every point
  --no-cache      recompute every point, ignoring cached results
  --cache-stats   print per-experiment cache hit/miss counts
  --help, -h      this text
";

/// Parsed experiment-driver options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads per experiment.
    pub jobs: usize,
    /// References per processor.
    pub refs: u64,
    /// Output directory.
    pub out_dir: String,
    /// List experiments instead of running them.
    pub list: bool,
    /// Restrict to these experiment names (empty = all).
    pub only: Vec<String>,
    /// Force the runtime coherence sanitizer on (release builds included).
    pub sanitize: bool,
    /// Write merged per-class latency histograms here (off when `None`).
    pub metrics: Option<String>,
    /// Ignore cached point results and recompute everything.
    pub no_cache: bool,
    /// Print cache hit/miss counts after each experiment.
    pub cache_stats: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            jobs: default_jobs(),
            refs: EXPERIMENT_REFS,
            out_dir: "results".to_owned(),
            list: false,
            only: Vec::new(),
            sanitize: false,
            metrics: None,
            no_cache: false,
            cache_stats: false,
        }
    }
}

/// Parses driver flags from `std::env::args` form (without the program
/// name). A bare number is accepted as the reference budget for backwards
/// compatibility with the original positional argument.
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n = v.parse::<usize>().map_err(|_| format!("bad --jobs `{v}`"))?;
                // 0 = auto-detect, matching the flag's documented default.
                opts.jobs = if n == 0 { default_jobs() } else { n };
            }
            "--refs" => {
                let v = it.next().ok_or("--refs needs a value")?;
                opts.refs = v.parse().map_err(|_| format!("bad --refs `{v}`"))?;
            }
            "--out" => {
                opts.out_dir = it.next().ok_or("--out needs a value")?.clone();
            }
            "--list" => opts.list = true,
            "--sanitize" => opts.sanitize = true,
            "--no-cache" => opts.no_cache = true,
            "--cache-stats" => opts.cache_stats = true,
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a value")?.clone());
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a value")?;
                opts.only.extend(v.split(',').map(str::to_owned));
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => {
                // Backwards compatibility: a bare number is a refs budget.
                if let Ok(refs) = other.parse::<u64>() {
                    opts.refs = refs;
                } else {
                    return Err(format!(
                        "unknown argument `{other}` (try --jobs N, --refs N, --out DIR, --list, --only a,b, --sanitize, --metrics PATH, --no-cache, --cache-stats)"
                    ));
                }
            }
        }
    }
    if opts.refs == 0 {
        return Err("--refs must be non-zero (the workloads reject empty reference budgets)".into());
    }
    Ok(opts)
}

/// Whether point caching is effective for this invocation: `--no-cache`
/// turns it off explicitly, and `--metrics` / `--sanitize` imply it (cache
/// hits skip the work closure, so the metrics sinks and the sanitizer would
/// see nothing on a warm run).
fn cache_enabled(opts: &Options) -> bool {
    !opts.no_cache && opts.metrics.is_none() && !opts.sanitize
}

fn sweep_config(opts: &Options) -> SweepConfig {
    SweepConfig::new(opts.refs).jobs(opts.jobs).out_dir(&opts.out_dir).cache(cache_enabled(opts))
}

/// Explains an implied `--no-cache` once per invocation.
fn note_cache_implication(opts: &Options) {
    if !opts.no_cache && !cache_enabled(opts) {
        eprintln!(
            "note: point cache disabled ({} needs every point to run)",
            if opts.metrics.is_some() { "--metrics" } else { "--sanitize" }
        );
    }
}

/// Drains the process-wide metrics sink into `opts.metrics` (no-op when the
/// flag was not given). Returns `false` when the write failed.
fn write_metrics(opts: &Options) -> bool {
    let Some(path) = &opts.metrics else { return true };
    let summary = ringsim_obs::take_global_metrics().unwrap_or_default();
    let runs = summary.runs;
    let file =
        ringsim_obs::MetricsFile { summary, timelines: ringsim_obs::take_global_timelines() };
    match std::fs::write(path, file.to_json()) {
        Ok(()) => {
            eprintln!("metrics: {runs} run(s) folded into {path}");
            true
        }
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            false
        }
    }
}

/// Entry point for a single-experiment binary: parses args, runs the named
/// experiment, prints the throughput summary.
#[must_use]
pub fn run_single(name: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.sanitize {
        ringsim_core::set_sanitize_mode(ringsim_core::SanitizeMode::On);
    }
    if opts.metrics.is_some() {
        ringsim_obs::set_global_metrics(true);
    }
    let Some(exp) = experiments::find(name) else {
        eprintln!("error: unknown experiment `{name}`");
        return ExitCode::FAILURE;
    };
    note_cache_implication(&opts);
    run_one(exp, &opts);
    if write_metrics(&opts) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_one(exp: &'static dyn Experiment, opts: &Options) {
    let report = run_experiment(exp, &sweep_config(opts));
    eprintln!(
        "{}: {} points in {:.0} ms on {} thread{} ({:.1} points/s), meta in {}/{}.meta.json",
        exp.name(),
        report.meta.points,
        report.meta.total_wall_ms,
        opts.jobs,
        if opts.jobs == 1 { "" } else { "s" },
        report.meta.points_per_sec,
        opts.out_dir,
        exp.name(),
    );
    if opts.cache_stats {
        println!(
            "{}: cache: {} hit(s), {} miss(es)",
            exp.name(),
            report.meta.cache_hits,
            report.meta.cache_misses
        );
    }
}

/// Entry point for the `all` driver: `--list`, `--only`, and the shared
/// flags.
#[must_use]
pub fn run_all() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_with(&args)
}

/// Driver body shared by the `all` binary and the `ringsim experiments`
/// subcommand: parses `args` (already stripped of the program/subcommand
/// name) and runs the selection.
#[must_use]
pub fn run_with(args: &[String]) -> ExitCode {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.sanitize {
        ringsim_core::set_sanitize_mode(ringsim_core::SanitizeMode::On);
    }
    if opts.metrics.is_some() {
        ringsim_obs::set_global_metrics(true);
    }
    if opts.list {
        println!("{:<12}  description", "experiment");
        for e in experiments::ALL {
            println!("{:<12}  {}", e.name(), e.description());
        }
        return ExitCode::SUCCESS;
    }
    note_cache_implication(&opts);
    let selected: Vec<&'static dyn Experiment> = if opts.only.is_empty() {
        experiments::ALL.to_vec()
    } else {
        let mut sel = Vec::new();
        for name in &opts.only {
            match experiments::find(name) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("error: unknown experiment `{name}` (see --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };
    for (i, exp) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        run_one(*exp, &opts);
    }
    if write_metrics(&opts) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = parse(&args(&[])).unwrap();
        assert_eq!(o.refs, EXPERIMENT_REFS);
        assert!(!o.list);
        let o =
            parse(&args(&["--jobs", "4", "--refs", "1000", "--out", "tmp", "--only", "fig3,fig4"]))
                .unwrap();
        assert_eq!((o.jobs, o.refs, o.out_dir.as_str()), (4, 1000, "tmp"));
        assert_eq!(o.only, vec!["fig3", "fig4"]);
    }

    #[test]
    fn parse_accepts_bare_refs_for_backwards_compat() {
        assert_eq!(parse(&args(&["30000"])).unwrap().refs, 30_000);
    }

    #[test]
    fn jobs_zero_auto_detects() {
        let o = parse(&args(&["--jobs", "0"])).unwrap();
        assert_eq!(o.jobs, default_jobs());
        assert!(o.jobs >= 1);
    }

    #[test]
    fn parse_cache_flags() {
        let o = parse(&args(&[])).unwrap();
        assert!(!o.no_cache && !o.cache_stats && cache_enabled(&o));
        let o = parse(&args(&["--no-cache", "--cache-stats"])).unwrap();
        assert!(o.no_cache && o.cache_stats && !cache_enabled(&o));
        // Metrics and the sanitizer need every point to run.
        assert!(!cache_enabled(&parse(&args(&["--metrics", "m.json"])).unwrap()));
        assert!(!cache_enabled(&parse(&args(&["--sanitize"])).unwrap()));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(parse(&args(&["--bogus"])).is_err());
        assert!(parse(&args(&["--jobs"])).is_err());
        assert!(parse(&args(&["--jobs", "x"])).is_err());
        assert!(parse(&args(&["--refs", "0"])).is_err());
        assert!(parse(&args(&["0"])).is_err());
    }
}
