//! Load-test harness for the `ringsim serve` HTTP service.
//!
//! Drives many concurrent clients against a running service with a mixed
//! workload — submissions (including a deliberate dedupe storm where every
//! client posts the identical body), status polls, live SSE streams with
//! mid-stream disconnects, artifact fetches, and metrics scrapes — and
//! reports per-operation latency histograms plus error counts.
//!
//! The harness is its own minimal blocking HTTP/1.1 client over std
//! `TcpStream` (the workspace is offline; and the service speaks
//! one-request-per-connection `Connection: close`, which makes a correct
//! client tiny: write the request, read to EOF). It lives in
//! `ringsim-bench` rather than `ringsim-serve` because serve depends on
//! bench for the experiment registry — the dependency only works this way
//! around — and because a load generator that shares zero code with the
//! server it tests is a feature, not an accident.
//!
//! CI gates on the [`Report`]: any 5xx response, any dropped (I/O-failed)
//! connection, or a p99 above a generous bound fails the job. 429
//! (queue-full backpressure) and 404 (artifact not yet written) are
//! expected under load and tracked separately, not failures.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ringsim_obs::LatencyHistogram;
use serde::Serialize;

/// What one load-test run should do.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Service address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Mixed-workload operations per client (after the storm phase).
    pub requests_per_client: usize,
    /// Identical submissions per client in the opening dedupe storm.
    pub storm_submits: usize,
    /// Experiment names the mixed phase samples from.
    pub experiments: Vec<String>,
    /// Per-processor reference budget sent with every submission (keep it
    /// tiny — the harness measures the service, not the simulator).
    pub refs: u64,
    /// Per-connection read/write timeout.
    pub timeout: Duration,
    /// Bytes after which a stream client deliberately disconnects
    /// mid-stream (exercises the server's disconnect path).
    pub stream_disconnect_bytes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_owned(),
            clients: 50,
            requests_per_client: 20,
            storm_submits: 2,
            experiments: vec!["fig3".to_owned()],
            refs: 50,
            timeout: Duration::from_secs(10),
            stream_disconnect_bytes: 16 * 1024,
        }
    }
}

/// Outcome classes one operation can land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// 2xx/3xx, or a stream that delivered data.
    Ok,
    /// 404 — expected for artifacts that are not written yet.
    NotFound,
    /// 429 — queue-full backpressure (expected under load).
    Backpressure,
    /// Any other 4xx (a harness bug, but not a server failure).
    ClientError,
    /// 5xx — a server failure; the CI gate fails on any of these.
    ServerError,
    /// The connection failed at the transport layer (refused, reset,
    /// timeout); the CI gate fails on any of these.
    Dropped,
}

/// Aggregated results for one operation kind.
#[derive(Debug, Default)]
struct OpStats {
    latency: LatencyHistogram,
    ok: u64,
    not_found: u64,
    backpressure: u64,
    client_errors: u64,
    server_errors: u64,
    dropped: u64,
}

impl OpStats {
    fn record(&mut self, outcome: Outcome, elapsed: Duration) {
        self.latency.record(elapsed.as_secs_f64() * 1e9);
        match outcome {
            Outcome::Ok => self.ok += 1,
            Outcome::NotFound => self.not_found += 1,
            Outcome::Backpressure => self.backpressure += 1,
            Outcome::ClientError => self.client_errors += 1,
            Outcome::ServerError => self.server_errors += 1,
            Outcome::Dropped => self.dropped += 1,
        }
    }
}

/// One operation's row in the final [`Report`].
#[derive(Debug, Clone, Serialize)]
pub struct OpReport {
    /// Operation label (`submit`, `poll`, `stream`, ...).
    pub op: String,
    /// Operations attempted.
    pub count: u64,
    /// 2xx/3xx outcomes.
    pub ok: u64,
    /// 404 outcomes (artifact races; expected).
    pub not_found: u64,
    /// 429 outcomes (backpressure; expected).
    pub backpressure: u64,
    /// Other 4xx outcomes.
    pub client_errors: u64,
    /// 5xx outcomes (gate: must be zero).
    pub server_errors: u64,
    /// Transport failures (gate: must be zero).
    pub dropped: u64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency in milliseconds.
    pub max_ms: f64,
}

/// The whole run's result (serialised to JSON for the CI artifact).
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Client threads that ran.
    pub clients: u64,
    /// Total operations across all clients and phases.
    pub total_ops: u64,
    /// Total 5xx responses (gate: zero).
    pub server_errors: u64,
    /// Total transport failures (gate: zero).
    pub dropped: u64,
    /// Wall time of the whole run in milliseconds.
    pub wall_ms: u64,
    /// Distinct run ids observed in submission acks.
    pub runs_seen: u64,
    /// Per-operation breakdown, sorted by label.
    pub ops: Vec<OpReport>,
}

impl Report {
    /// Applies the CI gates: zero 5xx, zero dropped connections, and every
    /// operation's p99 under `p99_bound`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated gate.
    pub fn gate(&self, p99_bound: Duration) -> Result<(), String> {
        if self.server_errors > 0 {
            return Err(format!("{} server (5xx) errors", self.server_errors));
        }
        if self.dropped > 0 {
            return Err(format!("{} dropped connections", self.dropped));
        }
        let bound_ms = p99_bound.as_secs_f64() * 1e3;
        for op in &self.ops {
            if op.p99_ms > bound_ms {
                return Err(format!(
                    "{} p99 {:.1} ms exceeds the {bound_ms:.0} ms bound",
                    op.op, op.p99_ms
                ));
            }
        }
        Ok(())
    }
}

/// Deterministic per-client pseudo-random stream (splitmix64); the load
/// pattern is reproducible from the client index alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A parsed (enough) HTTP response: status code and body.
struct HttpResponse {
    status: u16,
    body: String,
}

/// One blocking request against the service. The server closes after every
/// response, so the body is simply everything after the header block.
fn request(
    addr: &str,
    timeout: Duration,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut stream = stream;
    let payload = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw `Connection: close` response into status + body, decoding
/// chunked transfer encoding when the server used it.
fn parse_response(raw: &[u8]) -> Option<HttpResponse> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let chunked = head.to_ascii_lowercase().contains("transfer-encoding: chunked");
    let body = if chunked { decode_chunked(body) } else { body.to_owned() };
    Some(HttpResponse { status, body })
}

/// Decodes chunked transfer encoding (tolerantly: a truncated tail — the
/// norm when a stream client disconnected mid-run — keeps what arrived).
fn decode_chunked(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else { break };
        if size == 0 || after.len() < size {
            out.push_str(&after[..size.min(after.len())]);
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn classify(status: u16) -> Outcome {
    match status {
        200..=399 => Outcome::Ok,
        404 => Outcome::NotFound,
        429 => Outcome::Backpressure,
        400..=499 => Outcome::ClientError,
        _ => Outcome::ServerError,
    }
}

/// Pulls the `"id"` out of a submission ack without a full JSON parse.
fn extract_id(body: &str) -> Option<String> {
    let idx = body.find("\"id\"")?;
    let rest = &body[idx + 4..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_owned())
}

/// Shared mutable state the client threads fold results into.
struct Board {
    stats: Mutex<BTreeMap<String, OpStats>>,
    run_ids: Mutex<Vec<String>>,
    total_ops: AtomicU64,
}

impl Board {
    fn record(&self, op: &str, outcome: Outcome, elapsed: Duration) {
        self.total_ops.fetch_add(1, Ordering::Relaxed);
        let mut map = self.stats.lock().expect("stats lock");
        map.entry(op.to_owned()).or_default().record(outcome, elapsed);
    }

    fn saw_run(&self, id: String) {
        let mut ids = self.run_ids.lock().expect("run ids lock");
        if !ids.contains(&id) {
            ids.push(id);
        }
    }

    fn pick_run(&self, rng: &mut Rng) -> Option<String> {
        let ids = self.run_ids.lock().expect("run ids lock");
        if ids.is_empty() {
            return None;
        }
        let idx = rng.below(ids.len() as u64) as usize;
        Some(ids[idx].clone())
    }
}

/// Submits one run and records the ack (plus any learned run id).
fn do_submit(cfg: &LoadConfig, board: &Board, experiment: &str) {
    let body = format!("{{\"experiment\": \"{experiment}\", \"refs\": {}}}", cfg.refs);
    let start = Instant::now();
    match request(&cfg.addr, cfg.timeout, "POST", "/runs", Some(&body)) {
        Ok(resp) => {
            if classify(resp.status) == Outcome::Ok {
                if let Some(id) = extract_id(&resp.body) {
                    board.saw_run(id);
                }
            }
            board.record("submit", classify(resp.status), start.elapsed());
        }
        Err(_) => board.record("submit", Outcome::Dropped, start.elapsed()),
    }
}

/// One GET against a path, recorded under `op`.
fn do_get(cfg: &LoadConfig, board: &Board, op: &str, path: &str) {
    let start = Instant::now();
    match request(&cfg.addr, cfg.timeout, "GET", path, None) {
        Ok(resp) => board.record(op, classify(resp.status), start.elapsed()),
        Err(_) => board.record(op, Outcome::Dropped, start.elapsed()),
    }
}

/// Opens an SSE stream and reads until the terminal event, the disconnect
/// budget, or the read timeout — then drops the connection. Receiving the
/// headers plus any data counts as `Ok`: a mid-stream disconnect is the
/// *client's* choice and must not be scored against the server.
fn do_stream(cfg: &LoadConfig, board: &Board, id: &str) {
    let start = Instant::now();
    let outcome = stream_once(cfg, id);
    board.record("stream", outcome, start.elapsed());
}

fn stream_once(cfg: &LoadConfig, id: &str) -> Outcome {
    let inner = || -> std::io::Result<Outcome> {
        let mut stream = TcpStream::connect(&cfg.addr)?;
        stream.set_read_timeout(Some(cfg.timeout))?;
        stream.set_write_timeout(Some(cfg.timeout))?;
        let req = format!(
            "GET /runs/{id}/events HTTP/1.1\r\nHost: {}\r\nAccept: text/event-stream\r\nConnection: close\r\n\r\n",
            cfg.addr
        );
        stream.write_all(req.as_bytes())?;
        let mut buf = Vec::new();
        let mut chunk = [0u8; 2048];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    let text = String::from_utf8_lossy(&buf);
                    if text.contains("event: done") || text.contains("event: failed") {
                        break;
                    }
                    if buf.len() >= cfg.stream_disconnect_bytes {
                        return Ok(Outcome::Ok); // deliberate mid-stream drop
                    }
                }
                // A timed-out long-lived stream still proved the route works.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
                Err(e) => return Err(e),
            }
        }
        let resp = parse_response(&buf).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed stream")
        })?;
        Ok(classify(resp.status))
    };
    inner().unwrap_or(Outcome::Dropped)
}

/// One client's whole life: the dedupe storm, then the mixed phase.
fn client_loop(cfg: &LoadConfig, board: &Board, client: usize) {
    let mut rng = Rng::new(client as u64 + 1);
    // Dedupe storm: every client posts the identical body concurrently —
    // all of them must collapse onto one run id without a 5xx.
    for _ in 0..cfg.storm_submits {
        do_submit(cfg, board, &cfg.experiments[0]);
    }
    for _ in 0..cfg.requests_per_client {
        match rng.below(12) {
            0..=2 => {
                let exp_idx = rng.below(cfg.experiments.len() as u64) as usize;
                do_submit(cfg, board, &cfg.experiments[exp_idx]);
            }
            3..=6 => match board.pick_run(&mut rng) {
                Some(id) => do_get(cfg, board, "poll", &format!("/runs/{id}")),
                None => do_submit(cfg, board, &cfg.experiments[0]),
            },
            7 | 8 => match board.pick_run(&mut rng) {
                Some(id) => do_stream(cfg, board, &id),
                None => do_get(cfg, board, "healthz", "/healthz"),
            },
            9 => match board.pick_run(&mut rng) {
                Some(id) => {
                    // Artifact fetch: 404 until the run finishes is expected.
                    let file = format!("{}.json", cfg.experiments[0]);
                    do_get(cfg, board, "artifact", &format!("/runs/{id}/artifacts/{file}"));
                }
                None => do_get(cfg, board, "healthz", "/healthz"),
            },
            10 => do_get(cfg, board, "metrics", "/metrics"),
            _ => do_get(cfg, board, "healthz", "/healthz"),
        }
    }
}

/// Runs the full load test against an already-listening service and
/// returns the report. Panics only on harness-internal lock poisoning.
#[must_use]
pub fn run_loadtest(cfg: &LoadConfig) -> Report {
    let board = Board {
        stats: Mutex::new(BTreeMap::new()),
        run_ids: Mutex::new(Vec::new()),
        total_ops: AtomicU64::new(0),
    };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let board = &board;
            scope.spawn(move || client_loop(cfg, board, client));
        }
    });
    let wall = start.elapsed();
    let stats = board.stats.into_inner().expect("stats lock");
    let mut server_errors = 0;
    let mut dropped = 0;
    let ops: Vec<OpReport> = stats
        .into_iter()
        .map(|(op, s)| {
            server_errors += s.server_errors;
            dropped += s.dropped;
            OpReport {
                op,
                count: s.latency.count(),
                ok: s.ok,
                not_found: s.not_found,
                backpressure: s.backpressure,
                client_errors: s.client_errors,
                server_errors: s.server_errors,
                dropped: s.dropped,
                p50_ms: s.latency.p50() / 1e6,
                p99_ms: s.latency.p99() / 1e6,
                max_ms: s.latency.max().unwrap_or(0.0) / 1e6,
            }
        })
        .collect();
    Report {
        clients: cfg.clients as u64,
        total_ops: board.total_ops.load(Ordering::Relaxed),
        server_errors,
        dropped,
        wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
        runs_seen: board.run_ids.into_inner().expect("run ids lock").len() as u64,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_decoding_reassembles_and_tolerates_truncation() {
        let body = "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(body), "hello world");
        // Truncated mid-chunk: keep what arrived.
        assert_eq!(decode_chunked("5\r\nhel"), "hel");
    }

    #[test]
    fn response_parsing_handles_plain_and_chunked() {
        let plain = b"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\r\nmissing";
        let r = parse_response(plain).unwrap();
        assert_eq!((r.status, r.body.as_str()), (404, "missing"));
        let chunked =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\ndata\r\n0\r\n\r\n";
        let r = parse_response(chunked).unwrap();
        assert_eq!((r.status, r.body.as_str()), (200, "data"));
    }

    #[test]
    fn ack_id_extraction_finds_the_run_id() {
        let body = "{\"id\": \"abcdef0123456789\", \"deduped\": false}";
        assert_eq!(extract_id(body).as_deref(), Some("abcdef0123456789"));
        assert_eq!(extract_id("{}"), None);
    }

    #[test]
    fn outcome_classification_matches_the_gates() {
        assert_eq!(classify(202), Outcome::Ok);
        assert_eq!(classify(404), Outcome::NotFound);
        assert_eq!(classify(429), Outcome::Backpressure);
        assert_eq!(classify(400), Outcome::ClientError);
        assert_eq!(classify(500), Outcome::ServerError);
        assert_eq!(classify(503), Outcome::ServerError);
    }

    #[test]
    fn gate_rejects_5xx_dropped_and_slow_p99() {
        let mut report = Report {
            clients: 1,
            total_ops: 1,
            server_errors: 0,
            dropped: 0,
            wall_ms: 1,
            runs_seen: 1,
            ops: vec![OpReport {
                op: "poll".to_owned(),
                count: 1,
                ok: 1,
                not_found: 0,
                backpressure: 0,
                client_errors: 0,
                server_errors: 0,
                dropped: 0,
                p50_ms: 1.0,
                p99_ms: 2.0,
                max_ms: 3.0,
            }],
        };
        assert!(report.gate(Duration::from_secs(1)).is_ok());
        report.ops[0].p99_ms = 5000.0;
        assert!(report.gate(Duration::from_secs(1)).is_err());
        report.ops[0].p99_ms = 2.0;
        report.server_errors = 1;
        assert!(report.gate(Duration::from_secs(1)).is_err());
        report.server_errors = 0;
        report.dropped = 1;
        assert!(report.gate(Duration::from_secs(1)).is_err());
    }
}
