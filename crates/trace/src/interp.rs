use std::collections::HashMap;

use ringsim_cache::{AccessClass, Cache, CacheConfig, LineState};
use ringsim_types::{AccessKind, BlockAddr, CoherenceEvents, ConfigError, MemRef, NodeId, Region};

use crate::space::{AddressSpace, BLOCK_BYTES};
use crate::{Workload, WorkloadSpec};

/// Global sharing state of one block, as seen by an idealised (zero-latency)
/// coherent memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BlockInfo {
    /// Bitmask of nodes holding a valid copy (≤ 64 nodes).
    sharers: u64,
    /// The write-exclusive holder, if the block is dirty.
    owner: Option<NodeId>,
}

/// An untimed, sequentially interleaved coherent-memory interpreter.
///
/// This is the reference semantics for every protocol in the workspace: it
/// executes references instantly under write-invalidate coherence and
/// classifies each coherence event into [`CoherenceEvents`] buckets. It is
/// used for
///
/// * **trace characterisation** (Table 2) — see [`characterize`],
/// * deriving **analytic model parameters** without a timed simulation,
/// * **protocol equivalence tests**: the timed snooping and directory
///   simulators must agree with it on final sharing state for identical
///   interleavings.
///
/// # Examples
///
/// ```
/// use ringsim_trace::{RefInterpreter, Workload, WorkloadSpec};
///
/// let mut workload = Workload::new(WorkloadSpec::demo(4)).unwrap();
/// let mut interp = RefInterpreter::new(4, workload.space()).unwrap();
/// for r in workload.round_robin(1_000) {
///     interp.process(r);
/// }
/// assert!(interp.events().data_refs() > 0);
/// interp.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct RefInterpreter {
    caches: Vec<Cache>,
    space: AddressSpace,
    blocks: HashMap<u64, BlockInfo>,
    events: CoherenceEvents,
    counting: bool,
}

impl RefInterpreter {
    /// Creates the interpreter with the paper's default cache geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for more than 64 nodes (the sharer bitmask
    /// limit) or an invalid cache configuration.
    pub fn new(nodes: usize, space: AddressSpace) -> Result<Self, ConfigError> {
        Self::with_cache(nodes, space, CacheConfig::paper_default())
    }

    /// Creates the interpreter with a custom cache geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for more than 64 nodes or an invalid cache
    /// configuration.
    pub fn with_cache(
        nodes: usize,
        space: AddressSpace,
        cache: CacheConfig,
    ) -> Result<Self, ConfigError> {
        if nodes == 0 || nodes > 64 {
            return Err(ConfigError::new("nodes", "must be between 1 and 64"));
        }
        let caches = (0..nodes).map(|_| Cache::new(cache)).collect::<Result<_, _>>()?;
        Ok(Self {
            caches,
            space,
            blocks: HashMap::new(),
            events: CoherenceEvents::default(),
            counting: true,
        })
    }

    /// Enables or disables event counting (used to exclude warmup).
    pub fn set_counting(&mut self, on: bool) {
        self.counting = on;
    }

    /// Accumulated event counts.
    #[must_use]
    pub fn events(&self) -> CoherenceEvents {
        self.events
    }

    /// The per-node cache array (read-only view).
    #[must_use]
    pub fn caches(&self) -> &[Cache] {
        &self.caches
    }

    /// Executes one reference to completion.
    ///
    /// # Panics
    ///
    /// Panics if `r.node` is out of range for this interpreter.
    pub fn process(&mut self, r: MemRef) {
        let node = r.node;
        let block = r.addr.block(BLOCK_BYTES);
        let class = self.caches[node.index()].peek(block, r.kind);

        if self.counting {
            match (r.region, r.kind) {
                (Region::Private, AccessKind::Read) => self.events.private_reads += 1,
                (Region::Private, AccessKind::Write) => self.events.private_writes += 1,
                (Region::Shared, AccessKind::Read) => self.events.shared_reads += 1,
                (Region::Shared, AccessKind::Write) => self.events.shared_writes += 1,
            }
        }

        match class {
            AccessClass::Hit => {
                self.caches[node.index()].classify(block, r.kind);
            }
            AccessClass::Upgrade => {
                self.caches[node.index()].classify(block, r.kind);
                self.do_upgrade(node, block);
            }
            AccessClass::Miss => {
                self.caches[node.index()].classify(block, r.kind);
                self.do_miss(node, block, r.kind, r.region);
            }
        }
    }

    fn bit(node: NodeId) -> u64 {
        1 << node.index()
    }

    /// `true` when the dirty node `d` lies on the requester→home ring path
    /// (the "unfortunate" 2-traversal placement of Figure 2b).
    fn dirty_on_path(&self, requester: NodeId, home: NodeId, dirty: NodeId) -> bool {
        let n = self.space.nodes();
        if home == requester || dirty == home {
            return false;
        }
        requester.hops_to(dirty, n) < requester.hops_to(home, n)
    }

    fn do_upgrade(&mut self, node: NodeId, block: BlockAddr) {
        let home = self.space.home_of_block(block);
        let info = self.blocks.entry(block.raw()).or_default();
        debug_assert!(info.owner.is_none(), "upgrade on a dirty block");
        let others = info.sharers & !Self::bit(node);
        let local = home == node;
        if self.counting {
            match (others != 0, local) {
                (false, true) => self.events.upgrade_nosharers_local += 1,
                (false, false) => self.events.upgrade_nosharers_remote += 1,
                (true, true) => self.events.upgrade_sharers_local += 1,
                (true, false) => self.events.upgrade_sharers_remote += 1,
            }
            self.events.invalidated_copies += others.count_ones() as u64;
        }
        info.sharers = Self::bit(node);
        info.owner = Some(node);
        for peer in NodeId::all(self.caches.len()) {
            if others & Self::bit(peer) != 0 {
                self.caches[peer.index()].snoop_invalidate(block);
            }
        }
        let promoted = self.caches[node.index()].promote(block);
        debug_assert!(promoted, "upgrade on absent line");
    }

    fn do_miss(&mut self, node: NodeId, block: BlockAddr, kind: AccessKind, region: Region) {
        let home = self.space.home_of_block(block);
        let local = home == node;
        let info = *self.blocks.get(&block.raw()).unwrap_or(&BlockInfo::default());
        debug_assert!(info.owner != Some(node), "miss on a block this cache owns");

        if self.counting {
            match region {
                Region::Private => self.events.private_misses += 1,
                Region::Shared => match (kind, info.owner) {
                    (AccessKind::Read, Some(d)) => {
                        if self.dirty_on_path(node, home, d) {
                            self.events.read_dirty_2 += 1;
                        } else {
                            self.events.read_dirty_1 += 1;
                        }
                    }
                    (AccessKind::Read, None) => {
                        if local {
                            self.events.read_clean_local += 1;
                        } else {
                            self.events.read_clean_remote += 1;
                        }
                    }
                    (AccessKind::Write, Some(d)) => {
                        if self.dirty_on_path(node, home, d) {
                            self.events.write_dirty_2 += 1;
                        } else {
                            self.events.write_dirty_1 += 1;
                        }
                    }
                    (AccessKind::Write, None) => {
                        let others = info.sharers & !Self::bit(node);
                        match (others != 0, local) {
                            (false, true) => self.events.write_nosharers_local += 1,
                            (false, false) => self.events.write_nosharers_remote += 1,
                            (true, true) => self.events.write_sharers_local += 1,
                            (true, false) => self.events.write_sharers_remote += 1,
                        }
                    }
                },
            }
        }

        // Coherence actions.
        let entry = self.blocks.entry(block.raw()).or_default();
        match kind {
            AccessKind::Read => {
                if let Some(d) = entry.owner.take() {
                    // Dirty node supplies and downgrades; memory is updated.
                    self.caches[d.index()].snoop_downgrade(block);
                }
                entry.sharers |= Self::bit(node);
            }
            AccessKind::Write => {
                let victims = entry.sharers & !Self::bit(node);
                if self.counting {
                    self.events.invalidated_copies += victims.count_ones() as u64;
                }
                entry.owner = Some(node);
                entry.sharers = Self::bit(node);
                for peer in NodeId::all(self.caches.len()) {
                    if victims & Self::bit(peer) != 0 {
                        self.caches[peer.index()].snoop_invalidate(block);
                    }
                }
            }
        }

        let fill_state = if kind.is_write() { LineState::We } else { LineState::Rs };
        if let Some((victim, vstate)) = self.caches[node.index()].fill(block, fill_state) {
            self.drop_copy(node, victim, vstate);
        }
    }

    /// Removes `node`'s copy of `victim` from the global map, accounting a
    /// write-back when the victim was dirty.
    fn drop_copy(&mut self, node: NodeId, victim: BlockAddr, vstate: LineState) {
        let vhome = self.space.home_of_block(victim);
        if let Some(info) = self.blocks.get_mut(&victim.raw()) {
            info.sharers &= !Self::bit(node);
            if info.owner == Some(node) {
                info.owner = None;
            }
        }
        if vstate.is_dirty() && self.counting {
            if vhome == node {
                self.events.writeback_local += 1;
            } else {
                self.events.writeback_remote += 1;
            }
        }
    }

    /// Verifies global/per-cache consistency: the owner (if any) holds the
    /// line in `We` and is the only sharer; every sharer holds a valid line;
    /// no cache holds a line the map does not know about.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&raw, info) in &self.blocks {
            let block = BlockAddr::new(raw);
            if let Some(owner) = info.owner {
                if info.sharers != Self::bit(owner) {
                    return Err(format!("{block}: owner {owner} but sharers {:b}", info.sharers));
                }
                let st = self.caches[owner.index()].state_of(block);
                if st != LineState::We {
                    return Err(format!("{block}: owner {owner} cache state {st:?}"));
                }
            }
            for peer in NodeId::all(self.caches.len()) {
                let st = self.caches[peer.index()].state_of(block);
                let listed = info.sharers & Self::bit(peer) != 0;
                if listed && !st.is_valid() {
                    return Err(format!("{block}: {peer} listed as sharer but line is Inv"));
                }
                if !listed && st.is_valid() {
                    return Err(format!("{block}: {peer} holds {st:?} but is not listed"));
                }
                if st == LineState::We && info.owner != Some(peer) {
                    return Err(format!("{block}: {peer} is We but owner is {:?}", info.owner));
                }
            }
        }
        Ok(())
    }
}

/// Table 2-style characteristics of a workload, measured by running it
/// through the [`RefInterpreter`].
#[derive(Debug, Clone, PartialEq)]
pub struct Characteristics {
    /// Workload name.
    pub name: String,
    /// Processor count.
    pub procs: usize,
    /// Measured (post-warmup) event counts, aggregated over all nodes.
    pub events: CoherenceEvents,
    /// Instruction references per data reference (from the spec; instruction
    /// fetches never miss).
    pub instr_per_data: f64,
}

impl Characteristics {
    /// Total data references measured.
    #[must_use]
    pub fn data_refs(&self) -> u64 {
        self.events.data_refs()
    }

    /// Implied instruction reference count.
    #[must_use]
    pub fn instr_refs(&self) -> u64 {
        (self.events.data_refs() as f64 * self.instr_per_data) as u64
    }
}

/// Runs `spec` through the reference interpreter (warmup excluded from the
/// counts) and reports its characteristics.
///
/// # Errors
///
/// Returns a [`ConfigError`] when the spec is invalid.
///
/// # Examples
///
/// ```
/// use ringsim_trace::{characterize, WorkloadSpec};
///
/// let ch = characterize(&WorkloadSpec::demo(4)).unwrap();
/// assert!(ch.events.total_miss_rate() > 0.0);
/// ```
pub fn characterize(spec: &WorkloadSpec) -> Result<Characteristics, ConfigError> {
    let mut workload = Workload::new(spec.clone())?;
    let space = workload.space();
    let mut interp = RefInterpreter::new(spec.procs, space)?;
    interp.set_counting(false);
    let warm = spec.warmup_refs_per_proc;
    for r in workload.round_robin(warm) {
        interp.process(r);
    }
    interp.set_counting(true);
    for r in workload.round_robin(spec.data_refs_per_proc) {
        interp.process(r);
    }
    Ok(Characteristics {
        name: spec.name.clone(),
        procs: spec.procs,
        events: interp.events(),
        instr_per_data: spec.instr_per_data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_demo(procs: usize, per_node: u64) -> RefInterpreter {
        let mut w = Workload::new(WorkloadSpec::demo(procs)).unwrap();
        let mut interp = RefInterpreter::new(procs, w.space()).unwrap();
        for r in w.round_robin(per_node) {
            interp.process(r);
        }
        interp
    }

    #[test]
    fn invariants_hold_throughout() {
        let mut w = Workload::new(WorkloadSpec::demo(4)).unwrap();
        let mut interp = RefInterpreter::new(4, w.space()).unwrap();
        for (i, r) in w.round_robin(2_000).enumerate() {
            interp.process(r);
            if i % 500 == 0 {
                interp.check_invariants().unwrap();
            }
        }
        interp.check_invariants().unwrap();
    }

    #[test]
    fn reference_mix_is_counted() {
        let interp = run_demo(4, 5_000);
        let e = interp.events();
        assert_eq!(e.data_refs(), 20_000);
        assert!(e.shared_refs() > 0 && e.private_refs() > 0);
    }

    #[test]
    fn migratory_sharing_produces_dirty_misses() {
        let spec = WorkloadSpec {
            shared_frac: 1.0,
            shared_read_only_frac: 0.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 1.0,
            shared_prodcons_frac: 0.0,
            migratory_blocks: 64,
            migratory_run_len: 6,
            migratory_write_frac: 0.8,
            ..WorkloadSpec::demo(4)
        };
        let mut w = Workload::new(spec).unwrap();
        let mut interp = RefInterpreter::new(4, w.space()).unwrap();
        for r in w.round_robin(5_000) {
            interp.process(r);
        }
        let e = interp.events();
        assert!(e.dirty_miss_frac() > 0.3, "dirty frac = {}", e.dirty_miss_frac());
        assert!(e.upgrades() > 0);
    }

    #[test]
    fn read_only_sharing_produces_only_clean_misses() {
        let spec = WorkloadSpec {
            shared_frac: 1.0,
            shared_read_only_frac: 1.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 0.0,
            shared_prodcons_frac: 0.0,
            read_only_blocks: 4096,
            private_cold_frac: 0.0,
            ..WorkloadSpec::demo(4)
        };
        let mut w = Workload::new(spec).unwrap();
        let mut interp = RefInterpreter::new(4, w.space()).unwrap();
        for r in w.round_robin(5_000) {
            interp.process(r);
        }
        let e = interp.events();
        assert_eq!(e.dirty_miss_frac(), 0.0);
        assert_eq!(e.upgrades(), 0);
        assert!(e.shared_misses() > 0);
        assert_eq!(e.shared_write_misses(), 0);
    }

    #[test]
    fn prodcons_invalidates_multiple_sharers() {
        let spec = WorkloadSpec {
            procs: 8,
            shared_frac: 1.0,
            shared_read_only_frac: 0.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 0.0,
            shared_prodcons_frac: 1.0,
            prodcons_blocks: 32,
            prodcons_producer_frac: 0.2,
            ..WorkloadSpec::demo(8)
        };
        let mut w = Workload::new(spec).unwrap();
        let mut interp = RefInterpreter::new(8, w.space()).unwrap();
        for r in w.round_robin(5_000) {
            interp.process(r);
        }
        let e = interp.events();
        // Writers find reader copies: multi-sharer invalidations dominate.
        assert!(
            e.upgrade_sharers_local
                + e.upgrade_sharers_remote
                + e.write_sharers_local
                + e.write_sharers_remote
                > 0
        );
        assert!(e.invalidated_copies > e.upgrades(), "multiple copies per invalidation");
    }

    #[test]
    fn characterize_reports_spec_shape() {
        let spec = WorkloadSpec::demo(4);
        let ch = characterize(&spec).unwrap();
        assert_eq!(ch.procs, 4);
        assert_eq!(ch.data_refs(), 4 * spec.data_refs_per_proc);
        let shared_frac = ch.events.shared_refs() as f64 / ch.data_refs() as f64;
        assert!((shared_frac - spec.shared_frac).abs() < 0.03);
        assert_eq!(ch.instr_refs(), (ch.data_refs() as f64 * 2.0) as u64);
    }

    #[test]
    fn warmup_is_excluded_from_counts() {
        let spec = WorkloadSpec::demo(4);
        let ch = characterize(&spec).unwrap();
        // Only the measured refs appear.
        assert_eq!(ch.data_refs(), 4 * spec.data_refs_per_proc);
    }

    #[test]
    fn rejects_too_many_nodes() {
        let space = AddressSpace::new(65, 1);
        assert!(RefInterpreter::new(65, space).is_err());
    }
}
