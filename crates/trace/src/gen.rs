use std::sync::Arc;

use ringsim_types::rng::Xoshiro256;
use ringsim_types::{AccessKind, Addr, ConfigError, MemRef, NodeId, Region};

use crate::space::AddressSpace;
use crate::spec::WorkloadSpec;

/// The synthetic reference engine for one processor (see [`NodeStream`]).
#[derive(Debug, Clone)]
struct SynthStream {
    node: NodeId,
    spec: Arc<WorkloadSpec>,
    space: AddressSpace,
    rng: Xoshiro256,
    /// Current migratory episode: block index and references remaining.
    mig_block: u64,
    mig_remaining: u64,
    /// Current producer-consumer burst: block index, references remaining,
    /// and whether this node is producing (writing) or consuming (reading).
    pc_block: u64,
    pc_remaining: u64,
    pc_writing: bool,
    /// Monotone counter for the never-revisited streaming pool.
    stream_counter: u64,
    /// Number of producer-consumer blocks owned by this node.
    own_pc_blocks: u64,
    /// Normalised sharing-pool weights, fixed at construction (the spec is
    /// immutable, so recomputing them per shared reference is pure waste).
    pool_weights: [f64; 4],
}

impl SynthStream {
    fn new(node: NodeId, spec: Arc<WorkloadSpec>, space: AddressSpace, rng: Xoshiro256) -> Self {
        let procs = spec.procs as u64;
        let pc = spec.prodcons_blocks;
        // Blocks with index ≡ node (mod procs) belong to this producer.
        let own_pc_blocks = pc / procs + u64::from(pc % procs > node.index() as u64);
        let pool_weights = spec.pool_weights();
        Self {
            node,
            spec,
            space,
            rng,
            mig_block: 0,
            mig_remaining: 0,
            pc_block: 0,
            pc_remaining: 0,
            pc_writing: false,
            stream_counter: 0,
            own_pc_blocks,
            pool_weights,
        }
    }

    /// Generates the next data reference.
    fn next_ref(&mut self) -> MemRef {
        if self.rng.chance(self.spec.shared_frac) {
            self.next_shared()
        } else {
            self.next_private()
        }
    }

    fn next_private(&mut self) -> MemRef {
        let spec = &self.spec;
        let addr = if self.rng.chance(spec.private_cold_frac) {
            let idx = self.rng.next_below(spec.private_cold_blocks);
            self.space.private_cold_addr(self.node, idx)
        } else {
            let idx = self.rng.next_below(spec.private_hot_blocks);
            self.space.private_addr(self.node, idx)
        };
        let kind = if self.rng.chance(spec.private_write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.make(addr, kind, Region::Private)
    }

    fn next_shared(&mut self) -> MemRef {
        let weights = self.pool_weights;
        match self.rng.pick_weighted(&weights).expect("validated spec has a usable pool") {
            0 => {
                let idx = self.rng.next_below(self.spec.read_only_blocks);
                self.make(self.space.read_only_addr(idx), AccessKind::Read, Region::Shared)
            }
            1 => {
                // Streaming sweep: a fresh block every time — a guaranteed
                // cold miss, never revisited.
                self.stream_counter += 1;
                let addr = self.space.stream_addr(self.node, self.stream_counter);
                self.make(addr, AccessKind::Read, Region::Shared)
            }
            2 => self.next_migratory(),
            _ => self.next_prodcons(),
        }
    }

    fn next_migratory(&mut self) -> MemRef {
        let spec = &self.spec;
        let starting = self.mig_remaining == 0;
        if starting {
            self.mig_block = self.rng.next_below(spec.migratory_blocks);
            self.mig_remaining = spec.migratory_run_len;
        }
        self.mig_remaining -= 1;
        // An episode is a read-modify-write run: it opens with a read (the
        // migratory fetch) and mixes writes afterwards.
        let kind = if !starting && self.rng.chance(spec.migratory_write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.make(self.space.migratory_addr(self.mig_block), kind, Region::Shared)
    }

    fn next_prodcons(&mut self) -> MemRef {
        let spec = &self.spec;
        let procs = spec.procs as u64;
        if self.pc_remaining == 0 {
            // Start a new burst: produce on an own block or consume a
            // random one, then stay on it for `prodcons_burst` references
            // (the temporal locality of a grid point).
            self.pc_remaining = spec.prodcons_burst;
            if self.own_pc_blocks > 0 && self.rng.chance(spec.prodcons_producer_frac) {
                let k = self.rng.next_below(self.own_pc_blocks);
                self.pc_block = self.node.index() as u64 + k * procs;
                self.pc_writing = true;
            } else {
                self.pc_block = self.rng.next_below(spec.prodcons_blocks);
                self.pc_writing = false;
            }
        }
        self.pc_remaining -= 1;
        let kind = if self.pc_writing { AccessKind::Write } else { AccessKind::Read };
        self.make(self.space.prodcons_addr(self.pc_block), kind, Region::Shared)
    }

    fn make(&self, addr: Addr, kind: AccessKind, region: Region) -> MemRef {
        MemRef { node: self.node, addr, kind, region }
    }
}

/// Deterministic stream of data references for one processor: either the
/// synthetic generator or the replay of a recorded trace.
///
/// Each synthetic node draws from its own PRNG stream, so the sequence a
/// node produces is independent of how the simulator interleaves nodes —
/// the synthetic analogue of replaying a fixed per-processor trace. Replay
/// streams come from [`crate::RecordedTrace`] and repeat their recording
/// cyclically if a simulator asks for more references than were captured.
#[derive(Debug, Clone)]
pub struct NodeStream {
    inner: StreamInner,
    node: NodeId,
    instr_per_data: f64,
    emitted: u64,
}

#[derive(Debug, Clone)]
enum StreamInner {
    Synth(SynthStream),
    Replay { refs: std::sync::Arc<[MemRef]>, cursor: usize },
}

impl NodeStream {
    fn synthetic(engine: SynthStream) -> Self {
        Self {
            node: engine.node,
            instr_per_data: engine.spec.instr_per_data,
            inner: StreamInner::Synth(engine),
            emitted: 0,
        }
    }

    pub(crate) fn replay(
        node: NodeId,
        instr_per_data: f64,
        refs: std::sync::Arc<[MemRef]>,
    ) -> Self {
        assert!(!refs.is_empty(), "replay stream needs at least one reference");
        Self { node, instr_per_data, inner: StreamInner::Replay { refs, cursor: 0 }, emitted: 0 }
    }

    /// The issuing processor.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// References generated so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Instruction references charged per data reference.
    #[must_use]
    pub fn instr_per_data(&self) -> f64 {
        self.instr_per_data
    }

    /// Generates (or replays) the next data reference.
    pub fn next_ref(&mut self) -> MemRef {
        self.emitted += 1;
        match &mut self.inner {
            StreamInner::Synth(engine) => engine.next_ref(),
            StreamInner::Replay { refs, cursor } => {
                let r = refs[*cursor];
                *cursor = (*cursor + 1) % refs.len();
                r
            }
        }
    }
}

/// A complete synthetic workload: one [`NodeStream`] per processor plus the
/// shared [`AddressSpace`].
///
/// # Examples
///
/// ```
/// use ringsim_trace::{Workload, WorkloadSpec};
///
/// let workload = Workload::new(WorkloadSpec::demo(4)).unwrap();
/// let mut streams = workload.into_streams();
/// let r = streams[0].next_ref();
/// assert_eq!(r.node.index(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    spec: Arc<WorkloadSpec>,
    space: AddressSpace,
    streams: Vec<NodeStream>,
}

impl Workload {
    /// Builds the workload, validating the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the spec fails validation.
    pub fn new(spec: WorkloadSpec) -> Result<Self, ConfigError> {
        spec.validate()?;
        let spec = Arc::new(spec);
        let space = AddressSpace::new(spec.procs, spec.seed ^ 0x5eed_9a9e);
        let mut root = Xoshiro256::seed_from_u64(spec.seed);
        let streams = NodeId::all(spec.procs)
            .map(|node| {
                let rng = root.fork(node.index() as u64);
                NodeStream::synthetic(SynthStream::new(node, Arc::clone(&spec), space, rng))
            })
            .collect();
        Ok(Self { spec, space, streams })
    }

    /// Assembles a workload from pre-built parts (trace replay).
    pub(crate) fn from_parts(
        spec: WorkloadSpec,
        space: AddressSpace,
        streams: Vec<NodeStream>,
    ) -> Self {
        Self { spec: Arc::new(spec), space, streams }
    }

    /// The validated spec.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The address map (home placement, regions).
    #[must_use]
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of processors.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.spec.procs
    }

    /// Mutable access to the per-node streams.
    pub fn streams_mut(&mut self) -> &mut [NodeStream] {
        &mut self.streams
    }

    /// Consumes the workload into its per-node streams.
    #[must_use]
    pub fn into_streams(self) -> Vec<NodeStream> {
        self.streams
    }

    /// Round-robin merge of all node streams, `per_node` references each —
    /// the interleaving used for untimed trace characterisation.
    pub fn round_robin(&mut self, per_node: u64) -> impl Iterator<Item = MemRef> + '_ {
        let remaining = per_node * self.streams.len() as u64;
        RoundRobin { streams: &mut self.streams, idx: 0, remaining }
    }
}

/// Iterator returned by [`Workload::round_robin`].
#[derive(Debug)]
struct RoundRobin<'a> {
    streams: &'a mut [NodeStream],
    idx: usize,
    remaining: u64,
}

impl Iterator for RoundRobin<'_> {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.streams[self.idx].next_ref();
        self.idx = (self.idx + 1) % self.streams.len();
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_types::Region;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Workload::new(WorkloadSpec::demo(4)).unwrap();
        let mut b = Workload::new(WorkloadSpec::demo(4)).unwrap();
        for n in 0..4 {
            for _ in 0..1000 {
                assert_eq!(a.streams_mut()[n].next_ref(), b.streams_mut()[n].next_ref());
            }
        }
    }

    #[test]
    fn node_stream_independent_of_interleaving() {
        let mut a = Workload::new(WorkloadSpec::demo(4)).unwrap();
        let mut b = Workload::new(WorkloadSpec::demo(4)).unwrap();
        // Drain node 3 of `b` heavily first; node 0's stream must not change.
        for _ in 0..500 {
            b.streams_mut()[3].next_ref();
        }
        for _ in 0..200 {
            assert_eq!(a.streams_mut()[0].next_ref(), b.streams_mut()[0].next_ref());
        }
    }

    #[test]
    fn shared_fraction_is_respected() {
        let spec = WorkloadSpec { shared_frac: 0.4, ..WorkloadSpec::demo(4) };
        let mut w = Workload::new(spec).unwrap();
        let n = 40_000;
        let shared = w.round_robin(n / 4).filter(|r| r.region == Region::Shared).count();
        let frac = shared as f64 / n as f64;
        assert!((0.37..0.43).contains(&frac), "shared frac = {frac}");
    }

    #[test]
    fn private_refs_stay_in_owner_region() {
        let mut w = Workload::new(WorkloadSpec::demo(4)).unwrap();
        let space = w.space();
        for r in w.round_robin(500) {
            if r.region == Region::Private {
                assert_eq!(space.home_of(r.addr), r.node);
            }
        }
    }

    #[test]
    fn migratory_episodes_have_configured_length() {
        let spec = WorkloadSpec {
            shared_frac: 1.0,
            shared_read_only_frac: 0.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 1.0,
            shared_prodcons_frac: 0.0,
            migratory_run_len: 5,
            ..WorkloadSpec::demo(4)
        };
        let mut w = Workload::new(spec).unwrap();
        let stream = &mut w.streams_mut()[0];
        // Consecutive refs come in runs of exactly 5 to the same block.
        let mut last = None;
        let mut run = 0;
        let mut runs = Vec::new();
        for _ in 0..200 {
            let r = stream.next_ref();
            if Some(r.addr.block(16)) == last.map(|a: ringsim_types::Addr| a.block(16)) {
                run += 1;
            } else {
                if run > 0 {
                    runs.push(run);
                }
                run = 1;
            }
            last = Some(r.addr);
        }
        // All complete runs are multiples of 5 (same block may repeat across
        // episodes).
        assert!(runs.iter().all(|&r| r % 5 == 0), "runs = {runs:?}");
    }

    #[test]
    fn prodcons_writes_only_own_blocks() {
        let spec = WorkloadSpec {
            shared_frac: 1.0,
            shared_read_only_frac: 0.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 0.0,
            shared_prodcons_frac: 1.0,
            prodcons_producer_frac: 0.5,
            ..WorkloadSpec::demo(4)
        };
        let mut w = Workload::new(spec).unwrap();
        let space = w.space();
        for node in 0..4 {
            let stream = &mut w.streams_mut()[node];
            for _ in 0..500 {
                let r = stream.next_ref();
                if r.kind.is_write() {
                    // Recover the pool index from the address.
                    let block = r.addr.block(16).raw();
                    let idx = block & 0xffff_ffff;
                    let idx = idx - 5120; // PC_LINE_BASE
                    assert_eq!(space.producer_of(idx), r.node, "write to foreign block");
                }
            }
        }
    }

    #[test]
    fn round_robin_emits_exactly_requested() {
        let mut w = Workload::new(WorkloadSpec::demo(3)).unwrap();
        assert_eq!(w.round_robin(10).count(), 30);
    }

    #[test]
    fn rejects_invalid_spec() {
        let bad = WorkloadSpec { procs: 0, ..WorkloadSpec::demo(4) };
        assert!(Workload::new(bad).is_err());
    }
}
