use serde::{Deserialize, Serialize};

use ringsim_types::{Addr, BlockAddr, NodeId, PageAddr, Region};

/// Cache block size used by the synthetic address map (the paper's 16
/// bytes). The simulators read the block size from their own configs; this
/// constant only fixes how the generator lays out its pools.
pub const BLOCK_BYTES: u64 = 16;

/// Page size used for home-node placement (4 KB).
pub const PAGE_BYTES: u64 = 4096;

const REGION_SHIFT: u32 = 44;
const REGION_PRIVATE: u64 = 1;
const REGION_READ_ONLY: u64 = 2;
const REGION_MIGRATORY: u64 = 3;
const REGION_PRODCONS: u64 = 4;
const REGION_STREAM: u64 = 5;
const PRIVATE_NODE_SHIFT: u32 = 32;

/// Block-index offsets that keep the small pools on disjoint direct-mapped
/// cache lines (8192 lines for the paper's 128 KB / 16 B cache), so the
/// miss-rate knobs compose predictably. The large cold pool deliberately
/// spans all lines.
const HOT_LINE_BASE: u64 = 0;
const RO_LINE_BASE: u64 = 2048;
const MIG_LINE_BASE: u64 = 4096;
const PC_LINE_BASE: u64 = 5120;
const COLD_LINE_BASE: u64 = 0;
const STREAM_LINE_BASE: u64 = 6144;
const STREAM_LINE_SPAN: u64 = 2048;
const CACHE_LINES: u64 = 8192;

/// The synthetic workload's address map.
///
/// Regions are separated by high address bits; the node that owns a private
/// page is recoverable from the address, and shared pages are placed on
/// pseudo-random home nodes (the paper's "random allocation of shared memory
/// pages among the nodes").
///
/// # Examples
///
/// ```
/// use ringsim_trace::AddressSpace;
/// use ringsim_types::{NodeId, Region};
///
/// let space = AddressSpace::new(16, 42);
/// let a = space.private_addr(NodeId::new(3), 10);
/// assert_eq!(space.region_of(a), Region::Private);
/// assert_eq!(space.home_of(a), NodeId::new(3));
///
/// let s = space.migratory_addr(0);
/// assert_eq!(space.region_of(s), Region::Shared);
/// assert!(space.home_of(s).index() < 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    nodes: usize,
    placement_seed: u64,
}

impl AddressSpace {
    /// Creates the map for an `n`-node system; `placement_seed` randomises
    /// the shared-page-to-home assignment.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize, placement_seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self { nodes, placement_seed }
    }

    /// Number of nodes in the system.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn compose(region: u64, sub: u64, block_index: u64) -> Addr {
        Addr::new(
            (region << REGION_SHIFT) | (sub << PRIVATE_NODE_SHIFT) | (block_index * BLOCK_BYTES),
        )
    }

    /// Address of block `index` of `node`'s private pool. Indices below the
    /// hot-pool size land on dedicated cache lines; see `hot`/`cold` callers
    /// in the generator.
    #[must_use]
    pub fn private_addr(self, node: NodeId, index: u64) -> Addr {
        Self::compose(REGION_PRIVATE, node.index() as u64, HOT_LINE_BASE + index)
    }

    /// Address of block `index` of `node`'s private *cold* pool.
    #[must_use]
    pub fn private_cold_addr(self, node: NodeId, index: u64) -> Addr {
        // Offset by a large constant so cold blocks never alias hot blocks
        // as the *same* block, while still mapping across all cache lines.
        Self::compose(REGION_PRIVATE, node.index() as u64, COLD_LINE_BASE + (1 << 20) + index)
    }

    /// Address of block `index` of the shared read-only pool.
    #[must_use]
    pub fn read_only_addr(self, index: u64) -> Addr {
        Self::compose(REGION_READ_ONLY, 0, RO_LINE_BASE + index)
    }

    /// Address of block `index` of the shared migratory pool.
    #[must_use]
    pub fn migratory_addr(self, index: u64) -> Addr {
        Self::compose(REGION_MIGRATORY, 0, MIG_LINE_BASE + index)
    }

    /// Address of block `index` of the shared producer-consumer pool.
    #[must_use]
    pub fn prodcons_addr(self, index: u64) -> Addr {
        Self::compose(REGION_PRODCONS, 0, PC_LINE_BASE + index)
    }

    /// Address of the `counter`-th streaming block touched by `node`.
    /// Streaming blocks are never revisited, so each node gets a disjoint,
    /// monotonically advancing index range. The blocks are laid out so they
    /// only ever map onto cache lines 6144..8192 — a range no other pool
    /// uses — so the streaming sweep evicts only itself.
    #[must_use]
    pub fn stream_addr(self, node: NodeId, counter: u64) -> Addr {
        let idx = (counter / STREAM_LINE_SPAN) * CACHE_LINES
            + STREAM_LINE_BASE
            + counter % STREAM_LINE_SPAN;
        Self::compose(REGION_STREAM, node.index() as u64, idx)
    }

    /// The producer (writer) of producer-consumer block `index`.
    #[must_use]
    pub fn producer_of(self, index: u64) -> NodeId {
        NodeId::new((index % self.nodes as u64) as usize)
    }

    /// Region of an address generated by this map.
    ///
    /// # Panics
    ///
    /// Panics on addresses not produced by this map.
    #[must_use]
    pub fn region_of(self, addr: Addr) -> Region {
        match addr.raw() >> REGION_SHIFT {
            REGION_PRIVATE => Region::Private,
            REGION_READ_ONLY | REGION_MIGRATORY | REGION_PRODCONS | REGION_STREAM => Region::Shared,
            other => panic!("address {addr} in unknown region {other}"),
        }
    }

    /// Home node of the page containing `addr`: the owning node for private
    /// pages, a pseudo-random node for shared pages.
    #[must_use]
    pub fn home_of(self, addr: Addr) -> NodeId {
        match self.region_of(addr) {
            Region::Private => NodeId::new(((addr.raw() >> PRIVATE_NODE_SHIFT) & 0xfff) as usize),
            Region::Shared => self.home_of_page(addr.page(PAGE_BYTES)),
        }
    }

    /// Home node of the block `block` (block numbers are relative to
    /// [`BLOCK_BYTES`]).
    #[must_use]
    pub fn home_of_block(self, block: BlockAddr) -> NodeId {
        self.home_of(block.base_addr(BLOCK_BYTES))
    }

    fn home_of_page(self, page: PageAddr) -> NodeId {
        // SplitMix64-style hash of (page, seed): stable pseudo-random
        // placement, uniform across nodes.
        let mut z = page.raw() ^ self.placement_seed.rotate_left(17);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        NodeId::new((z % self.nodes as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_home_is_owner() {
        let s = AddressSpace::new(8, 1);
        for n in 0..8 {
            let node = NodeId::new(n);
            assert_eq!(s.home_of(s.private_addr(node, 5)), node);
            assert_eq!(s.home_of(s.private_cold_addr(node, 999)), node);
        }
    }

    #[test]
    fn regions_are_disjoint() {
        let s = AddressSpace::new(4, 1);
        let a = s.private_addr(NodeId::new(0), 0);
        let b = s.read_only_addr(0);
        let c = s.migratory_addr(0);
        let d = s.prodcons_addr(0);
        let blocks: Vec<u64> = [a, b, c, d].iter().map(|x| x.block(BLOCK_BYTES).raw()).collect();
        let mut unique = blocks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), blocks.len());
        assert_eq!(s.region_of(a), Region::Private);
        for x in [b, c, d] {
            assert_eq!(s.region_of(x), Region::Shared);
        }
    }

    #[test]
    fn shared_pages_spread_over_nodes() {
        let s = AddressSpace::new(16, 7);
        let mut counts = [0u32; 16];
        for i in 0..4096 {
            // Pages differ every 256 blocks of 16 bytes.
            counts[s.home_of(s.read_only_addr(i * 256)).index()] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(c > 128, "node {n} got only {c} of 4096 pages");
        }
    }

    #[test]
    fn home_is_stable_per_page() {
        let s = AddressSpace::new(8, 3);
        let a = s.migratory_addr(3);
        let b = s.migratory_addr(4); // likely same 4 KB page
        if a.page(PAGE_BYTES) == b.page(PAGE_BYTES) {
            assert_eq!(s.home_of(a), s.home_of(b));
        }
        assert_eq!(s.home_of(a), s.home_of(a));
    }

    #[test]
    fn producers_cycle_over_nodes() {
        let s = AddressSpace::new(4, 1);
        assert_eq!(s.producer_of(0), NodeId::new(0));
        assert_eq!(s.producer_of(5), NodeId::new(1));
        assert_eq!(s.producer_of(7), NodeId::new(3));
    }

    #[test]
    fn home_of_block_agrees_with_home_of_addr() {
        let s = AddressSpace::new(8, 9);
        let a = s.prodcons_addr(17);
        assert_eq!(s.home_of_block(a.block(BLOCK_BYTES)), s.home_of(a));
    }

    #[test]
    fn pool_line_bases_avoid_small_pool_conflicts() {
        // Hot (0..2048), RO (2048..4096), migratory (4096..5120) and
        // producer-consumer (5120..8192) pools occupy disjoint line ranges
        // of an 8192-line direct-mapped cache.
        let s = AddressSpace::new(4, 1);
        let lines = 8192u64;
        let hot_line = s.private_addr(NodeId::new(1), 0).block(BLOCK_BYTES).raw() % lines;
        let ro_line = s.read_only_addr(0).block(BLOCK_BYTES).raw() % lines;
        let mig_line = s.migratory_addr(0).block(BLOCK_BYTES).raw() % lines;
        let pc_line = s.prodcons_addr(0).block(BLOCK_BYTES).raw() % lines;
        assert_eq!(hot_line, 0);
        assert_eq!(ro_line, 2048);
        assert_eq!(mig_line, 4096);
        assert_eq!(pc_line, 5120);
    }
}
