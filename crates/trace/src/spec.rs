use serde::{Deserialize, Serialize};

use ringsim_types::ConfigError;

/// Parameters of a synthetic workload.
///
/// The paper drives its simulations with address traces of six parallel
/// programs (SPLASH MP3D/WATER/CHOLESKY and MIT FFT/WEATHER/SIMPLE). Those
/// traces are not available, so `ringsim` substitutes a stochastic reference
/// generator whose knobs map one-to-one onto the published trace
/// characteristics (Table 2) and sharing-pattern mix (Figure 5):
///
/// * the private/shared reference split and write fractions are direct
///   parameters;
/// * the private miss rate is tuned by `private_cold_frac` (references to a
///   much-larger-than-cache pool);
/// * the *shared* miss rate and the miss-type mix are tuned by the blend of
///   three sharing idioms:
///   - **read-only** data (clean misses only),
///   - **migratory** data (read-modify-write episodes that move between
///     processors: dirty misses + single-sharer invalidations),
///   - **producer–consumer** data (one writer, many readers: multi-sharer
///     invalidations, mostly-clean reader misses).
///
/// All randomness is drawn from per-node deterministic streams seeded from
/// `seed`, so a workload is a pure function of its spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name ("mp3d.16", ...).
    pub name: String,
    /// Number of processors.
    pub procs: usize,
    /// Data references generated per processor (after warmup).
    pub data_refs_per_proc: u64,
    /// Additional warmup references per processor, excluded from statistics
    /// but applied to cache state.
    pub warmup_refs_per_proc: u64,
    /// Instruction references per data reference; instruction references
    /// never miss and are charged as processor compute cycles.
    pub instr_per_data: f64,
    /// Probability that a data reference targets the shared region.
    pub shared_frac: f64,
    /// Probability that a private reference is a write.
    pub private_write_frac: f64,
    /// Probability that a private reference targets the cold pool.
    pub private_cold_frac: f64,
    /// Blocks in the per-processor private hot pool (should fit in cache).
    pub private_hot_blocks: u64,
    /// Blocks in the per-processor private cold pool (should dwarf the
    /// cache).
    pub private_cold_blocks: u64,
    /// Weight of the read-only pool among shared references.
    pub shared_read_only_frac: f64,
    /// Weight of the streaming pool among shared references: blocks read
    /// once and never revisited (grid sweeps). Every streaming reference is
    /// a cold miss, making this the direct shared-miss-rate knob.
    pub shared_stream_frac: f64,
    /// Weight of the migratory pool among shared references.
    pub shared_migratory_frac: f64,
    /// Weight of the producer-consumer pool among shared references
    /// (the three weights are normalised internally).
    pub shared_prodcons_frac: f64,
    /// Blocks in the shared read-only pool.
    pub read_only_blocks: u64,
    /// Blocks in the shared migratory pool.
    pub migratory_blocks: u64,
    /// Blocks in the shared producer-consumer pool.
    pub prodcons_blocks: u64,
    /// References per migratory ownership episode (the inverse of the
    /// migratory miss rate).
    pub migratory_run_len: u64,
    /// Probability that a reference inside a migratory episode (after the
    /// leading read) is a write.
    pub migratory_write_frac: f64,
    /// Probability that a producer-consumer reference is the node writing
    /// one of its own blocks (otherwise it reads a random block).
    pub prodcons_producer_frac: f64,
    /// Consecutive references a node makes to the same producer-consumer
    /// block (temporal locality of grid points); the inverse of the
    /// producer-consumer miss/upgrade rate.
    pub prodcons_burst: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Starts a [`WorkloadSpecBuilder`] seeded with the [`demo`] defaults
    /// for `procs` processors; override only the knobs that matter and call
    /// [`build`](WorkloadSpecBuilder::build) to validate.
    ///
    /// [`demo`]: WorkloadSpec::demo
    ///
    /// # Examples
    ///
    /// ```
    /// use ringsim_trace::WorkloadSpec;
    ///
    /// let spec = WorkloadSpec::builder(8)
    ///     .name("my-particles.8")
    ///     .shared_frac(0.4)
    ///     .pool_mix(0.15, 0.05, 0.70, 0.10) // migratory-heavy
    ///     .seed(7)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec.procs, 8);
    /// ```
    #[must_use]
    pub fn builder(procs: usize) -> WorkloadSpecBuilder {
        WorkloadSpecBuilder { spec: Self::demo(procs) }
    }

    /// A small, fast, deliberately share-heavy workload used by unit tests
    /// and examples.
    ///
    /// Positional construction (`WorkloadSpec { .. }` struct literals over
    /// these defaults) is kept for backwards compatibility; prefer
    /// [`WorkloadSpec::builder`], which validates at `build()`.
    #[must_use]
    pub fn demo(procs: usize) -> Self {
        Self {
            name: format!("demo.{procs}"),
            procs,
            data_refs_per_proc: 20_000,
            warmup_refs_per_proc: 4_000,
            instr_per_data: 2.0,
            shared_frac: 0.4,
            private_write_frac: 0.2,
            private_cold_frac: 0.01,
            private_hot_blocks: 256,
            private_cold_blocks: 1 << 16,
            shared_read_only_frac: 0.25,
            shared_stream_frac: 0.05,
            shared_migratory_frac: 0.5,
            shared_prodcons_frac: 0.2,
            read_only_blocks: 512,
            migratory_blocks: 256,
            prodcons_blocks: 128,
            migratory_run_len: 8,
            migratory_write_frac: 0.5,
            prodcons_producer_frac: 0.3,
            prodcons_burst: 4,
            seed: 0xD0_D0,
        }
    }

    /// Returns a copy with a different measured-reference budget (warmup is
    /// scaled proportionally, minimum 1000).
    #[must_use]
    pub fn with_refs(mut self, data_refs_per_proc: u64) -> Self {
        let ratio = self.warmup_refs_per_proc as f64 / self.data_refs_per_proc.max(1) as f64;
        self.data_refs_per_proc = data_refs_per_proc;
        self.warmup_refs_per_proc = ((data_refs_per_proc as f64 * ratio) as u64).max(1_000);
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Normalised weights of the (read-only, streaming, migratory,
    /// producer-consumer) pools.
    #[must_use]
    pub fn pool_weights(&self) -> [f64; 4] {
        let total = self.shared_read_only_frac
            + self.shared_stream_frac
            + self.shared_migratory_frac
            + self.shared_prodcons_frac;
        if total <= 0.0 {
            [0.0; 4]
        } else {
            [
                self.shared_read_only_frac / total,
                self.shared_stream_frac / total,
                self.shared_migratory_frac / total,
                self.shared_prodcons_frac / total,
            ]
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.procs < 2 {
            return Err(ConfigError::new("procs", "need at least 2 processors"));
        }
        if self.procs > 64 {
            // The directory's presence bits are a u64 mask (`DirEntry::mask`),
            // so node indices above 63 would silently alias.
            return Err(ConfigError::new("procs", "at most 64 processors are supported"));
        }
        if self.data_refs_per_proc == 0 {
            return Err(ConfigError::new("data_refs_per_proc", "must be non-zero"));
        }
        for (field, value) in [
            ("instr_per_data", self.instr_per_data),
            ("shared_frac", self.shared_frac),
            ("private_write_frac", self.private_write_frac),
            ("private_cold_frac", self.private_cold_frac),
            ("shared_read_only_frac", self.shared_read_only_frac),
            ("shared_stream_frac", self.shared_stream_frac),
            ("shared_migratory_frac", self.shared_migratory_frac),
            ("shared_prodcons_frac", self.shared_prodcons_frac),
            ("migratory_write_frac", self.migratory_write_frac),
            ("prodcons_producer_frac", self.prodcons_producer_frac),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::new(field, "must be finite and non-negative"));
            }
        }
        for (field, value) in [
            ("shared_frac", self.shared_frac),
            ("private_write_frac", self.private_write_frac),
            ("private_cold_frac", self.private_cold_frac),
            ("migratory_write_frac", self.migratory_write_frac),
            ("prodcons_producer_frac", self.prodcons_producer_frac),
        ] {
            if value > 1.0 {
                return Err(ConfigError::new(field, "must not exceed 1"));
            }
        }
        if self.shared_frac > 0.0 && self.pool_weights() == [0.0; 4] {
            return Err(ConfigError::new(
                "shared_*_frac",
                "shared references requested but all pool weights are zero",
            ));
        }
        if self.private_hot_blocks == 0 || self.private_cold_blocks == 0 {
            return Err(ConfigError::new("private_*_blocks", "pools must be non-empty"));
        }
        let w = self.pool_weights();
        if w[0] > 0.0 && self.read_only_blocks == 0 {
            return Err(ConfigError::new("read_only_blocks", "pool used but empty"));
        }
        if w[2] > 0.0 && self.migratory_blocks == 0 {
            return Err(ConfigError::new("migratory_blocks", "pool used but empty"));
        }
        if w[3] > 0.0 && self.prodcons_blocks < self.procs as u64 {
            return Err(ConfigError::new(
                "prodcons_blocks",
                "need at least one block per producer",
            ));
        }
        if self.migratory_run_len == 0 {
            return Err(ConfigError::new("migratory_run_len", "must be non-zero"));
        }
        if self.prodcons_burst == 0 {
            return Err(ConfigError::new("prodcons_burst", "must be non-zero"));
        }
        Ok(())
    }
}

/// Builder for [`WorkloadSpec`], started by [`WorkloadSpec::builder`].
///
/// Setters override the [`WorkloadSpec::demo`] defaults one knob at a time;
/// nothing is checked until [`build`](Self::build), which runs
/// [`WorkloadSpec::validate`] and surfaces the first offending field as a
/// [`ConfigError`].
#[derive(Debug, Clone)]
pub struct WorkloadSpecBuilder {
    spec: WorkloadSpec,
}

impl WorkloadSpecBuilder {
    /// Sets the human-readable workload name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the measured-reference budget, scaling warmup proportionally
    /// (same rule as [`WorkloadSpec::with_refs`]).
    #[must_use]
    pub fn refs(mut self, data_refs_per_proc: u64) -> Self {
        self.spec = self.spec.with_refs(data_refs_per_proc);
        self
    }

    /// Sets the warmup reference budget directly.
    #[must_use]
    pub fn warmup_refs(mut self, warmup_refs_per_proc: u64) -> Self {
        self.spec.warmup_refs_per_proc = warmup_refs_per_proc;
        self
    }

    /// Sets the instruction references per data reference.
    #[must_use]
    pub fn instr_per_data(mut self, instr_per_data: f64) -> Self {
        self.spec.instr_per_data = instr_per_data;
        self
    }

    /// Sets the probability that a data reference targets the shared
    /// region.
    #[must_use]
    pub fn shared_frac(mut self, shared_frac: f64) -> Self {
        self.spec.shared_frac = shared_frac;
        self
    }

    /// Sets the private write probability.
    #[must_use]
    pub fn private_write_frac(mut self, frac: f64) -> Self {
        self.spec.private_write_frac = frac;
        self
    }

    /// Sets the private cold-pool probability (the private miss-rate knob).
    #[must_use]
    pub fn private_cold_frac(mut self, frac: f64) -> Self {
        self.spec.private_cold_frac = frac;
        self
    }

    /// Sets the private hot/cold pool sizes, in blocks.
    #[must_use]
    pub fn private_pools(mut self, hot_blocks: u64, cold_blocks: u64) -> Self {
        self.spec.private_hot_blocks = hot_blocks;
        self.spec.private_cold_blocks = cold_blocks;
        self
    }

    /// Sets the four sharing-pool weights at once: read-only, streaming,
    /// migratory, producer-consumer (normalised internally).
    #[must_use]
    pub fn pool_mix(mut self, read_only: f64, stream: f64, migratory: f64, prodcons: f64) -> Self {
        self.spec.shared_read_only_frac = read_only;
        self.spec.shared_stream_frac = stream;
        self.spec.shared_migratory_frac = migratory;
        self.spec.shared_prodcons_frac = prodcons;
        self
    }

    /// Sets the shared pool sizes, in blocks: read-only, migratory,
    /// producer-consumer.
    #[must_use]
    pub fn pool_blocks(mut self, read_only: u64, migratory: u64, prodcons: u64) -> Self {
        self.spec.read_only_blocks = read_only;
        self.spec.migratory_blocks = migratory;
        self.spec.prodcons_blocks = prodcons;
        self
    }

    /// Sets the migratory episode length and in-episode write probability.
    #[must_use]
    pub fn migratory(mut self, run_len: u64, write_frac: f64) -> Self {
        self.spec.migratory_run_len = run_len;
        self.spec.migratory_write_frac = write_frac;
        self
    }

    /// Sets the producer-consumer producer probability and burst length.
    #[must_use]
    pub fn prodcons(mut self, producer_frac: f64, burst: u64) -> Self {
        self.spec.prodcons_producer_frac = producer_frac;
        self.spec.prodcons_burst = burst;
        self
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Validates the assembled spec and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`WorkloadSpec::validate`].
    pub fn build(self) -> Result<WorkloadSpec, ConfigError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_valid() {
        WorkloadSpec::demo(4).validate().unwrap();
    }

    #[test]
    fn weights_normalise() {
        let spec = WorkloadSpec { shared_read_only_frac: 2.0, ..WorkloadSpec::demo(4) };
        let w = spec.pool_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1]);
    }

    #[test]
    fn with_refs_scales_warmup() {
        let spec = WorkloadSpec::demo(4).with_refs(200_000);
        assert_eq!(spec.data_refs_per_proc, 200_000);
        assert_eq!(spec.warmup_refs_per_proc, 40_000);
    }

    #[test]
    fn builder_matches_demo_and_validates_at_build() {
        assert_eq!(WorkloadSpec::builder(4).build().unwrap(), WorkloadSpec::demo(4));
        let spec = WorkloadSpec::builder(8)
            .name("custom.8")
            .refs(40_000)
            .shared_frac(0.5)
            .pool_mix(0.1, 0.1, 0.6, 0.2)
            .migratory(6, 0.6)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(spec.name, "custom.8");
        assert_eq!(spec.data_refs_per_proc, 40_000);
        assert_eq!(spec.warmup_refs_per_proc, 8_000);
        assert_eq!(spec.migratory_run_len, 6);
        // Invalid knobs survive the setters and are caught at build().
        assert!(WorkloadSpec::builder(1).build().is_err());
        assert!(WorkloadSpec::builder(4).shared_frac(1.5).build().is_err());
        assert!(WorkloadSpec::builder(4).pool_mix(0.0, 0.0, 0.0, 0.0).build().is_err());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let ok = WorkloadSpec::demo(4);
        assert!(WorkloadSpec { procs: 1, ..ok.clone() }.validate().is_err());
        // 64 is the presence-mask width; 65 would alias node indices.
        assert!(WorkloadSpec::demo(64).validate().is_ok());
        assert!(WorkloadSpec { procs: 65, ..WorkloadSpec::demo(64) }.validate().is_err());
        assert!(WorkloadSpec { shared_frac: 1.5, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { shared_frac: -0.1, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { migratory_run_len: 0, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { prodcons_blocks: 1, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec {
            shared_read_only_frac: 0.0,
            shared_stream_frac: 0.0,
            shared_migratory_frac: 0.0,
            shared_prodcons_frac: 0.0,
            ..ok
        }
        .validate()
        .is_err());
    }
}
