//! Calibrated workload specifications for the paper's six benchmarks.
//!
//! The paper's traces (SPLASH MP3D/WATER/CHOLESKY at 8/16/32 processors,
//! MIT FFT/WEATHER/SIMPLE at 64) are unavailable; these specs parameterise
//! the synthetic generator so that the *protocol-visible* statistics match
//! Table 2 (reference mix, write fractions, miss rates) and the qualitative
//! sharing-pattern mix of Figure 5:
//!
//! * **MP3D** — migratory-dominant, high shared write fraction, high miss
//!   rate; a large 2-cycle/dirty miss population at every size.
//! * **WATER** — very low miss rate, but the misses that do occur are
//!   read-write shared (long migratory episodes), so the dirty fraction is
//!   high.
//! * **CHOLESKY** — mostly-clean misses (large read-mostly working set),
//!   small dirty fraction, rapidly growing miss rate with system size.
//! * **FFT** — write-heavy transpose-style sharing: many dirty misses.
//! * **WEATHER / SIMPLE** — producer-consumer + read-only grids: high miss
//!   rate but a very small fraction of dirty misses.
//!
//! The constants below were calibrated against `ringsim_trace::characterize`
//! (see the `table2` experiment binary) to land within a few tens of percent
//! of the published rates; EXPERIMENTS.md records the achieved values.

use serde::{Deserialize, Serialize};

use ringsim_types::ConfigError;

use crate::spec::WorkloadSpec;

/// Default measured references per processor for experiment runs. The paper
/// replays 3–15 M references per program; the synthetic workloads are
/// statistically stationary, so a few hundred thousand references per
/// processor give stable rates at a fraction of the cost.
pub const DEFAULT_REFS_PER_PROC: u64 = 120_000;

/// Default warmup references per processor (cache fill).
pub const DEFAULT_WARMUP_PER_PROC: u64 = 30_000;

/// The six programs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// SPLASH MP3D: rarefied-fluid particle simulation.
    Mp3d,
    /// SPLASH WATER: molecular dynamics.
    Water,
    /// SPLASH CHOLESKY: sparse Cholesky factorisation.
    Cholesky,
    /// MIT FFT: fast Fourier transform (64 processors).
    Fft,
    /// MIT WEATHER: weather modelling (64 processors).
    Weather,
    /// MIT SIMPLE: hydrodynamics (64 processors).
    Simple,
}

impl Benchmark {
    /// All six benchmarks.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Mp3d,
        Benchmark::Water,
        Benchmark::Cholesky,
        Benchmark::Fft,
        Benchmark::Weather,
        Benchmark::Simple,
    ];

    /// Lower-case name as used in result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mp3d => "mp3d",
            Benchmark::Water => "water",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Fft => "fft",
            Benchmark::Weather => "weather",
            Benchmark::Simple => "simple",
        }
    }

    /// Processor counts the paper evaluates for this benchmark.
    #[must_use]
    pub fn paper_sizes(self) -> &'static [usize] {
        match self {
            Benchmark::Mp3d | Benchmark::Water | Benchmark::Cholesky => &[8, 16, 32],
            Benchmark::Fft | Benchmark::Weather | Benchmark::Simple => &[64],
        }
    }

    /// The calibrated spec for `procs` processors.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the paper does not define this
    /// benchmark at `procs` processors.
    pub fn spec(self, procs: usize) -> Result<WorkloadSpec, ConfigError> {
        if !self.paper_sizes().contains(&procs) {
            return Err(ConfigError::new(
                "procs",
                format!("{} is only defined for {:?} processors", self.name(), self.paper_sizes()),
            ));
        }
        // Knobs per configuration; see the closed forms in the module docs:
        //   shared miss rate ~ st + mig/run + pc*(1-pf)/burst
        //   shared write frac ~ mig*wf*(run-1)/run + pc*pf
        let k = match (self, procs) {
            //                          ipd   shf    pw    cold    (ro,   st,   mig,  pc)   run wf    pf    burst
            (Benchmark::Mp3d, 8) => Knobs {
                ipd: 2.00,
                shared: 0.34,
                pw: 0.22,
                cold: 0.0014,
                ro: 0.20,
                st: 0.03,
                mig: 0.62,
                pc: 0.15,
                run: 12,
                wf: 0.48,
                pf: 0.40,
                burst: 5,
                migs: 24,
                pcs: 12,
            },
            (Benchmark::Mp3d, 16) => Knobs {
                ipd: 2.09,
                shared: 0.36,
                pw: 0.22,
                cold: 0.0018,
                ro: 0.20,
                st: 0.03,
                mig: 0.62,
                pc: 0.15,
                run: 9,
                wf: 0.44,
                pf: 0.40,
                burst: 5,
                migs: 24,
                pcs: 12,
            },
            (Benchmark::Mp3d, 32) => Knobs {
                ipd: 2.41,
                shared: 0.45,
                pw: 0.22,
                cold: 0.0090,
                ro: 0.15,
                st: 0.17,
                mig: 0.55,
                pc: 0.13,
                run: 4,
                wf: 0.40,
                pf: 0.35,
                burst: 5,
                migs: 24,
                pcs: 12,
            },
            (Benchmark::Water, 8) => Knobs {
                ipd: 2.34,
                shared: 0.136,
                pw: 0.18,
                cold: 0.00024,
                ro: 0.52,
                st: 0.003,
                mig: 0.42,
                pc: 0.05,
                run: 70,
                wf: 0.14,
                pf: 0.30,
                burst: 10,
                migs: 6,
                pcs: 3,
            },
            (Benchmark::Water, 16) => Knobs {
                ipd: 2.39,
                shared: 0.159,
                pw: 0.18,
                cold: 0.00033,
                ro: 0.52,
                st: 0.003,
                mig: 0.42,
                pc: 0.05,
                run: 56,
                wf: 0.14,
                pf: 0.30,
                burst: 10,
                migs: 6,
                pcs: 3,
            },
            (Benchmark::Water, 32) => Knobs {
                ipd: 2.42,
                shared: 0.175,
                pw: 0.18,
                cold: 0.00068,
                ro: 0.51,
                st: 0.006,
                mig: 0.42,
                pc: 0.05,
                run: 24,
                wf: 0.14,
                pf: 0.30,
                burst: 10,
                migs: 8,
                pcs: 3,
            },
            (Benchmark::Cholesky, 8) => Knobs {
                ipd: 2.15,
                shared: 0.234,
                pw: 0.21,
                cold: 0.0050,
                ro: 0.47,
                st: 0.06,
                mig: 0.12,
                pc: 0.35,
                run: 12,
                wf: 0.32,
                pf: 0.30,
                burst: 8,
                migs: 8,
                pcs: 16,
            },
            (Benchmark::Cholesky, 16) => Knobs {
                ipd: 2.39,
                shared: 0.289,
                pw: 0.20,
                cold: 0.0090,
                ro: 0.42,
                st: 0.13,
                mig: 0.10,
                pc: 0.35,
                run: 12,
                wf: 0.33,
                pf: 0.17,
                burst: 7,
                migs: 8,
                pcs: 16,
            },
            (Benchmark::Cholesky, 32) => Knobs {
                ipd: 2.75,
                shared: 0.394,
                pw: 0.18,
                cold: 0.0210,
                ro: 0.26,
                st: 0.38,
                mig: 0.06,
                pc: 0.30,
                run: 10,
                wf: 0.47,
                pf: 0.08,
                burst: 5,
                migs: 8,
                pcs: 16,
            },
            (Benchmark::Fft, 64) => Knobs {
                ipd: 0.72,
                shared: 0.239,
                pw: 0.27,
                cold: 0.0073,
                ro: 0.10,
                st: 0.06,
                mig: 0.70,
                pc: 0.14,
                run: 4,
                wf: 0.82,
                pf: 0.50,
                burst: 5,
                migs: 24,
                pcs: 12,
            },
            (Benchmark::Weather, 64) => Knobs {
                ipd: 0.87,
                shared: 0.161,
                pw: 0.16,
                cold: 0.0031,
                ro: 0.26,
                st: 0.26,
                mig: 0.06,
                pc: 0.42,
                run: 10,
                wf: 0.40,
                pf: 0.40,
                burst: 7,
                migs: 8,
                pcs: 16,
            },
            (Benchmark::Simple, 64) => Knobs {
                ipd: 0.83,
                shared: 0.291,
                pw: 0.35,
                cold: 0.0032,
                ro: 0.21,
                st: 0.50,
                mig: 0.05,
                pc: 0.24,
                run: 8,
                wf: 0.60,
                pf: 0.35,
                burst: 6,
                migs: 8,
                pcs: 16,
            },
            _ => unreachable!("paper_sizes checked above"),
        };
        Ok(k.build(self.name(), procs))
    }

    /// The twelve (benchmark, processor-count) configurations of Table 2.
    pub fn paper_configs() -> impl Iterator<Item = (Benchmark, usize)> {
        Benchmark::ALL.into_iter().flat_map(|b| b.paper_sizes().iter().map(move |&p| (b, p)))
    }
}

fn base(name: String, procs: usize) -> WorkloadSpec {
    WorkloadSpec {
        name,
        procs,
        data_refs_per_proc: DEFAULT_REFS_PER_PROC,
        warmup_refs_per_proc: DEFAULT_WARMUP_PER_PROC,
        instr_per_data: 2.0,
        shared_frac: 0.3,
        private_write_frac: 0.2,
        private_cold_frac: 0.001,
        private_hot_blocks: 1024,
        private_cold_blocks: 1 << 18,
        shared_read_only_frac: 0.3,
        shared_stream_frac: 0.0,
        shared_migratory_frac: 0.5,
        shared_prodcons_frac: 0.2,
        read_only_blocks: 1024,
        migratory_blocks: 512,
        prodcons_blocks: 256,
        migratory_run_len: 8,
        migratory_write_frac: 0.5,
        prodcons_producer_frac: 0.3,
        prodcons_burst: 4,
        seed: 0x0019_9305,
    }
}

/// Calibration knobs of one benchmark configuration (see module docs for
/// the closed forms relating them to Table 2 targets).
struct Knobs {
    /// Instruction references per data reference.
    ipd: f64,
    /// Fraction of data references to shared data.
    shared: f64,
    /// Private write fraction.
    pw: f64,
    /// Private cold-pool probability (private miss-rate knob).
    cold: f64,
    /// Pool weights: read-only, streaming, migratory, producer-consumer.
    ro: f64,
    st: f64,
    mig: f64,
    pc: f64,
    /// Migratory episode length.
    run: u64,
    /// Migratory in-episode write probability.
    wf: f64,
    /// Producer fraction of producer-consumer bursts.
    pf: f64,
    /// Producer-consumer burst length.
    burst: u64,
    /// Migratory blocks per processor (small enough that warmup covers the
    /// pool at this workload's episode rate).
    migs: u64,
    /// Producer-consumer blocks per processor.
    pcs: u64,
}

impl Knobs {
    fn build(self, name: &str, procs: usize) -> WorkloadSpec {
        // Slow-churning pools (long migratory episodes) need a longer
        // warmup to cover their working set before measurement starts.
        let warmup =
            if self.run >= 20 { 2 * DEFAULT_WARMUP_PER_PROC } else { DEFAULT_WARMUP_PER_PROC };
        WorkloadSpec {
            warmup_refs_per_proc: warmup,
            instr_per_data: self.ipd,
            shared_frac: self.shared,
            private_write_frac: self.pw,
            private_cold_frac: self.cold,
            shared_read_only_frac: self.ro,
            shared_stream_frac: self.st,
            shared_migratory_frac: self.mig,
            shared_prodcons_frac: self.pc,
            // Small enough to warm up quickly; steady-state behaviour is
            // identical for any size that stays cache-resident.
            read_only_blocks: 192,
            migratory_blocks: self.migs * procs as u64,
            prodcons_blocks: self.pcs * procs as u64,
            migratory_run_len: self.run,
            migratory_write_frac: self.wf,
            prodcons_producer_frac: self.pf,
            prodcons_burst: self.burst,
            ..base(format!("{name}.{procs}"), procs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_configs_are_valid() {
        let mut count = 0;
        for (b, p) in Benchmark::paper_configs() {
            let spec = b.spec(p).unwrap();
            spec.validate().unwrap();
            assert_eq!(spec.procs, p);
            assert!(spec.name.starts_with(b.name()));
            count += 1;
        }
        assert_eq!(count, 12);
    }

    #[test]
    fn undefined_sizes_are_rejected() {
        assert!(Benchmark::Mp3d.spec(64).is_err());
        assert!(Benchmark::Fft.spec(8).is_err());
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
