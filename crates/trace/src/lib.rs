//! Synthetic workload generation and trace characterisation.
//!
//! The paper drives its evaluation with address traces of six parallel
//! programs. Those traces are not distributable, so this crate provides the
//! documented substitution (see `DESIGN.md`): a deterministic stochastic
//! reference generator whose knobs map onto the published per-trace
//! statistics, plus the untimed coherent interpreter used to characterise
//! workloads (Table 2) and to cross-check the timed protocol simulators.
//!
//! * [`WorkloadSpec`] — the generator's parameter set,
//! * [`Benchmark`] — calibrated specs for the paper's 12 configurations,
//! * [`Workload`] / [`NodeStream`] — per-processor reference streams,
//! * [`AddressSpace`] — region layout and home-node placement,
//! * [`RefInterpreter`] / [`characterize`] — the zero-latency coherent
//!   reference semantics and Table 2-style reporting.
//!
//! # Examples
//!
//! ```
//! use ringsim_trace::{characterize, Benchmark};
//!
//! let spec = Benchmark::Mp3d.spec(8).unwrap().with_refs(5_000);
//! let ch = characterize(&spec).unwrap();
//! assert!(ch.events.shared_miss_rate() > ch.events.private_miss_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_specs;
mod file;
mod gen;
mod interp;
mod space;
mod spec;

pub use bench_specs::{Benchmark, DEFAULT_REFS_PER_PROC, DEFAULT_WARMUP_PER_PROC};
pub use file::RecordedTrace;
pub use gen::{NodeStream, Workload};
pub use interp::{characterize, Characteristics, RefInterpreter};
pub use space::{AddressSpace, BLOCK_BYTES, PAGE_BYTES};
pub use spec::{WorkloadSpec, WorkloadSpecBuilder};
