//! Recording and replaying reference traces.
//!
//! The paper's methodology is trace-driven: fixed per-processor address
//! traces are replayed against different architectures. This module gives
//! `ringsim` the same workflow: capture a synthetic workload once with
//! [`RecordedTrace::capture`], persist it in a compact binary format, and
//! rebuild a [`Workload`] whose per-node streams replay the recording
//! byte-for-byte — so different interconnects and protocols can be compared
//! on *identical* reference sequences.
//!
//! ### Format
//!
//! Little-endian, with a fixed header followed by per-node reference runs:
//!
//! ```text
//! magic  "RSTRACE1"            8 bytes
//! procs  u16                   number of processors
//! seed   u64                   address-space placement seed
//! ipd    f64                   instruction refs per data ref
//! per-node: count u64, then count × { addr u64, flags u8 }
//! flags: bit0 = write, bit1 = shared
//! ```

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ringsim_types::{AccessKind, Addr, MemRef, NodeId, Region};

use crate::gen::{NodeStream, Workload};
use crate::space::AddressSpace;
use crate::spec::WorkloadSpec;

const MAGIC: &[u8; 8] = b"RSTRACE1";

/// A captured multiprocessor reference trace.
///
/// # Examples
///
/// ```
/// use ringsim_trace::{RecordedTrace, Workload, WorkloadSpec};
///
/// let spec = WorkloadSpec::demo(4).with_refs(500);
/// let trace = RecordedTrace::capture(&spec).unwrap();
/// let mut replayed = trace.workload();
/// let mut original = Workload::new(spec).unwrap();
/// // Replay reproduces the original streams exactly.
/// for n in 0..4 {
///     for _ in 0..100 {
///         assert_eq!(
///             replayed.streams_mut()[n].next_ref(),
///             original.streams_mut()[n].next_ref()
///         );
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    procs: usize,
    placement_seed: u64,
    instr_per_data: f64,
    per_node: Vec<Arc<[MemRef]>>,
}

impl RecordedTrace {
    /// Captures `spec`'s full reference budget (warmup + measured) for
    /// every node.
    ///
    /// # Errors
    ///
    /// Returns a [`ringsim_types::ConfigError`] when the spec is invalid.
    pub fn capture(spec: &WorkloadSpec) -> Result<Self, ringsim_types::ConfigError> {
        let per_proc = spec.warmup_refs_per_proc + spec.data_refs_per_proc;
        Self::capture_refs(spec, per_proc)
    }

    /// Captures a custom number of references per node.
    ///
    /// # Errors
    ///
    /// Returns a [`ringsim_types::ConfigError`] when the spec is invalid or
    /// `per_proc` is zero.
    pub fn capture_refs(
        spec: &WorkloadSpec,
        per_proc: u64,
    ) -> Result<Self, ringsim_types::ConfigError> {
        if per_proc == 0 {
            return Err(ringsim_types::ConfigError::new(
                "per_proc",
                "must capture at least one reference",
            ));
        }
        let mut workload = Workload::new(spec.clone())?;
        let per_node = workload
            .streams_mut()
            .iter_mut()
            .map(|s| (0..per_proc).map(|_| s.next_ref()).collect::<Vec<_>>().into())
            .collect();
        Ok(Self {
            procs: spec.procs,
            placement_seed: spec.seed ^ 0x5eed_9a9e,
            instr_per_data: spec.instr_per_data,
            per_node,
        })
    }

    /// Builds a trace from hand-written per-node reference sequences —
    /// the scripting hook used by protocol scenario tests: each node's
    /// references replay in order, so exact coherence interactions can be
    /// staged.
    ///
    /// `placement_seed` fixes shared-page home placement;
    /// addresses in the private region carry their home explicitly.
    ///
    /// # Errors
    ///
    /// Returns a [`ringsim_types::ConfigError`] when there are fewer than
    /// 2 or more than 64 nodes, any node has no references, or a reference
    /// names the wrong node.
    pub fn from_refs(
        per_node: Vec<Vec<MemRef>>,
        placement_seed: u64,
        instr_per_data: f64,
    ) -> Result<Self, ringsim_types::ConfigError> {
        use ringsim_types::ConfigError;
        if per_node.len() < 2 || per_node.len() > 64 {
            return Err(ConfigError::new("per_node", "need 2..=64 nodes"));
        }
        for (n, refs) in per_node.iter().enumerate() {
            if refs.is_empty() {
                return Err(ConfigError::new("per_node", format!("node {n} has no references")));
            }
            if refs.iter().any(|r| r.node.index() != n) {
                return Err(ConfigError::new(
                    "per_node",
                    format!("node {n} holds a reference issued by another node"),
                ));
            }
        }
        if !instr_per_data.is_finite() || instr_per_data < 0.0 {
            return Err(ConfigError::new("instr_per_data", "must be finite and non-negative"));
        }
        Ok(Self {
            procs: per_node.len(),
            placement_seed,
            instr_per_data,
            per_node: per_node.into_iter().map(Into::into).collect(),
        })
    }

    /// Like [`RecordedTrace::workload`] but with an explicit
    /// warmup/measured split of each node's reference budget (scenario
    /// tests usually want `warmup = 0` so every event is counted).
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not smaller than the shortest node recording.
    #[must_use]
    pub fn workload_with_warmup(&self, warmup: u64) -> Workload {
        let shortest = self.per_node.iter().map(|v| v.len() as u64).min().unwrap_or(0);
        assert!(warmup < shortest, "warmup {warmup} >= shortest recording {shortest}");
        let space = AddressSpace::new(self.procs, self.placement_seed);
        let streams = self
            .per_node
            .iter()
            .enumerate()
            .map(|(n, refs)| {
                NodeStream::replay(NodeId::new(n), self.instr_per_data, Arc::clone(refs))
            })
            .collect();
        let mut spec = self.replay_spec();
        spec.warmup_refs_per_proc = warmup;
        spec.data_refs_per_proc = shortest - warmup;
        Workload::from_parts(spec, space, streams)
    }

    /// Number of processors in the trace.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// References captured for node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn node_refs(&self, n: usize) -> &[MemRef] {
        &self.per_node[n]
    }

    /// Total references across all nodes.
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.per_node.iter().map(|v| v.len() as u64).sum()
    }

    /// Builds a [`Workload`] whose streams replay this trace (cyclically if
    /// a simulator consumes more references than were recorded).
    #[must_use]
    pub fn workload(&self) -> Workload {
        let space = AddressSpace::new(self.procs, self.placement_seed);
        let streams = self
            .per_node
            .iter()
            .enumerate()
            .map(|(n, refs)| {
                NodeStream::replay(NodeId::new(n), self.instr_per_data, Arc::clone(refs))
            })
            .collect();
        Workload::from_parts(self.replay_spec(), space, streams)
    }

    /// A spec describing the replay (used by simulators for the reference
    /// budget; the pool knobs are irrelevant and zeroed where possible).
    fn replay_spec(&self) -> WorkloadSpec {
        let per_proc = self.per_node.first().map_or(1, |v| v.len() as u64);
        let warmup = (per_proc / 5).max(1);
        WorkloadSpec {
            name: format!("replay.{}", self.procs),
            procs: self.procs,
            data_refs_per_proc: per_proc.saturating_sub(warmup).max(1),
            warmup_refs_per_proc: warmup,
            instr_per_data: self.instr_per_data,
            ..WorkloadSpec::demo(self.procs.max(2))
        }
    }

    /// Serialises the trace to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.total_refs() as usize * 9);
        buf.put_slice(MAGIC);
        buf.put_u16_le(self.procs as u16);
        buf.put_u64_le(self.placement_seed);
        buf.put_f64_le(self.instr_per_data);
        for refs in &self.per_node {
            buf.put_u64_le(refs.len() as u64);
            for r in refs.iter() {
                buf.put_u64_le(r.addr.raw());
                let flags = u8::from(r.kind.is_write()) | (u8::from(r.region.is_shared()) << 1);
                buf.put_u8(flags);
            }
        }
        buf.freeze()
    }

    /// Deserialises a trace.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] with `InvalidData` on magic/structure
    /// mismatch or truncation.
    pub fn from_bytes(mut data: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        if data.len() < 26 || &data[..8] != MAGIC {
            return Err(bad("not a ringsim trace (bad magic)"));
        }
        data.advance(8);
        let procs = usize::from(data.get_u16_le());
        if procs == 0 || procs > 64 {
            return Err(bad("processor count out of range"));
        }
        let placement_seed = data.get_u64_le();
        let instr_per_data = data.get_f64_le();
        if !instr_per_data.is_finite() || instr_per_data < 0.0 {
            return Err(bad("invalid instruction ratio"));
        }
        let mut per_node = Vec::with_capacity(procs);
        for n in 0..procs {
            if data.remaining() < 8 {
                return Err(bad("truncated trace (missing node header)"));
            }
            let count = data.get_u64_le() as usize;
            if data.remaining() < count * 9 {
                return Err(bad("truncated trace (missing references)"));
            }
            let mut refs = Vec::with_capacity(count);
            for _ in 0..count {
                let addr = Addr::new(data.get_u64_le());
                let flags = data.get_u8();
                refs.push(MemRef {
                    node: NodeId::new(n),
                    addr,
                    kind: if flags & 1 != 0 { AccessKind::Write } else { AccessKind::Read },
                    region: if flags & 2 != 0 { Region::Shared } else { Region::Private },
                });
            }
            per_node.push(refs.into());
        }
        Ok(Self { procs, placement_seed, instr_per_data, per_node })
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Returns any [`io::Error`] from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Reads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns any [`io::Error`] from the filesystem or the parser.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> RecordedTrace {
        RecordedTrace::capture_refs(&WorkloadSpec::demo(4), 300).unwrap()
    }

    #[test]
    fn capture_matches_generator() {
        let spec = WorkloadSpec::demo(4);
        let trace = RecordedTrace::capture_refs(&spec, 200).unwrap();
        let mut w = Workload::new(spec).unwrap();
        for n in 0..4 {
            for i in 0..200 {
                assert_eq!(trace.node_refs(n)[i], w.streams_mut()[n].next_ref());
            }
        }
    }

    #[test]
    fn byte_roundtrip_is_lossless() {
        let trace = small_trace();
        let bytes = trace.to_bytes();
        let back = RecordedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn file_roundtrip() {
        let trace = small_trace();
        let dir = std::env::temp_dir().join("ringsim-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.rstrace");
        trace.save(&path).unwrap();
        let back = RecordedTrace::load(&path).unwrap();
        assert_eq!(trace, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_workload_reproduces_trace() {
        let trace = small_trace();
        let mut w = trace.workload();
        for n in 0..4 {
            for i in 0..300 {
                assert_eq!(w.streams_mut()[n].next_ref(), trace.node_refs(n)[i]);
            }
            // Replay wraps around.
            assert_eq!(w.streams_mut()[n].next_ref(), trace.node_refs(n)[0]);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(RecordedTrace::from_bytes(b"not a trace").is_err());
        let mut bytes = small_trace().to_bytes().to_vec();
        bytes.truncate(bytes.len() / 2);
        assert!(RecordedTrace::from_bytes(&bytes).is_err());
        bytes[0] = b'X';
        assert!(RecordedTrace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn replay_preserves_home_mapping() {
        let spec = WorkloadSpec::demo(4);
        let trace = RecordedTrace::capture_refs(&spec, 100).unwrap();
        let original = Workload::new(spec).unwrap();
        let replay = trace.workload();
        for r in trace.node_refs(0) {
            assert_eq!(original.space().home_of(r.addr), replay.space().home_of(r.addr));
        }
    }
}
