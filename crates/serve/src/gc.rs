//! Artifact retention: a size/age budget over `<out>/runs/*`.
//!
//! Run directories accumulate forever without a policy — every distinct
//! `(experiment, refs)` submission leaves artifacts plus a point cache on
//! disk. The sweeper periodically scans the runs root and deletes
//! directories the policy marks evictable, with three hard safety rules
//! (locked by a property test in `tests/gc_policy.rs`):
//!
//! * **in-flight runs are untouchable** — a run whose job is queued or
//!   running is never a candidate, whatever its size or age;
//! * **pinned runs are untouchable** — `POST /runs/:id/pin` drops a
//!   `.pinned` marker file into the run directory, and pinned directories
//!   are skipped even when the size budget is blown;
//! * **just-created runs are untouchable** — directories younger than the
//!   policy's `min_age` are skipped, so a run is never reaped between its
//!   final artifact write and the client's first fetch.
//!
//! Within those rules the policy is two simple axes: runs older than
//! `max_age` expire unconditionally, and when the root's total size
//! exceeds `max_total_bytes` the oldest evictable runs go first until the
//! total fits the budget. [`plan`] is a pure function from a scan snapshot
//! to the eviction list — the sweeper's only side effects are the scan and
//! the deletions — which is what makes the policy property-testable.

use std::path::Path;
use std::time::Duration;

/// The retention policy knobs (`0` disables an axis).
#[derive(Debug, Clone, Copy)]
pub struct GcPolicy {
    /// Total size budget for `<out>/runs` in bytes; `0` = unlimited.
    pub max_total_bytes: u64,
    /// Runs older than this expire unconditionally; zero = never.
    pub max_age: Duration,
    /// Runs younger than this are never deleted (fetch grace window).
    pub min_age: Duration,
}

impl GcPolicy {
    /// Whether both axes are disabled (the sweeper can skip scanning).
    #[must_use]
    pub fn disabled(&self) -> bool {
        self.max_total_bytes == 0 && self.max_age.is_zero()
    }
}

/// One run directory as the sweeper's scan saw it.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// Run id (directory name under `<out>/runs`).
    pub id: String,
    /// Recursive size of the directory in bytes.
    pub bytes: u64,
    /// Time since the directory was last modified.
    pub age: Duration,
    /// Whether the run's job is queued or running.
    pub active: bool,
    /// Whether the directory carries a `.pinned` marker.
    pub pinned: bool,
}

/// Pure eviction planner: which run ids the sweeper should delete, given a
/// scan snapshot and the policy. Never returns an active, pinned, or
/// younger-than-`min_age` run.
#[must_use]
pub fn plan(runs: &[RunInfo], policy: &GcPolicy) -> Vec<String> {
    let evictable = |r: &&RunInfo| !r.active && !r.pinned && r.age >= policy.min_age;
    let mut doomed: Vec<&RunInfo> = Vec::new();
    // Age axis: expired runs go regardless of the size budget.
    if !policy.max_age.is_zero() {
        doomed.extend(runs.iter().filter(evictable).filter(|r| r.age > policy.max_age));
    }
    // Size axis: evict oldest-first until the total fits the budget.
    if policy.max_total_bytes > 0 {
        let total: u64 = runs.iter().map(|r| r.bytes).sum();
        let already: u64 = doomed.iter().map(|r| r.bytes).sum();
        let mut excess = total.saturating_sub(already).saturating_sub(policy.max_total_bytes);
        if excess > 0 {
            let mut candidates: Vec<&RunInfo> = runs
                .iter()
                .filter(evictable)
                .filter(|r| !doomed.iter().any(|d| d.id == r.id))
                .collect();
            candidates.sort_by(|a, b| b.age.cmp(&a.age).then_with(|| a.id.cmp(&b.id)));
            for r in candidates {
                if excess == 0 {
                    break;
                }
                excess = excess.saturating_sub(r.bytes);
                doomed.push(r);
            }
        }
    }
    doomed.iter().map(|r| r.id.clone()).collect()
}

/// Recursive directory size in bytes (symlinks not followed; errors count
/// as zero — retention is advisory, not accounting).
#[must_use]
pub fn dir_size(path: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(path) else { return 0 };
    let mut total = 0;
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            total += dir_size(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

/// Scans `<out>/runs` into a [`RunInfo`] snapshot. `is_active` answers
/// "is this run's job queued or running" (the pool knows, this module
/// doesn't).
#[must_use]
pub fn scan(runs_root: &Path, is_active: impl Fn(&str) -> bool) -> Vec<RunInfo> {
    let Ok(entries) = std::fs::read_dir(runs_root) else { return Vec::new() };
    let mut runs = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let id = entry.file_name().to_string_lossy().into_owned();
        let age = entry
            .metadata()
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.elapsed().ok())
            .unwrap_or(Duration::ZERO);
        runs.push(RunInfo {
            active: is_active(&id),
            pinned: path.join(".pinned").is_file(),
            bytes: dir_size(&path),
            age,
            id,
        });
    }
    runs
}

/// What one sweep did (feeds the `/metrics` GC counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOutcome {
    /// Run directories deleted.
    pub deleted_runs: u64,
    /// Bytes those directories held.
    pub reclaimed_bytes: u64,
}

/// One full sweep: scan, plan, delete, forget. `forget` unregisters a
/// deleted run from the job map (so its id maps to 404, not a dangling
/// "done" status); a run that went active between scan and delete is
/// skipped — `forget` refusing is the authoritative re-check.
pub fn sweep_once(
    runs_root: &Path,
    policy: &GcPolicy,
    is_active: impl Fn(&str) -> bool,
    forget: impl Fn(&str) -> bool,
) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    if policy.disabled() {
        return outcome;
    }
    let runs = scan(runs_root, &is_active);
    for id in plan(&runs, policy) {
        // Re-check liveness at deletion time: the plan snapshot races with
        // submissions, and an id that re-entered the queue must survive.
        if is_active(&id) {
            continue;
        }
        let info = runs.iter().find(|r| r.id == id).expect("planned id came from the scan");
        let path = runs_root.join(&id);
        forget(&id);
        if std::fs::remove_dir_all(&path).is_ok() {
            outcome.deleted_runs += 1;
            outcome.reclaimed_bytes += info.bytes;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(id: &str, bytes: u64, age_secs: u64, active: bool, pinned: bool) -> RunInfo {
        RunInfo { id: id.to_owned(), bytes, age: Duration::from_secs(age_secs), active, pinned }
    }

    #[test]
    fn age_axis_expires_old_runs_only() {
        let policy = GcPolicy {
            max_total_bytes: 0,
            max_age: Duration::from_secs(100),
            min_age: Duration::from_secs(10),
        };
        let runs = vec![
            run("old", 5, 200, false, false),
            run("fresh", 5, 50, false, false),
            run("old-active", 5, 200, true, false),
            run("old-pinned", 5, 200, false, true),
            run("newborn", 5, 1, false, false),
        ];
        assert_eq!(plan(&runs, &policy), vec!["old".to_owned()]);
    }

    #[test]
    fn size_axis_evicts_oldest_first_until_budget_fits() {
        let policy =
            GcPolicy { max_total_bytes: 100, max_age: Duration::ZERO, min_age: Duration::ZERO };
        let runs = vec![
            run("a", 60, 300, false, false),
            run("b", 60, 200, false, false),
            run("c", 60, 100, false, false),
        ];
        // 180 total, budget 100: drop the two oldest (a, b) to reach 60.
        assert_eq!(plan(&runs, &policy), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn pinned_and_active_survive_even_over_budget() {
        let policy =
            GcPolicy { max_total_bytes: 10, max_age: Duration::ZERO, min_age: Duration::ZERO };
        let runs = vec![run("pin", 500, 900, false, true), run("act", 500, 900, true, false)];
        assert!(plan(&runs, &policy).is_empty());
    }

    #[test]
    fn disabled_policy_plans_nothing() {
        let policy =
            GcPolicy { max_total_bytes: 0, max_age: Duration::ZERO, min_age: Duration::ZERO };
        assert!(policy.disabled());
        assert!(plan(&[run("x", 1 << 40, 1 << 30, false, false)], &policy).is_empty());
    }

    #[test]
    fn sweep_once_deletes_planned_dirs_and_reports_bytes() {
        let root = std::env::temp_dir().join(format!("ringsim-gc-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for id in ["kept-active", "kept-pinned", "doomed"] {
            let dir = root.join(id);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("fig3.json"), vec![b'x'; 1000]).unwrap();
        }
        std::fs::write(root.join("kept-pinned").join(".pinned"), b"").unwrap();
        let policy =
            GcPolicy { max_total_bytes: 1, max_age: Duration::ZERO, min_age: Duration::ZERO };
        let forgotten = std::sync::Mutex::new(Vec::new());
        let outcome = sweep_once(
            &root,
            &policy,
            |id| id == "kept-active",
            |id| {
                forgotten.lock().unwrap().push(id.to_owned());
                true
            },
        );
        assert_eq!(outcome.deleted_runs, 1);
        assert!(outcome.reclaimed_bytes >= 1000);
        assert!(!root.join("doomed").exists());
        assert!(root.join("kept-active").exists() && root.join("kept-pinned").exists());
        assert_eq!(*forgotten.lock().unwrap(), vec!["doomed".to_owned()]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
