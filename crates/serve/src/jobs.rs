//! The bounded asynchronous job pool behind `POST /runs`.
//!
//! Each job runs one registry experiment through the sweep engine
//! ([`ringsim_sweep::run_experiment`]) inside a dedicated per-run output
//! directory `<out_root>/runs/<id>`. Because the run id is a **pure
//! function of the submission** — the sweep-point key scheme
//! ([`SweepPoint::seed`]) applied to `(experiment, refs)` — identical
//! submissions dedupe onto the same job *and* the same directory, so a
//! re-submission after a restart lands on a warm `<dir>/.cache` and
//! re-executes zero points.
//!
//! The queue is bounded: submissions beyond [`JobPool`]'s capacity are
//! rejected with [`SubmitOutcome::QueueFull`] (the HTTP layer maps this to
//! 429). During drain ([`JobPool::shutdown`]) new submissions are rejected
//! with [`SubmitOutcome::Draining`] (503) while workers finish every job
//! already accepted — nothing accepted is ever lost mid-write.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ringsim_sweep::{run_experiment, Experiment, Progress, ProgressFn, SweepConfig, SweepPoint};
use serde::{Serialize, Value};

/// Lifecycle state of a job. Serialises as its lower-case name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the sweep.
    Running,
    /// Finished; artifacts are servable.
    Done,
    /// The experiment panicked; see the status `error` field.
    Failed,
}

impl JobState {
    /// The wire form (`"queued"`, `"running"`, `"done"`, `"failed"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

impl Serialize for JobState {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

/// Per-point progress counters of a job.
#[derive(Debug, Clone, Serialize)]
pub struct PointsProgress {
    /// Points submitted so far across the experiment's `map` calls.
    pub total: u64,
    /// Points finished (computed or cache-served).
    pub completed: u64,
}

/// Sweep-cache hit/miss counters of a job.
#[derive(Debug, Clone, Serialize)]
pub struct CacheCounts {
    /// Points served from the per-point cache.
    pub hits: u64,
    /// Points actually (re)computed.
    pub misses: u64,
}

/// A serialisable snapshot of one job (the `GET /runs/:id` body).
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    /// Deterministic run id.
    pub id: String,
    /// Experiment registry name.
    pub experiment: String,
    /// Per-processor reference budget.
    pub refs: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Per-point progress.
    pub points: PointsProgress,
    /// Sweep-cache counters (zero misses ⇒ the run was fully warm).
    pub cache: CacheCounts,
    /// Artifact file names servable under `/runs/:id/artifacts/:file`.
    pub artifacts: Vec<String>,
    /// Failure message, if [`JobState::Failed`].
    pub error: Option<String>,
}

/// Aggregate job counts (the `/metrics` digest).
#[derive(Debug, Clone, Default, Serialize)]
pub struct JobCounts {
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
}

/// What [`JobPool::submit`] decided.
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// A new job was enqueued.
    Created(JobStatus),
    /// An identical submission already exists; its status is returned.
    Deduped(JobStatus),
    /// The bounded queue is full — retry later (429).
    QueueFull,
    /// The pool is draining for shutdown — no new work (503).
    Draining,
}

/// Mutable (lock-guarded) portion of a job.
#[derive(Debug)]
struct JobStateData {
    state: JobState,
    artifacts: Vec<String>,
    error: Option<String>,
}

/// One job: identity plus live progress counters.
struct JobInner {
    id: String,
    exp: &'static dyn Experiment,
    refs: u64,
    total: AtomicU64,
    completed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    state: Mutex<JobStateData>,
}

impl JobInner {
    fn new(id: String, exp: &'static dyn Experiment, refs: u64) -> Self {
        Self {
            id,
            exp,
            refs,
            total: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            state: Mutex::new(JobStateData {
                state: JobState::Queued,
                artifacts: Vec::new(),
                error: None,
            }),
        }
    }

    fn status(&self) -> JobStatus {
        let st = self.state.lock().expect("job state lock");
        JobStatus {
            id: self.id.clone(),
            experiment: self.exp.name().to_owned(),
            refs: self.refs,
            state: st.state,
            points: PointsProgress {
                total: self.total.load(Ordering::Relaxed),
                completed: self.completed.load(Ordering::Relaxed),
            },
            cache: CacheCounts {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
            },
            artifacts: st.artifacts.clone(),
            error: st.error.clone(),
        }
    }
}

/// Shared pool state (behind an `Arc` for the worker threads).
struct PoolShared {
    jobs: Mutex<HashMap<String, Arc<JobInner>>>,
    queue: Mutex<VecDeque<Arc<JobInner>>>,
    available: Condvar,
    queue_cap: usize,
    draining: AtomicBool,
    running: AtomicU64,
    out_root: PathBuf,
    /// Worker threads per sweep (`0` = the engine default).
    sweep_jobs: usize,
}

/// Bounded worker pool executing experiment runs.
pub struct JobPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobPool {
    /// Spawns `workers` job-worker threads. `queue_cap` bounds how many
    /// jobs may wait (running jobs excluded); `sweep_jobs` is the sweep
    /// engine's per-job thread budget (`0` = engine default).
    #[must_use]
    pub fn new(out_root: PathBuf, workers: usize, queue_cap: usize, sweep_jobs: usize) -> Self {
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_cap,
            draining: AtomicBool::new(false),
            running: AtomicU64::new(0),
            out_root,
            sweep_jobs,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("job-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn job worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(handles) }
    }

    /// Deterministic run id for a submission: the sweep-point key scheme
    /// (FNV-1a + SplitMix64, see [`SweepPoint::seed`]) over
    /// `(experiment, refs)`, rendered as 16 hex digits. Identical
    /// submissions therefore share a job, an output directory, and its
    /// point cache.
    #[must_use]
    pub fn run_id(experiment: &str, refs: u64) -> String {
        format!("{:016x}", SweepPoint::new().detail(format!("refs={refs}")).seed(experiment))
    }

    /// Where a run's artifacts live.
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.shared.out_root.join("runs").join(id)
    }

    /// Submits `(experiment, refs)`: dedupes onto an existing non-failed
    /// job, else enqueues a new one (subject to queue capacity and drain
    /// state). A failed job is re-enqueued by an identical submission.
    pub fn submit(&self, exp: &'static dyn Experiment, refs: u64) -> SubmitOutcome {
        if self.shared.draining.load(Ordering::SeqCst) {
            return SubmitOutcome::Draining;
        }
        let id = Self::run_id(exp.name(), refs);
        let mut jobs = self.shared.jobs.lock().expect("jobs lock");
        if let Some(existing) = jobs.get(&id) {
            let failed = existing.state.lock().expect("job state lock").state == JobState::Failed;
            if !failed {
                return SubmitOutcome::Deduped(existing.status());
            }
        }
        let mut queue = self.shared.queue.lock().expect("queue lock");
        if queue.len() >= self.shared.queue_cap {
            return SubmitOutcome::QueueFull;
        }
        let job = Arc::new(JobInner::new(id.clone(), exp, refs));
        jobs.insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        self.shared.available.notify_one();
        SubmitOutcome::Created(job.status())
    }

    /// Status snapshot of a job, if it exists.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        self.shared.jobs.lock().expect("jobs lock").get(id).map(|j| j.status())
    }

    /// Aggregate per-state counts.
    #[must_use]
    pub fn counts(&self) -> JobCounts {
        let jobs = self.shared.jobs.lock().expect("jobs lock");
        let mut c = JobCounts::default();
        for j in jobs.values() {
            match j.state.lock().expect("job state lock").state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// Starts draining: rejects new submissions and wakes idle workers so
    /// they can exit once the queue is empty. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether nothing is queued or running (safe to stop serving).
    #[must_use]
    pub fn drained(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst) == 0
            && self.shared.queue.lock().expect("queue lock").is_empty()
    }

    /// Joins the worker threads (call after [`JobPool::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().expect("workers lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Worker body: pop → run → repeat; exit when draining and the queue is
/// empty. Jobs already accepted are always finished (drain semantics).
fn worker_loop(pool: &PoolShared) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    // Running before the queue lock drops, so `drained()`
                    // can never observe "empty queue, nothing running"
                    // while this job is in hand-off.
                    pool.running.fetch_add(1, Ordering::SeqCst);
                    break j;
                }
                if pool.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = pool.available.wait(q).expect("queue condvar");
            }
        };
        run_job(pool, &job);
        pool.running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes one job through the sweep engine, feeding its live counters
/// from the engine's progress callback.
fn run_job(pool: &PoolShared, job: &Arc<JobInner>) {
    job.state.lock().expect("job state lock").state = JobState::Running;
    let dir = pool.out_root.join("runs").join(&job.id);
    let progress: ProgressFn = {
        let job = Arc::clone(job);
        Arc::new(move |ev| match ev {
            Progress::MapStarted { points } => {
                job.total.fetch_add(*points as u64, Ordering::Relaxed);
            }
            Progress::PointDone { cached, .. } => {
                job.completed.fetch_add(1, Ordering::Relaxed);
                let counter = if *cached { &job.hits } else { &job.misses };
                counter.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    let mut cfg = SweepConfig::new(job.refs).out_dir(&dir).cache(true).on_progress(progress);
    if pool.sweep_jobs > 0 {
        cfg = cfg.jobs(pool.sweep_jobs);
    }
    let exp = job.exp;
    match catch_unwind(AssertUnwindSafe(|| run_experiment(exp, &cfg))) {
        Ok(report) => {
            // The meta twin is authoritative; progress counters converge to
            // the same values, but store them explicitly for exactness.
            job.total.store(report.meta.points as u64, Ordering::Relaxed);
            job.completed.store(report.meta.points as u64, Ordering::Relaxed);
            job.hits.store(report.meta.cache_hits, Ordering::Relaxed);
            job.misses.store(report.meta.cache_misses, Ordering::Relaxed);
            let mut st = job.state.lock().expect("job state lock");
            st.artifacts = report
                .artifacts
                .iter()
                .filter_map(|a| a.path.file_name().map(|f| f.to_string_lossy().into_owned()))
                .collect();
            st.state = JobState::Done;
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "experiment panicked".to_owned());
            let mut st = job.state.lock().expect("job state lock");
            st.error = Some(msg);
            st.state = JobState::Failed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ringsim-serve-jobs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn run_ids_are_deterministic_and_axis_separated() {
        let a = JobPool::run_id("fig3", 10_000);
        assert_eq!(a, JobPool::run_id("fig3", 10_000));
        assert_eq!(a.len(), 16);
        assert_ne!(a, JobPool::run_id("fig3", 10_001));
        assert_ne!(a, JobPool::run_id("fig4", 10_000));
    }

    #[test]
    fn zero_capacity_queue_rejects_submissions() {
        let dir = tmp("cap0");
        let pool = JobPool::new(dir.clone(), 1, 0, 1);
        let exp = ringsim_bench::experiments::find("fig3").unwrap();
        assert!(matches!(pool.submit(exp, 123), SubmitOutcome::QueueFull));
        pool.shutdown();
        pool.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_pool_rejects_submissions() {
        let dir = tmp("drain");
        let pool = JobPool::new(dir.clone(), 1, 4, 1);
        pool.shutdown();
        let exp = ringsim_bench::experiments::find("fig3").unwrap();
        assert!(matches!(pool.submit(exp, 123), SubmitOutcome::Draining));
        pool.join();
        assert!(pool.drained());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
