//! The bounded asynchronous job pool behind `POST /runs`.
//!
//! Each job runs one registry experiment through the sweep engine
//! ([`ringsim_sweep::run_experiment`]) inside a dedicated per-run output
//! directory `<out_root>/runs/<id>`. Because the run id is a **pure
//! function of the submission** — the sweep-point key scheme
//! ([`SweepPoint::seed`]) applied to `(experiment, refs)` — identical
//! submissions dedupe onto the same job *and* the same directory, so a
//! re-submission after a restart lands on a warm `<dir>/.cache` and
//! re-executes zero points.
//!
//! The queue is bounded: submissions beyond [`JobPool`]'s capacity are
//! rejected with [`SubmitOutcome::QueueFull`] (the HTTP layer maps this to
//! 429). During drain ([`JobPool::shutdown`]) new submissions are rejected
//! with [`SubmitOutcome::Draining`] (503) while workers finish every job
//! already accepted — nothing accepted is ever lost mid-write.

use std::collections::{HashMap, VecDeque};
use std::io::BufRead as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ringsim_sweep::{
    run_experiment, Experiment, Progress, ProgressFn, Shard, SweepConfig, SweepPoint,
};
use serde::{Serialize, Value};

use crate::worker::WireEvent;
use crate::ServeConfig;

/// Lifecycle state of a job. Serialises as its lower-case name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the sweep.
    Running,
    /// Finished; artifacts are servable.
    Done,
    /// The experiment panicked; see the status `error` field.
    Failed,
}

impl JobState {
    /// The wire form (`"queued"`, `"running"`, `"done"`, `"failed"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

impl Serialize for JobState {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

/// Per-point progress counters of a job.
#[derive(Debug, Clone, Serialize)]
pub struct PointsProgress {
    /// Points submitted so far across the experiment's `map` calls.
    pub total: u64,
    /// Points finished (computed or cache-served).
    pub completed: u64,
}

/// Sweep-cache hit/miss counters of a job.
#[derive(Debug, Clone, Serialize)]
pub struct CacheCounts {
    /// Points served from the per-point cache.
    pub hits: u64,
    /// Points actually (re)computed.
    pub misses: u64,
}

/// A serialisable snapshot of one job (the `GET /runs/:id` body).
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    /// Deterministic run id.
    pub id: String,
    /// Experiment registry name.
    pub experiment: String,
    /// Per-processor reference budget.
    pub refs: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Per-point progress.
    pub points: PointsProgress,
    /// Sweep-cache counters (zero misses ⇒ the run was fully warm).
    pub cache: CacheCounts,
    /// Artifact file names servable under `/runs/:id/artifacts/:file`.
    pub artifacts: Vec<String>,
    /// Failure message, if [`JobState::Failed`].
    pub error: Option<String>,
}

/// Aggregate job counts (the `/metrics` digest).
#[derive(Debug, Clone, Default, Serialize)]
pub struct JobCounts {
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
}

/// What [`JobPool::submit`] decided.
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// A new job was enqueued.
    Created(JobStatus),
    /// An identical submission already exists; its status is returned.
    Deduped(JobStatus),
    /// The bounded queue is full — retry later (429).
    QueueFull,
    /// The pool is draining for shutdown — no new work (503).
    Draining,
}

/// Mutable (lock-guarded) portion of a job.
#[derive(Debug)]
struct JobStateData {
    state: JobState,
    artifacts: Vec<String>,
    error: Option<String>,
}

/// One server-sent event in a job's live stream (`GET /runs/:id/events`).
/// Kinds: `state` (lifecycle transition), `progress` (one point finished),
/// `done` / `failed` (terminal — the stream closes after one of these).
#[derive(Debug, Clone)]
pub struct SseEvent {
    /// SSE `event:` field.
    pub event: &'static str,
    /// SSE `data:` field — a single-line JSON document.
    pub data: String,
}

impl SseEvent {
    /// Whether this event ends the stream.
    #[must_use]
    pub fn terminal(&self) -> bool {
        matches!(self.event, "done" | "failed")
    }
}

/// One job: identity plus live progress counters and the event log every
/// SSE subscriber replays (late subscribers see the full history, so a
/// stream over a finished job is the whole run followed by the terminal
/// event).
struct JobInner {
    id: String,
    exp: &'static dyn Experiment,
    refs: u64,
    total: AtomicU64,
    completed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    state: Mutex<JobStateData>,
    events: Mutex<Vec<SseEvent>>,
    events_cv: Condvar,
}

impl JobInner {
    fn new(id: String, exp: &'static dyn Experiment, refs: u64) -> Self {
        let job = Self {
            id,
            exp,
            refs,
            total: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            state: Mutex::new(JobStateData {
                state: JobState::Queued,
                artifacts: Vec::new(),
                error: None,
            }),
            events: Mutex::new(Vec::new()),
            events_cv: Condvar::new(),
        };
        job.push_state_event(JobState::Queued);
        job
    }

    fn push_event(&self, event: &'static str, data: String) {
        self.events.lock().expect("events lock").push(SseEvent { event, data });
        self.events_cv.notify_all();
    }

    fn push_state_event(&self, state: JobState) {
        #[derive(Serialize)]
        struct Data {
            state: String,
        }
        self.push_event("state", render_event(&Data { state: state.as_str().to_owned() }));
    }

    /// Records one finished point (counter bump + `progress` event).
    fn point_done(&self, label: &str, cached: bool) {
        let counter = if cached { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        let completed = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        #[derive(Serialize)]
        struct Data {
            completed: u64,
            total: u64,
            label: String,
            cached: bool,
        }
        self.push_event(
            "progress",
            render_event(&Data {
                completed,
                total: self.total.load(Ordering::Relaxed),
                label: label.to_owned(),
                cached,
            }),
        );
    }

    /// Pushes the terminal event matching the job's final status.
    fn push_terminal_event(&self) {
        let status = self.status();
        match status.state {
            JobState::Done => {
                #[derive(Serialize)]
                struct Data {
                    state: String,
                    points: u64,
                    hits: u64,
                    misses: u64,
                    artifacts: u64,
                }
                self.push_event(
                    "done",
                    render_event(&Data {
                        state: "done".to_owned(),
                        points: status.points.total,
                        hits: status.cache.hits,
                        misses: status.cache.misses,
                        artifacts: status.artifacts.len() as u64,
                    }),
                );
            }
            JobState::Failed => {
                #[derive(Serialize)]
                struct Data {
                    state: String,
                    error: String,
                }
                self.push_event(
                    "failed",
                    render_event(&Data {
                        state: "failed".to_owned(),
                        error: status.error.clone().unwrap_or_else(|| "unknown".to_owned()),
                    }),
                );
            }
            JobState::Queued | JobState::Running => {}
        }
    }

    fn status(&self) -> JobStatus {
        let st = self.state.lock().expect("job state lock");
        JobStatus {
            id: self.id.clone(),
            experiment: self.exp.name().to_owned(),
            refs: self.refs,
            state: st.state,
            points: PointsProgress {
                total: self.total.load(Ordering::Relaxed),
                completed: self.completed.load(Ordering::Relaxed),
            },
            cache: CacheCounts {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
            },
            artifacts: st.artifacts.clone(),
            error: st.error.clone(),
        }
    }
}

/// Renders an event's `data:` JSON (compact — SSE data must be one line).
fn render_event<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("event serialisation is infallible")
}

/// A subscriber's position in one job's event log. [`EventCursor::poll`]
/// drains everything appended since the last call, blocking briefly when
/// the log is caught up — the SSE handler turns empty polls into heartbeat
/// comments.
pub struct EventCursor {
    job: Arc<JobInner>,
    next: usize,
}

impl EventCursor {
    /// Events appended since the last poll; blocks up to `wait` when none
    /// are pending (an empty return after `wait` means "still caught up").
    pub fn poll(&mut self, wait: Duration) -> Vec<SseEvent> {
        let mut log = self.job.events.lock().expect("events lock");
        if self.next >= log.len() {
            let (guard, _timeout) =
                self.job.events_cv.wait_timeout(log, wait).expect("events condvar");
            log = guard;
        }
        let batch: Vec<SseEvent> = log[self.next.min(log.len())..].to_vec();
        self.next = log.len();
        batch
    }
}

/// Shared pool state (behind an `Arc` for the worker threads).
struct PoolShared {
    jobs: Mutex<HashMap<String, Arc<JobInner>>>,
    queue: Mutex<VecDeque<Arc<JobInner>>>,
    available: Condvar,
    queue_cap: usize,
    draining: AtomicBool,
    running: AtomicU64,
    out_root: PathBuf,
    /// Worker threads per sweep (`0` = the engine default).
    sweep_jobs: usize,
    /// Shard-worker processes per run (`0`/`1` = in-process execution).
    shards: usize,
    /// Executable spawned as `serve-worker` (`None` = this executable).
    worker_exe: Option<PathBuf>,
    /// Peer-wait deadline handed to shard workers.
    shard_wait: Duration,
}

/// Bounded worker pool executing experiment runs.
pub struct JobPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobPool {
    /// Spawns `cfg.workers` job-worker threads. `cfg.queue_cap` bounds how
    /// many jobs may wait (running jobs excluded); `cfg.sweep_jobs` is the
    /// sweep engine's per-job thread budget (`0` = engine default); with
    /// `cfg.shards >= 2` each job runs as that many `serve-worker`
    /// processes instead of in-process.
    #[must_use]
    pub fn new(cfg: &ServeConfig) -> Self {
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_cap: cfg.queue_cap,
            draining: AtomicBool::new(false),
            running: AtomicU64::new(0),
            out_root: cfg.out_dir.clone(),
            sweep_jobs: cfg.sweep_jobs,
            shards: cfg.shards,
            worker_exe: cfg.worker_exe.clone(),
            shard_wait: cfg.shard_wait,
        });
        let handles = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("job-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn job worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(handles) }
    }

    /// Deterministic run id for a submission: the sweep-point key scheme
    /// (FNV-1a + SplitMix64, see [`SweepPoint::seed`]) over
    /// `(experiment, refs)`, rendered as 16 hex digits. Identical
    /// submissions therefore share a job, an output directory, and its
    /// point cache.
    #[must_use]
    pub fn run_id(experiment: &str, refs: u64) -> String {
        format!("{:016x}", SweepPoint::new().detail(format!("refs={refs}")).seed(experiment))
    }

    /// Where a run's artifacts live.
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.shared.out_root.join("runs").join(id)
    }

    /// Submits `(experiment, refs)`: dedupes onto an existing non-failed
    /// job, else enqueues a new one (subject to queue capacity and drain
    /// state). A failed job is re-enqueued by an identical submission.
    pub fn submit(&self, exp: &'static dyn Experiment, refs: u64) -> SubmitOutcome {
        if self.shared.draining.load(Ordering::SeqCst) {
            return SubmitOutcome::Draining;
        }
        let id = Self::run_id(exp.name(), refs);
        let mut jobs = self.shared.jobs.lock().expect("jobs lock");
        if let Some(existing) = jobs.get(&id) {
            let failed = existing.state.lock().expect("job state lock").state == JobState::Failed;
            if !failed {
                return SubmitOutcome::Deduped(existing.status());
            }
        }
        let mut queue = self.shared.queue.lock().expect("queue lock");
        if queue.len() >= self.shared.queue_cap {
            return SubmitOutcome::QueueFull;
        }
        let job = Arc::new(JobInner::new(id.clone(), exp, refs));
        jobs.insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        self.shared.available.notify_one();
        SubmitOutcome::Created(job.status())
    }

    /// Status snapshot of a job, if it exists.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        self.shared.jobs.lock().expect("jobs lock").get(id).map(|j| j.status())
    }

    /// A subscriber cursor over a job's event log, replaying from the
    /// beginning (late subscribers see the full history).
    #[must_use]
    pub fn events(&self, id: &str) -> Option<EventCursor> {
        let job = self.shared.jobs.lock().expect("jobs lock").get(id).map(Arc::clone)?;
        Some(EventCursor { job, next: 0 })
    }

    /// Jobs waiting for a worker right now (the `/metrics` queue depth).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Whether a run is queued or running (the GC must never touch it).
    #[must_use]
    pub fn is_active(&self, id: &str) -> bool {
        self.shared.jobs.lock().expect("jobs lock").get(id).is_some_and(|j| {
            matches!(
                j.state.lock().expect("job state lock").state,
                JobState::Queued | JobState::Running
            )
        })
    }

    /// Forgets a finished job (GC deleted its directory): the id maps to
    /// 404 afterwards and an identical resubmission re-runs from scratch.
    /// Refuses (returns `false`) while the job is queued or running.
    pub fn forget(&self, id: &str) -> bool {
        let mut jobs = self.shared.jobs.lock().expect("jobs lock");
        let Some(job) = jobs.get(id) else { return false };
        let active = matches!(
            job.state.lock().expect("job state lock").state,
            JobState::Queued | JobState::Running
        );
        if active {
            return false;
        }
        jobs.remove(id);
        true
    }

    /// Aggregate per-state counts.
    #[must_use]
    pub fn counts(&self) -> JobCounts {
        let jobs = self.shared.jobs.lock().expect("jobs lock");
        let mut c = JobCounts::default();
        for j in jobs.values() {
            match j.state.lock().expect("job state lock").state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// Starts draining: rejects new submissions and wakes idle workers so
    /// they can exit once the queue is empty. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether nothing is queued or running (safe to stop serving).
    #[must_use]
    pub fn drained(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst) == 0
            && self.shared.queue.lock().expect("queue lock").is_empty()
    }

    /// Joins the worker threads (call after [`JobPool::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().expect("workers lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Worker body: pop → run → repeat; exit when draining and the queue is
/// empty. Jobs already accepted are always finished (drain semantics).
fn worker_loop(pool: &PoolShared) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    // Running before the queue lock drops, so `drained()`
                    // can never observe "empty queue, nothing running"
                    // while this job is in hand-off.
                    pool.running.fetch_add(1, Ordering::SeqCst);
                    break j;
                }
                if pool.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = pool.available.wait(q).expect("queue condvar");
            }
        };
        run_job(pool, &job);
        pool.running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes one job, feeding its live counters (and event log) from the
/// engine's progress callback. With `shards >= 2` the sweep itself runs in
/// shard-worker processes; the in-process part is then only the fold.
fn run_job(pool: &PoolShared, job: &Arc<JobInner>) {
    job.state.lock().expect("job state lock").state = JobState::Running;
    job.push_state_event(JobState::Running);
    let dir = pool.out_root.join("runs").join(&job.id);
    if pool.shards >= 2 {
        run_shard_workers(pool, job, &dir);
    }
    fold_and_finish(pool, job, &dir, pool.shards >= 2);
}

/// Runs the sweep's points in `pool.shards` `serve-worker` processes, the
/// shared `<run>` directory as their common cache root. Worker stdout is
/// the wire protocol (see [`crate::worker`]): each worker announces only
/// the points its shard owns, so the coordinator's per-point counters sum
/// to exactly the sweep size across all workers. A worker that dies is
/// respawned once (its finished points replay from the warm cache); a
/// worker that stays dead is survivable too, because the fold recomputes
/// whatever the cache is missing.
fn run_shard_workers(pool: &PoolShared, job: &Arc<JobInner>, dir: &std::path::Path) {
    let exe = pool
        .worker_exe
        .clone()
        .or_else(|| std::env::current_exe().ok())
        .unwrap_or_else(|| PathBuf::from("ringsim"));
    let shards = pool.shards;
    std::thread::scope(|scope| {
        for index in 0..shards {
            let exe = &exe;
            scope.spawn(move || {
                for attempt in 0..2 {
                    match spawn_and_track_worker(exe, pool, job, dir, index, shards) {
                        Ok(()) => return,
                        Err(e) => {
                            eprintln!(
                                "serve: shard {index}/{shards} of run {} failed \
                                 (attempt {attempt}): {e}",
                                job.id
                            );
                        }
                    }
                }
            });
        }
    });
}

/// Spawns one shard worker, streams its stdout protocol into the job's
/// counters, and waits for exit. `Err` on spawn failure, abnormal exit, or
/// a `failed` protocol line.
fn spawn_and_track_worker(
    exe: &std::path::Path,
    pool: &PoolShared,
    job: &Arc<JobInner>,
    dir: &std::path::Path,
    index: usize,
    shards: usize,
) -> Result<(), String> {
    let shard = Shard::new(index, shards).expect("index < shards by construction");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve-worker")
        .arg("--experiment")
        .arg(job.exp.name())
        .arg("--refs")
        .arg(job.refs.to_string())
        .arg("--out")
        .arg(dir.join("shards").join(index.to_string()))
        .arg("--cache-dir")
        .arg(dir)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--jobs")
        .arg(pool.sweep_jobs.to_string())
        .arg("--shard-wait-secs")
        .arg(pool.shard_wait.as_secs().max(1).to_string())
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut child = cmd.spawn().map_err(|e| format!("spawning {}: {e}", exe.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut failure: Option<String> = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        match WireEvent::parse(&line) {
            Some(WireEvent::MapStarted { points }) => {
                job.total.fetch_add(points, Ordering::Relaxed);
            }
            Some(WireEvent::PointDone { label, cached }) => {
                job.point_done(&label, cached);
            }
            Some(WireEvent::Failed { error }) => failure = Some(error),
            // Per-worker totals are diagnostic; the fold meta is
            // authoritative for the job's final counters.
            Some(WireEvent::Done { .. }) | None => {}
        }
    }
    let status = child.wait().map_err(|e| format!("waiting for worker: {e}"))?;
    match failure {
        Some(error) => Err(error),
        None if !status.success() => Err(format!("worker exited with {status}")),
        None => Ok(()),
    }
}

/// Runs the experiment in-process against `<dir>/.cache` and finalises the
/// job. For a single-pool job this *is* the run; after shard workers it is
/// the fold — every point replays from the warm shared cache (a miss here
/// means a shard died without a successor, and the fold computes the gap
/// itself), and the artifacts are rendered by exactly one process, which
/// is what makes them byte-identical to the single-pool path.
fn fold_and_finish(pool: &PoolShared, job: &Arc<JobInner>, dir: &std::path::Path, folded: bool) {
    let progress: ProgressFn = {
        let job = Arc::clone(job);
        Arc::new(move |ev| match ev {
            Progress::MapStarted { points } => {
                if !folded {
                    job.total.fetch_add(*points as u64, Ordering::Relaxed);
                }
            }
            Progress::PointDone { cached, label } => {
                // After shard workers, hits replay points a worker already
                // announced — only the gap points (misses) are news.
                if !folded || !*cached {
                    job.point_done(label, *cached);
                }
            }
        })
    };
    let mut cfg = SweepConfig::new(job.refs).out_dir(dir).cache(true).on_progress(progress);
    if pool.sweep_jobs > 0 {
        cfg = cfg.jobs(pool.sweep_jobs);
    }
    let exp = job.exp;
    match catch_unwind(AssertUnwindSafe(|| run_experiment(exp, &cfg))) {
        Ok(report) => {
            // The meta twin is authoritative for totals; the hit/miss split
            // of a sharded run keeps the workers' counters (the fold's
            // all-hit replay says nothing about how points were computed).
            job.total.store(report.meta.points as u64, Ordering::Relaxed);
            job.completed.store(report.meta.points as u64, Ordering::Relaxed);
            if !folded {
                job.hits.store(report.meta.cache_hits, Ordering::Relaxed);
                job.misses.store(report.meta.cache_misses, Ordering::Relaxed);
            }
            // Shard scratch dirs are not servable artifacts; drop them so
            // retention accounting sees only the run's real footprint.
            let _ = std::fs::remove_dir_all(dir.join("shards"));
            let mut st = job.state.lock().expect("job state lock");
            st.artifacts = report
                .artifacts
                .iter()
                .filter_map(|a| a.path.file_name().map(|f| f.to_string_lossy().into_owned()))
                .collect();
            st.state = JobState::Done;
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "experiment panicked".to_owned());
            let mut st = job.state.lock().expect("job state lock");
            st.error = Some(msg);
            st.state = JobState::Failed;
        }
    }
    job.push_terminal_event();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ringsim-serve-jobs-{tag}-{}", std::process::id()))
    }

    fn pool_cfg(out_dir: PathBuf, queue_cap: usize) -> ServeConfig {
        ServeConfig { out_dir, workers: 1, queue_cap, sweep_jobs: 1, ..ServeConfig::default() }
    }

    #[test]
    fn run_ids_are_deterministic_and_axis_separated() {
        let a = JobPool::run_id("fig3", 10_000);
        assert_eq!(a, JobPool::run_id("fig3", 10_000));
        assert_eq!(a.len(), 16);
        assert_ne!(a, JobPool::run_id("fig3", 10_001));
        assert_ne!(a, JobPool::run_id("fig4", 10_000));
    }

    #[test]
    fn zero_capacity_queue_rejects_submissions() {
        let dir = tmp("cap0");
        let pool = JobPool::new(&pool_cfg(dir.clone(), 0));
        let exp = ringsim_bench::experiments::find("fig3").unwrap();
        assert!(matches!(pool.submit(exp, 123), SubmitOutcome::QueueFull));
        pool.shutdown();
        pool.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_pool_rejects_submissions() {
        let dir = tmp("drain");
        let pool = JobPool::new(&pool_cfg(dir.clone(), 4));
        pool.shutdown();
        let exp = ringsim_bench::experiments::find("fig3").unwrap();
        assert!(matches!(pool.submit(exp, 123), SubmitOutcome::Draining));
        pool.join();
        assert!(pool.drained());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
