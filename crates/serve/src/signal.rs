//! Async-signal-safe SIGINT/SIGTERM latch for graceful shutdown.
//!
//! The workspace has no `libc` dependency, so on Unix the module declares
//! the C `signal(2)` entry point directly (the one place in the workspace
//! allowed to use `unsafe`). The handler only stores into an atomic —
//! async-signal-safe by construction — and the serve loop polls
//! [`triggered`] to begin draining. Non-Unix builds fall back to a no-op
//! install (programmatic `POST /shutdown` still works there).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)`: returns the previous handler (pointer-sized).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, super::on_signal);
            signal(SIGTERM, super::on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_sets_on_handler() {
        install();
        // Invoke the handler directly (same code path the kernel takes).
        on_signal(15);
        assert!(triggered());
    }
}
