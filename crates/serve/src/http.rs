//! Minimal HTTP/1.1 request parsing and response writing over std I/O.
//!
//! The build environment is offline, so — matching the workspace's
//! vendored-stand-in philosophy — this is a small, hardened hand parser
//! rather than a network crate: hard limits on request-line length, header
//! count/size and body size, no chunked transfer encoding, one request per
//! connection (`Connection: close` on every response). Anything malformed
//! maps to a 400 and anything oversized to a 400/413; the parser never
//! panics on untrusted bytes (locked by a fuzz-style property test).

use std::io::{BufRead, Read, Write};

/// Maximum accepted request-line or header-line length, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum accepted number of headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted request-body size, in bytes.
pub const MAX_BODY: usize = 1 << 20;

/// How reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The request is malformed (or exceeds a header-side limit) → 400.
    Bad(String),
    /// The declared body length exceeds [`MAX_BODY`] → 413.
    BodyTooLarge(u64),
    /// Transport failure (reset, timeout) → drop the connection silently.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::Bad("truncated request".to_owned())
        } else {
            HttpError::Io(e)
        }
    }
}

impl HttpError {
    /// The error response to send, if any (`None` means just hang up).
    #[must_use]
    pub fn response(&self) -> Option<Response> {
        match self {
            HttpError::Bad(msg) => Some(Response::error(400, msg)),
            HttpError::BodyTooLarge(len) => {
                Some(Response::error(413, &format!("body of {len} bytes exceeds {MAX_BODY}")))
            }
            HttpError::Io(_) => None,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Request target (path plus any query string), verbatim.
    pub target: String,
    /// Headers in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for a (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing [`MAX_LINE`].
/// `Ok(None)` means clean EOF before any byte.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let n = r.take((MAX_LINE + 1) as u64).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        let what =
            if buf.len() > MAX_LINE { "line exceeds length limit" } else { "truncated line" };
        return Err(HttpError::Bad(what.to_owned()));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|_| HttpError::Bad("non-UTF-8 header bytes".into()))
}

/// Reads and validates one full request. `Ok(None)` means the peer closed
/// the connection without sending anything.
///
/// # Errors
///
/// [`HttpError::Bad`] for malformed or over-limit request lines/headers,
/// [`HttpError::BodyTooLarge`] for bodies over [`MAX_BODY`], and
/// [`HttpError::Io`] for transport failures.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(&mut *r)? else { return Ok(None) };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Bad(format!("malformed request line `{line}`"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Bad(format!("malformed method `{method}`")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Bad("request target must be an absolute path".to_owned()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad(format!("unsupported protocol version `{version}`")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some(line) = read_line(&mut *r)? else {
            return Err(HttpError::Bad("connection closed inside headers".to_owned()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header line `{line}`")));
        };
        if name.is_empty() || name.bytes().any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(HttpError::Bad(format!("malformed header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |n: &str| headers.iter().find(|(k, _)| k == n).map(|(_, v)| v.as_str());
    if find("transfer-encoding").is_some() {
        return Err(HttpError::Bad("transfer-encoding is not supported".to_owned()));
    }
    let mut body = Vec::new();
    if let Some(cl) = find("content-length") {
        let len: u64 =
            cl.parse().map_err(|_| HttpError::Bad(format!("malformed content-length `{cl}`")))?;
        if len > MAX_BODY as u64 {
            return Err(HttpError::BodyTooLarge(len));
        }
        body.resize(len as usize, 0);
        r.read_exact(&mut body)?;
    }
    Ok(Some(Request { method: method.to_owned(), target: target.to_owned(), headers, body }))
}

/// An outgoing response: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes (served verbatim — artifact serving relies on
    /// this being byte-exact).
    pub body: Vec<u8>,
    /// Optional `Retry-After` header, in seconds (backpressure responses).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response from an already-rendered body.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response (a trailing newline is appended).
    #[must_use]
    pub fn text(status: u16, msg: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
            retry_after: None,
        }
    }

    /// A `{"error": ...}` JSON response.
    #[must_use]
    pub fn error(status: u16, msg: &str) -> Self {
        #[derive(serde::Serialize)]
        struct Body {
            error: String,
        }
        let body = serde_json::to_string_pretty(&Body { error: msg.to_owned() })
            .expect("error body serialisation is infallible");
        Self::json(status, body)
    }

    /// A raw byte response with an explicit content type (artifact serving).
    #[must_use]
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self { status, content_type, body, retry_after: None }
    }

    /// Adds a `Retry-After` header (seconds).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Writes the response (with `Connection: close`) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport write errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Writes the header block of a streaming (chunked) response and flushes.
/// There is no `Content-Length` — the body is a sequence of
/// [`write_chunk`] frames ended by [`finish_chunks`] — and the connection
/// still closes afterwards, like every response this server writes.
///
/// # Errors
///
/// Propagates transport write errors.
pub fn write_stream_headers(w: &mut impl Write, content_type: &str) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n\
         Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    w.flush()
}

/// Writes one HTTP/1.1 chunk (`<hex len>\r\n<data>\r\n`) and flushes so
/// live streams are delivered promptly, not on buffer boundaries. Empty
/// data is skipped — a zero-length chunk would terminate the stream.
///
/// # Errors
///
/// Propagates transport write errors (a failed write means the client
/// disconnected; streaming callers stop on the first error).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Writes the stream-terminating zero chunk.
///
/// # Errors
///
/// Propagates transport write errors.
pub fn finish_chunks(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_and_post() {
        let req = parse("GET /runs/abc?x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap().unwrap();
        assert_eq!((req.method.as_str(), req.path()), ("GET", "/runs/abc"));
        assert_eq!(req.header("host"), Some("h"));

        let req = parse("POST /runs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody").unwrap().unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn eof_before_any_byte_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for bad in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "GET / SPDY/9\r\n\r\n",
            "\r\n\r\n",
        ] {
            assert!(matches!(parse(bad), Err(HttpError::Bad(_))), "accepted {bad:?}");
        }
    }

    #[test]
    fn header_limits_hold() {
        let long = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert!(matches!(parse(&long), Err(HttpError::Bad(_))));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("H{i}: v\r\n")).collect::<String>()
        );
        assert!(matches!(parse(&many), Err(HttpError::Bad(_))));
    }

    #[test]
    fn body_limits_hold() {
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(&huge), Err(HttpError::BodyTooLarge(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn chunked_stream_framing_is_wellformed() {
        let mut out = Vec::new();
        write_stream_headers(&mut out, "text/event-stream").unwrap();
        write_chunk(&mut out, b"event: state\ndata: {}\n\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // empty chunk is skipped, not terminal
        write_chunk(&mut out, b": keepalive\n\n").unwrap();
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Content-Type: text/event-stream\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("17\r\nevent: state\ndata: {}\n\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
        // Exactly one zero-length chunk, and it is the terminator.
        assert_eq!(text.matches("\r\n0\r\n").count(), 1);
    }

    #[test]
    fn responses_have_framing() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        Response::error(429, "full").with_retry_after(2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("\"error\""));
    }
}
