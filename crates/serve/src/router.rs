//! Route dispatch: maps parsed requests onto the job pool, the experiment
//! registry, and the observability sinks.
//!
//! Every route returns a `'static` label alongside its [`Response`]; the
//! connection handler records per-route request latency under that label,
//! which is what `GET /metrics` reports back (the service observes itself
//! with the same [`ringsim_obs::LatencyHistogram`] the simulators use).

use serde::{Serialize, Value};

use crate::http::{Request, Response};
use crate::jobs::{EventCursor, JobCounts, JobState, JobStatus, SubmitOutcome};
use crate::ServerState;

/// Seconds clients are told to wait after a 429 (queue full).
const RETRY_AFTER_SECS: u32 = 2;

/// Every route label the server records latency under; registered eagerly
/// at startup so `/metrics` reports all routes (zero-count included) from
/// the first request, not only the ones that happened to be hit.
pub const ROUTES: &[&str] = &[
    "GET /healthz",
    "GET /experiments",
    "POST /runs",
    "GET /runs/:id",
    "GET /runs/:id/events",
    "GET /runs/:id/artifacts/:file",
    "POST /runs/:id/pin",
    "GET /metrics",
    "POST /shutdown",
];

/// What a route produced: a complete response, or a live stream the
/// connection handler keeps writing until it ends.
pub enum Reply {
    /// An ordinary buffered response.
    Full(Response),
    /// An SSE subscription on a job's event log (`GET /runs/:id/events`).
    Events(EventCursor),
}

impl Reply {
    /// Unwraps the buffered response (tests and non-streaming callers).
    ///
    /// # Panics
    ///
    /// Panics on a streaming reply.
    #[must_use]
    pub fn into_response(self) -> Response {
        match self {
            Reply::Full(resp) => resp,
            Reply::Events(_) => panic!("streaming reply has no buffered response"),
        }
    }
}

impl From<Response> for Reply {
    fn from(resp: Response) -> Self {
        Reply::Full(resp)
    }
}

/// Dispatches one request, returning `(route label, reply)`.
#[must_use]
pub fn dispatch(state: &ServerState, req: &Request) -> (&'static str, Reply) {
    let segs: Vec<&str> = req.path().split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => ("GET /healthz", healthz(state).into()),
        ("GET", ["experiments"]) => ("GET /experiments", list_experiments().into()),
        ("POST", ["runs"]) => ("POST /runs", submit(state, req).into()),
        ("GET", ["runs", id]) => ("GET /runs/:id", run_status(state, id).into()),
        ("GET", ["runs", id, "events"]) => ("GET /runs/:id/events", events(state, id)),
        ("GET", ["runs", id, "artifacts", file]) => {
            ("GET /runs/:id/artifacts/:file", artifact(state, id, file).into())
        }
        ("POST", ["runs", id, "pin"]) => ("POST /runs/:id/pin", pin(state, id).into()),
        ("GET", ["metrics"]) => ("GET /metrics", metrics(state).into()),
        ("POST", ["shutdown"]) => ("POST /shutdown", shutdown(state).into()),
        (
            _,
            ["healthz" | "experiments" | "metrics" | "shutdown" | "runs"]
            | ["runs", _]
            | ["runs", _, "events" | "pin"]
            | ["runs", _, "artifacts", _],
        ) => (
            "(method-not-allowed)",
            Response::error(405, &format!("{} not allowed on {}", req.method, req.path())).into(),
        ),
        _ => ("(not-found)", Response::error(404, &format!("no route for {}", req.path())).into()),
    }
}

/// `GET /runs/:id/events`: subscribe to the job's live SSE stream. The
/// cursor replays the full event history first, so a subscription to a
/// finished run is the whole log followed immediately by the terminal
/// event.
fn events(state: &ServerState, id: &str) -> Reply {
    match state.pool.events(id) {
        Some(cursor) => Reply::Events(cursor),
        None => Reply::Full(Response::error(404, &format!("no run `{id}`"))),
    }
}

/// `POST /runs/:id/pin`: drop a `.pinned` marker into the run directory so
/// retention never evicts it (see [`crate::gc`]).
fn pin(state: &ServerState, id: &str) -> Response {
    if state.pool.status(id).is_none() {
        return Response::error(404, &format!("no run `{id}`"));
    }
    let dir = state.pool.job_dir(id);
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(dir.join(".pinned"), b""))
    {
        return Response::error(500, &format!("pinning run `{id}`: {e}"));
    }
    #[derive(Serialize)]
    struct Ack {
        id: String,
        pinned: bool,
    }
    Response::json(200, render(&Ack { id: id.to_owned(), pinned: true }))
}

fn healthz(state: &ServerState) -> Response {
    if state.draining() {
        Response::text(200, "draining")
    } else {
        Response::text(200, "ok")
    }
}

/// `GET /experiments`: the registry as `[{name, description}]`.
fn list_experiments() -> Response {
    #[derive(Serialize)]
    struct Entry {
        name: String,
        description: String,
    }
    let entries: Vec<Entry> = ringsim_bench::experiments::registry()
        .iter()
        .map(|e| Entry { name: e.name().to_owned(), description: e.description().to_owned() })
        .collect();
    Response::json(200, render(&entries))
}

/// The `POST /runs` acknowledgement body.
#[derive(Serialize)]
struct SubmitAck {
    id: String,
    deduped: bool,
    state: JobState,
    location: String,
    /// Canonical spelling of the request's `network` field, when given
    /// (resolved through the simulator registry, aliases included).
    network: Option<String>,
    /// Canonical spelling of the request's `topology` field, when given
    /// (resolved through [`ringsim_core::HierTopology`]).
    topology: Option<String>,
}

/// `POST /runs`: body
/// `{"experiment": "<name>", "refs": <n>?, "network": "<net>"?, "topology": "<topo>"?}`.
///
/// The optional `network` field is resolved against the simulator registry
/// with [`ringsim_core::SimKind::from_str`]; a bad spelling is rejected
/// with a 400 carrying the typed [`ringsim_core::SimKindError`] rendering
/// (which names the valid spellings, or the candidates for an ambiguous
/// prefix), and a good one is echoed back canonicalised so clients can
/// pre-validate the name they are about to sweep with. The optional
/// `topology` field (`flat` / `2level` / `3level`, hyphenated aliases
/// included) validates the hierarchy-depth override the same way.
fn submit(state: &ServerState, req: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let parsed = match serde_json::parse_value(body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("malformed JSON body: {e}")),
    };
    let Some(Value::Str(name)) = parsed.get("experiment") else {
        return Response::error(400, "body must carry a string `experiment` field");
    };
    let network = match parsed.get("network") {
        None | Some(Value::Null) => None,
        Some(Value::Str(net)) => match net.parse::<ringsim_core::SimKind>() {
            Ok(kind) => Some(kind.name().to_owned()),
            Err(e) => return Response::error(400, &e.to_string()),
        },
        Some(_) => return Response::error(400, "`network` must be a string"),
    };
    let topology = match parsed.get("topology") {
        None | Some(Value::Null) => None,
        Some(Value::Str(t)) => match t.parse::<ringsim_core::HierTopology>() {
            Ok(topo) => Some(topo.name().to_owned()),
            Err(e) => return Response::error(400, &e.to_string()),
        },
        Some(_) => return Response::error(400, "`topology` must be a string"),
    };
    let refs = match parsed.get("refs") {
        None | Some(Value::Null) => state.cfg.default_refs,
        Some(Value::UInt(n)) if *n > 0 => *n,
        Some(Value::Int(n)) if *n > 0 => u64::try_from(*n).expect("positive i64 fits in u64"),
        Some(_) => return Response::error(400, "`refs` must be a positive integer"),
    };
    let Some(exp) = ringsim_bench::experiments::find(name) else {
        return Response::error(
            400,
            &format!("unknown experiment `{name}` (try GET /experiments)"),
        );
    };
    let ack = |status: JobStatus, deduped: bool| SubmitAck {
        location: format!("/runs/{}", status.id),
        id: status.id,
        deduped,
        state: status.state,
        network: network.clone(),
        topology: topology.clone(),
    };
    match state.pool.submit(exp, refs) {
        SubmitOutcome::Created(st) => Response::json(202, render(&ack(st, false))),
        SubmitOutcome::Deduped(st) => Response::json(200, render(&ack(st, true))),
        SubmitOutcome::QueueFull => Response::error(429, "job queue is full; retry later")
            .with_retry_after(RETRY_AFTER_SECS),
        SubmitOutcome::Draining => {
            Response::error(503, "server is draining; new runs are rejected")
        }
    }
}

/// `GET /runs/:id`: full job status.
fn run_status(state: &ServerState, id: &str) -> Response {
    match state.pool.status(id) {
        Some(st) => Response::json(200, render(&st)),
        None => Response::error(404, &format!("no run `{id}`")),
    }
}

/// `GET /runs/:id/artifacts/:file`: byte-exact artifact serving. Only file
/// names the finished job reported are reachable, so no path from the wire
/// ever touches the filesystem directly.
fn artifact(state: &ServerState, id: &str, file: &str) -> Response {
    let Some(st) = state.pool.status(id) else {
        return Response::error(404, &format!("no run `{id}`"));
    };
    if st.state != JobState::Done {
        return Response::error(
            409,
            &format!("run `{id}` is {}; artifacts appear once it is done", st.state.as_str()),
        );
    }
    if !st.artifacts.iter().any(|a| a == file) {
        return Response::error(404, &format!("run `{id}` has no artifact `{file}`"));
    }
    let path = state.pool.job_dir(id).join(file);
    match std::fs::read(&path) {
        Ok(bytes) => Response::bytes(200, content_type(file), bytes),
        Err(e) => Response::error(500, &format!("reading artifact `{file}`: {e}")),
    }
}

/// Content type by artifact extension.
fn content_type(file: &str) -> &'static str {
    match file.rsplit('.').next() {
        Some("json") => "application/json",
        Some("dat" | "txt" | "csv") => "text/plain; charset=utf-8",
        _ => "application/octet-stream",
    }
}

/// Per-route request-latency digest in the `/metrics` document.
#[derive(Serialize)]
struct RouteStat {
    route: String,
    requests: u64,
    latency: ringsim_obs::LatencyHistogram,
}

/// Worker-pool shape and load in the `/metrics` document.
#[derive(Serialize)]
struct PoolStat {
    /// Jobs waiting for a worker right now.
    depth: u64,
    /// Job-worker threads.
    workers: u64,
    /// Shard-worker processes per run (`0`/`1` = in-process).
    shards: u64,
}

/// Retention counters in the `/metrics` document (see [`crate::gc`]).
#[derive(Serialize)]
struct GcStat {
    sweeps: u64,
    deleted_runs: u64,
    reclaimed_bytes: u64,
}

/// The `GET /metrics` document.
#[derive(Serialize)]
struct MetricsDoc {
    uptime_ms: u64,
    draining: bool,
    jobs: JobCounts,
    pool: PoolStat,
    gc: GcStat,
    http: Vec<RouteStat>,
    /// Process-wide simulator metrics (`None` until a simulator-backed
    /// experiment has run).
    summary: Option<ringsim_obs::MetricsSummary>,
    warnings: Vec<String>,
}

fn metrics(state: &ServerState) -> Response {
    let http = state
        .http_stats()
        .into_iter()
        .map(|(route, latency)| RouteStat { route, requests: latency.count(), latency })
        .collect();
    let gc = state.gc_counters();
    let doc = MetricsDoc {
        uptime_ms: state.uptime_ms(),
        draining: state.draining(),
        jobs: state.pool.counts(),
        pool: PoolStat {
            depth: state.pool.depth() as u64,
            workers: state.cfg.workers as u64,
            shards: state.cfg.shards as u64,
        },
        gc: GcStat { sweeps: gc.0, deleted_runs: gc.1, reclaimed_bytes: gc.2 },
        http,
        summary: ringsim_obs::global_metrics_snapshot(),
        warnings: ringsim_obs::warnings_snapshot(),
    };
    Response::json(200, render(&doc))
}

/// `POST /shutdown`: programmatic drain (same path as SIGINT).
fn shutdown(state: &ServerState) -> Response {
    state.request_shutdown();
    #[derive(Serialize)]
    struct Ack {
        draining: bool,
    }
    Response::json(202, render(&Ack { draining: true }))
}

/// Pretty-JSON rendering (the vendored pipeline is infallible).
fn render<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("response serialisation is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;

    fn state(tag: &str) -> ServerState {
        let out =
            std::env::temp_dir().join(format!("ringsim-serve-router-{tag}-{}", std::process::id()));
        ServerState::new(ServeConfig {
            out_dir: out,
            workers: 1,
            queue_cap: 2,
            default_refs: 50,
            ..ServeConfig::default()
        })
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            target: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            target: path.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn experiments_listing_covers_the_registry() {
        let st = state("list");
        let (route, reply) = dispatch(&st, &get("/experiments"));
        let resp = reply.into_response();
        assert_eq!((route, resp.status), ("GET /experiments", 200));
        let text = String::from_utf8(resp.body).unwrap();
        for exp in ringsim_bench::experiments::registry() {
            assert!(text.contains(exp.name()), "listing misses {}", exp.name());
        }
        st.request_shutdown();
        st.pool.join();
    }

    #[test]
    fn bad_submissions_are_rejected_with_400() {
        let st = state("bad");
        for body in [
            "",
            "{",
            "{}",
            "{\"experiment\": 3}",
            "{\"experiment\": \"nope\"}",
            "{\"experiment\": \"fig3\", \"refs\": 0}",
            "{\"experiment\": \"fig3\", \"refs\": -4}",
            "{\"experiment\": \"fig3\", \"network\": 7}",
            "{\"experiment\": \"fig3\", \"network\": \"token-ring\"}",
            "{\"experiment\": \"fig3\", \"topology\": 2}",
            "{\"experiment\": \"fig3\", \"topology\": \"4level\"}",
        ] {
            let (_, reply) = dispatch(&st, &post("/runs", body));
            let resp = reply.into_response();
            assert_eq!(resp.status, 400, "accepted body {body:?}");
        }
        st.request_shutdown();
        st.pool.join();
    }

    #[test]
    fn network_field_surfaces_the_typed_registry_error() {
        let st = state("network");
        // Unknown spelling: the SimKindError rendering names the valid ones.
        let resp =
            dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\", \"network\": \"tokenring\"}"))
                .1
                .into_response();
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("unknown network `tokenring`"), "got: {text}");
        assert!(text.contains("ring500"), "error should list spellings: {text}");
        // Ambiguous prefix: the candidates are spelled out.
        let resp = dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\", \"network\": \"b\"}"))
            .1
            .into_response();
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("ambiguous network `b`"), "got: {text}");
        assert!(text.contains("bus50 or bus100"), "got: {text}");
        // A documented alias resolves and is echoed back canonicalised.
        let resp =
            dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\", \"network\": \"bus\"}"))
                .1
                .into_response();
        assert_eq!(resp.status, 202);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"network\": \"bus100\""), "got: {text}");
        st.request_shutdown();
        st.pool.join();
    }

    #[test]
    fn hier_prefix_became_ambiguous_when_the_registry_grew() {
        // Regression: `hier` used to be resolvable from the prefix `hie`;
        // with `hier3` and `hier-deflect` registered the prefix must fail
        // loudly instead of silently picking one.
        let st = state("hier-prefix");
        let resp =
            dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\", \"network\": \"hie\"}"))
                .1
                .into_response();
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("ambiguous network `hie`"), "got: {text}");
        for candidate in ["hier", "hier3", "hier-deflect"] {
            assert!(text.contains(candidate), "candidates should list {candidate}: {text}");
        }
        // The exact spellings all still resolve.
        for exact in ["hier", "hier3", "hier-deflect"] {
            let body = format!("{{\"experiment\": \"fig3\", \"network\": \"{exact}\"}}");
            let (_, reply) = dispatch(&st, &post("/runs", &body));
            let resp = reply.into_response();
            assert!(resp.status == 202 || resp.status == 200, "{exact}: {}", resp.status);
            let text = String::from_utf8(resp.body).unwrap();
            assert!(text.contains(&format!("\"network\": \"{exact}\"")), "got: {text}");
        }
        st.request_shutdown();
        st.pool.join();
    }

    #[test]
    fn topology_field_is_validated_and_canonicalised() {
        let st = state("topology");
        // Hyphenated alias → canonical spelling in the ack.
        let (_, reply) = dispatch(
            &st,
            &post(
                "/runs",
                "{\"experiment\": \"fig3\", \"network\": \"hier-deflect\", \
                 \"topology\": \"three-level\"}",
            ),
        );
        let resp = reply.into_response();
        assert_eq!(resp.status, 202);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"topology\": \"3level\""), "got: {text}");
        // A bad spelling names the valid ones.
        let resp =
            dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\", \"topology\": \"deep\"}"))
                .1
                .into_response();
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("flat"), "got: {text}");
        st.request_shutdown();
        st.pool.join();
    }

    #[test]
    fn draining_state_rejects_submissions_but_keeps_reads() {
        let st = state("drain");
        st.request_shutdown();
        let (_, reply) = dispatch(&st, &post("/runs", "{\"experiment\": \"fig3\"}"));
        let resp = reply.into_response();
        assert_eq!(resp.status, 503);
        assert_eq!(dispatch(&st, &get("/metrics")).1.into_response().status, 200);
        let (_, reply) = dispatch(&st, &get("/healthz"));
        let resp = reply.into_response();
        assert_eq!(resp.body, b"draining\n");
        st.pool.join();
    }

    #[test]
    fn unknown_routes_and_methods_map_to_404_and_405() {
        let st = state("routes");
        assert_eq!(dispatch(&st, &get("/nope")).1.into_response().status, 404);
        assert_eq!(dispatch(&st, &get("/runs/zzz")).1.into_response().status, 404);
        assert_eq!(dispatch(&st, &post("/experiments", "")).1.into_response().status, 405);
        assert_eq!(dispatch(&st, &get("/metrics")).1.into_response().status, 200);
        st.request_shutdown();
        st.pool.join();
    }
}
