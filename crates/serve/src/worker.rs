//! The `serve-worker` side of the multi-process sweep coordinator, plus the
//! stdout wire protocol both sides share.
//!
//! A sharded run spawns N `ringsim serve-worker` processes, each executing
//! one [`Shard`] of the sweep with a private artifact directory
//! (`<run>/shards/<i>`) and the run directory itself as the shared cache
//! root — the cache is the merge substrate (see `ringsim_sweep::Shard`).
//! Workers report progress by printing [`WireEvent`] lines to stdout,
//! prefixed with [`PROGRESS_PREFIX`] so the coordinator can filter them out
//! of the experiment's own table output (experiments print human-readable
//! tables to stdout; `println!` is line-atomic, so the streams interleave
//! by whole lines).
//!
//! A worker only announces the points its shard **owns**: across all N
//! workers the `point-done` events therefore sum to exactly the sweep
//! size, which is what keeps the coordinator's progress counters (and the
//! SSE stream fed from them) monotone and exact.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

use ringsim_sweep::{run_experiment, Progress, ProgressFn, Shard, SweepConfig};
use serde::{Serialize, Value};

/// Line prefix marking a protocol event on a worker's stdout; everything
/// else on the stream is experiment output and is ignored.
pub const PROGRESS_PREFIX: &str = "@ringsim-progress ";

/// One protocol event, rendered as `@ringsim-progress {json}`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A `map` call began; `points` counts only this shard's owned points.
    MapStarted {
        /// Owned points submitted to the map call.
        points: u64,
    },
    /// One owned point finished.
    PointDone {
        /// Canonical point label.
        label: String,
        /// Whether it was served from the shared cache.
        cached: bool,
    },
    /// The worker's whole run finished cleanly.
    Done {
        /// Total points the worker assembled (owned + peer).
        points: u64,
        /// Cache hits across the run.
        hits: u64,
        /// Cache misses (points this worker computed).
        misses: u64,
    },
    /// The worker's run panicked.
    Failed {
        /// Panic message.
        error: String,
    },
}

impl WireEvent {
    /// Renders the full protocol line (prefix included, no newline).
    #[must_use]
    pub fn render(&self) -> String {
        #[derive(Serialize)]
        struct Line {
            ev: String,
            points: Option<u64>,
            label: Option<String>,
            cached: Option<bool>,
            hits: Option<u64>,
            misses: Option<u64>,
            error: Option<String>,
        }
        let mut line = Line {
            ev: String::new(),
            points: None,
            label: None,
            cached: None,
            hits: None,
            misses: None,
            error: None,
        };
        match self {
            WireEvent::MapStarted { points } => {
                line.ev = "map-started".to_owned();
                line.points = Some(*points);
            }
            WireEvent::PointDone { label, cached } => {
                line.ev = "point-done".to_owned();
                line.label = Some(label.clone());
                line.cached = Some(*cached);
            }
            WireEvent::Done { points, hits, misses } => {
                line.ev = "done".to_owned();
                line.points = Some(*points);
                line.hits = Some(*hits);
                line.misses = Some(*misses);
            }
            WireEvent::Failed { error } => {
                line.ev = "failed".to_owned();
                line.error = Some(error.clone());
            }
        }
        let json = serde_json::to_string(&line).expect("wire event serialises");
        format!("{PROGRESS_PREFIX}{json}")
    }

    /// Parses a stdout line; `None` for experiment output (no prefix) or a
    /// malformed protocol line (the coordinator tolerates both).
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        let json = line.strip_prefix(PROGRESS_PREFIX)?;
        let v = serde_json::parse_value(json).ok()?;
        let uint = |key: &str| match v.get(key) {
            Some(Value::UInt(n)) => Some(*n),
            Some(Value::Int(n)) if *n >= 0 => u64::try_from(*n).ok(),
            _ => None,
        };
        let text = |key: &str| match v.get(key) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        match v.get("ev") {
            Some(Value::Str(ev)) => match ev.as_str() {
                "map-started" => Some(WireEvent::MapStarted { points: uint("points")? }),
                "point-done" => Some(WireEvent::PointDone {
                    label: text("label")?,
                    cached: matches!(v.get("cached"), Some(Value::Bool(true))),
                }),
                "done" => Some(WireEvent::Done {
                    points: uint("points")?,
                    hits: uint("hits")?,
                    misses: uint("misses")?,
                }),
                "failed" => Some(WireEvent::Failed { error: text("error")? }),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Everything a `serve-worker` invocation needs (the coordinator builds
/// this into command-line flags; `src/main.rs` parses them back).
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Experiment registry name.
    pub experiment: String,
    /// Per-processor reference budget.
    pub refs: u64,
    /// Private artifact directory (`<run>/shards/<i>`).
    pub out_dir: PathBuf,
    /// Shared cache root (the run directory).
    pub cache_dir: PathBuf,
    /// This worker's shard.
    pub shard: Shard,
    /// Sweep-engine threads (`0` = engine default).
    pub jobs: usize,
    /// Peer-wait deadline before locally computing a missing point.
    pub shard_wait: Duration,
}

/// Emits one protocol line, flushing so the coordinator's line reader sees
/// it promptly even through a pipe's block buffering.
fn emit(ev: &WireEvent) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", ev.render());
    let _ = out.flush();
}

/// Runs one shard worker to completion: executes the experiment under the
/// spec's shard config, streaming protocol events to stdout. Returns the
/// process exit code (`0` clean, `1` unknown experiment or panic).
#[must_use]
pub fn run_worker(spec: &WorkerSpec) -> i32 {
    let Some(exp) = ringsim_bench::experiments::find(&spec.experiment) else {
        emit(&WireEvent::Failed { error: format!("unknown experiment `{}`", spec.experiment) });
        return 1;
    };
    let progress: ProgressFn = std::sync::Arc::new(|ev: &Progress| match ev {
        Progress::MapStarted { points } => {
            emit(&WireEvent::MapStarted { points: *points as u64 });
        }
        Progress::PointDone { label, cached } => {
            emit(&WireEvent::PointDone { label: label.clone(), cached: *cached });
        }
    });
    let mut cfg = SweepConfig::new(spec.refs)
        .out_dir(&spec.out_dir)
        .cache_dir(&spec.cache_dir)
        .shard(spec.shard)
        .shard_wait(spec.shard_wait)
        .on_progress(progress);
    if spec.jobs > 0 {
        cfg = cfg.jobs(spec.jobs);
    }
    match catch_unwind(AssertUnwindSafe(|| run_experiment(exp, &cfg))) {
        Ok(report) => {
            emit(&WireEvent::Done {
                points: report.meta.points as u64,
                hits: report.meta.cache_hits,
                misses: report.meta.cache_misses,
            });
            0
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "experiment panicked".to_owned());
            emit(&WireEvent::Failed { error: msg });
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_events_round_trip_through_render_and_parse() {
        let events = [
            WireEvent::MapStarted { points: 7 },
            WireEvent::PointDone { label: "mp3d procs=64 \"q\"".to_owned(), cached: true },
            WireEvent::PointDone { label: "x".to_owned(), cached: false },
            WireEvent::Done { points: 26, hits: 20, misses: 6 },
            WireEvent::Failed { error: "boom\nwith newline".to_owned() },
        ];
        for ev in events {
            let line = ev.render();
            assert!(line.starts_with(PROGRESS_PREFIX));
            assert!(!line.contains('\n'), "protocol lines must be single-line: {line:?}");
            assert_eq!(WireEvent::parse(&line), Some(ev));
        }
    }

    #[test]
    fn non_protocol_lines_are_ignored() {
        for line in [
            "",
            "mp3d on ring500, 16 processors",
            "  miss latency p50/p95  :  600 / 1100 ns",
            "@ringsim-progress not json",
            "@ringsim-progress {\"ev\":\"unknown\"}",
            "@ringsim-progress {\"ev\":\"done\"}",
        ] {
            assert_eq!(WireEvent::parse(line), None, "accepted {line:?}");
        }
    }
}
