//! Long-running HTTP experiment service: `ringsim serve`.
//!
//! The service fronts the [`ringsim_bench`] experiment registry with a
//! small asynchronous job queue over the deterministic sweep engine
//! ([`ringsim_sweep`]):
//!
//! * `GET  /healthz` — liveness (`ok`, or `draining` during shutdown);
//! * `GET  /experiments` — the registry as `[{name, description}]`;
//! * `POST /runs` — submit `{"experiment": "<name>", "refs": <n>?}`;
//!   returns 202 with a deterministic run id (or 200 when an identical
//!   submission already exists — see below), 429 + `Retry-After` when the
//!   bounded queue is full, 503 while draining;
//! * `GET  /runs/:id` — job status with per-point progress and sweep-cache
//!   hit/miss counts;
//! * `GET  /runs/:id/events` — live Server-Sent Events stream of the run
//!   (history replayed, then followed until the terminal event);
//! * `GET  /runs/:id/artifacts/:file` — byte-exact artifact serving;
//! * `POST /runs/:id/pin` — exempt a run from artifact retention ([`gc`]);
//! * `GET  /metrics` — process-wide simulator metrics, per-route request
//!   latency histograms, job counts, and retained obs warnings;
//! * `POST /shutdown` — programmatic drain (same path as SIGINT).
//!
//! **Dedupe by construction.** A run id is a pure function of the
//! submission — the sweep-point key scheme applied to `(experiment,
//! refs)` — so identical submissions collapse onto one job and one output
//! directory `<out>/runs/<id>`. Because that directory keeps its
//! `.cache/`, re-submitting after a restart re-runs the sweep against a
//! warm cache: zero points recomputed, byte-identical artifacts.
//!
//! **Graceful shutdown.** SIGINT/SIGTERM (or `POST /shutdown`) flips the
//! service into draining: new submissions get 503, in-flight jobs run to
//! completion, status/artifact reads keep working, and the process exits 0
//! once the pool is drained.
//!
//! The HTTP layer is a hand-rolled, hardened HTTP/1.1 subset over std
//! `TcpListener` (see [`http`]) — the build environment is offline and the
//! workspace vendors its external dependencies, so no network crates.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gc;
pub mod http;
pub mod jobs;
pub mod router;
mod signal;
pub mod worker;

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ringsim_obs::LatencyHistogram;

use crate::jobs::JobPool;
use crate::router::Reply;

/// How the service runs: bind address, storage root, queue shape,
/// execution mode (in-process pool vs shard-worker processes), retention.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks a free one).
    pub addr: String,
    /// Root directory for job outputs (`<out>/runs/<id>/`).
    pub out_dir: PathBuf,
    /// Job-worker threads (concurrent experiment runs).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before 429.
    pub queue_cap: usize,
    /// Sweep-engine threads per job (`0` = engine default).
    pub sweep_jobs: usize,
    /// Per-processor reference budget when a submission omits `refs`.
    pub default_refs: u64,
    /// Per-connection read/write timeout.
    pub request_timeout: Duration,
    /// Shard-worker processes per run; `0`/`1` keeps the in-process pool,
    /// `N >= 2` executes each run as N `serve-worker` processes merging
    /// through the run's shared cache (see [`jobs`] and [`worker`]).
    pub shards: usize,
    /// Executable to spawn as `serve-worker` (`None` = this executable;
    /// tests point it at the `ringsim` binary explicitly).
    pub worker_exe: Option<PathBuf>,
    /// Peer-wait deadline shard workers use before computing a dead peer's
    /// points themselves.
    pub shard_wait: Duration,
    /// Retention: total size budget for `<out>/runs` (`0` = unlimited).
    pub gc_max_bytes: u64,
    /// Retention: runs older than this expire (zero = never).
    pub gc_max_age: Duration,
    /// Retention: runs younger than this are never deleted.
    pub gc_min_age: Duration,
    /// How often the retention sweeper runs (zero disables it).
    pub gc_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_owned(),
            out_dir: PathBuf::from("serve-data"),
            workers: 2,
            queue_cap: 16,
            sweep_jobs: 0,
            default_refs: ringsim_bench::EXPERIMENT_REFS,
            request_timeout: Duration::from_secs(10),
            shards: 0,
            worker_exe: None,
            shard_wait: Duration::from_secs(600),
            gc_max_bytes: 0,
            gc_max_age: Duration::ZERO,
            gc_min_age: Duration::from_secs(60),
            gc_interval: Duration::from_secs(30),
        }
    }
}

impl ServeConfig {
    /// The retention policy this config describes.
    #[must_use]
    pub fn gc_policy(&self) -> gc::GcPolicy {
        gc::GcPolicy {
            max_total_bytes: self.gc_max_bytes,
            max_age: self.gc_max_age,
            min_age: self.gc_min_age,
        }
    }
}

/// Shared server state: config, job pool, and self-observation.
pub struct ServerState {
    /// The config the server was built with.
    pub cfg: ServeConfig,
    /// The bounded job pool.
    pub pool: JobPool,
    started: Instant,
    draining: AtomicBool,
    http: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
    gc_sweeps: AtomicU64,
    gc_deleted_runs: AtomicU64,
    gc_reclaimed_bytes: AtomicU64,
}

impl ServerState {
    /// Builds the state and spawns the pool's workers.
    #[must_use]
    pub fn new(cfg: ServeConfig) -> Self {
        let pool = JobPool::new(&cfg);
        // Pre-register every dispatchable route so `/metrics` reports a
        // (possibly zero-count) histogram per route from the first scrape —
        // a route that has never been hit is visible, not missing.
        let mut http = BTreeMap::new();
        for route in router::ROUTES {
            http.insert(*route, LatencyHistogram::default());
        }
        Self {
            cfg,
            pool,
            started: Instant::now(),
            draining: AtomicBool::new(false),
            http: Mutex::new(http),
            gc_sweeps: AtomicU64::new(0),
            gc_deleted_runs: AtomicU64::new(0),
            gc_reclaimed_bytes: AtomicU64::new(0),
        }
    }

    /// Flips into draining: the pool rejects new jobs, workers exit once
    /// the queue is empty, and the accept loop stops when drained.
    pub fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.pool.shutdown();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Milliseconds since the state was built.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Folds one request's wall time into the per-route latency digest.
    pub(crate) fn record_http(&self, route: &'static str, dur: Duration) {
        let mut map = self.http.lock().expect("http metrics lock");
        map.entry(route).or_default().record(dur.as_secs_f64() * 1e9);
    }

    /// Per-route latency digests, sorted by route label.
    pub(crate) fn http_stats(&self) -> Vec<(String, LatencyHistogram)> {
        let map = self.http.lock().expect("http metrics lock");
        map.iter().map(|(route, h)| ((*route).to_owned(), h.clone())).collect()
    }

    /// Folds one retention sweep's outcome into the GC counters.
    pub(crate) fn record_gc(&self, outcome: gc::SweepOutcome) {
        self.gc_sweeps.fetch_add(1, Ordering::Relaxed);
        self.gc_deleted_runs.fetch_add(outcome.deleted_runs, Ordering::Relaxed);
        self.gc_reclaimed_bytes.fetch_add(outcome.reclaimed_bytes, Ordering::Relaxed);
    }

    /// `(sweeps, deleted_runs, reclaimed_bytes)` since boot.
    pub(crate) fn gc_counters(&self) -> (u64, u64, u64) {
        (
            self.gc_sweeps.load(Ordering::Relaxed),
            self.gc_deleted_runs.load(Ordering::Relaxed),
            self.gc_reclaimed_bytes.load(Ordering::Relaxed),
        )
    }
}

/// A bound, accepting server. Dropping it leaks the accept thread; call
/// [`Server::join`] for an orderly stop.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the job workers and the accept loop, and
    /// turns the process-wide obs metrics sink on (so `/metrics` carries a
    /// simulator summary once simulator-backed experiments run).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        ringsim_obs::set_global_metrics(true);
        let state = Arc::new(ServerState::new(cfg));
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("http-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        let sweeper = if state.cfg.gc_interval.is_zero() || state.cfg.gc_policy().disabled() {
            None
        } else {
            let gc_state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("gc-sweeper".to_owned())
                    .spawn(move || gc_loop(&gc_state))?,
            )
        };
        Ok(Self { state, addr, accept: Some(accept), sweeper })
    }

    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and embedders).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests a drain without blocking (same as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.state.draining()
    }

    /// Drains and joins: rejects new jobs, finishes queued/running ones,
    /// then stops accepting and joins every service thread.
    pub fn join(mut self) {
        self.state.request_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        self.state.pool.join();
    }
}

/// Retention sweeper: every `gc_interval`, scan `<out>/runs`, delete what
/// the policy marks evictable, and fold the outcome into `/metrics`.
/// Polls the drain flag at 250 ms so shutdown isn't held up by the
/// interval.
fn gc_loop(state: &Arc<ServerState>) {
    let runs_root = state.cfg.out_dir.join("runs");
    let policy = state.cfg.gc_policy();
    let interval = state.cfg.gc_interval;
    let mut last_sweep = Instant::now();
    loop {
        if state.draining() {
            return;
        }
        if last_sweep.elapsed() >= interval {
            last_sweep = Instant::now();
            let outcome = gc::sweep_once(
                &runs_root,
                &policy,
                |id| state.pool.is_active(id),
                |id| state.pool.forget(id),
            );
            state.record_gc(outcome);
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// Accept loop: non-blocking accept polled at 15 ms so drain completion is
/// observed promptly; each connection is served on its own thread.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("http-conn".to_owned())
                    .spawn(move || handle_connection(&state, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if state.draining() && state.pool.drained() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

/// Serves one connection: one request, one response, close. Transport
/// failures are dropped silently; parse failures get the mapped 400/413.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let timeout = state.cfg.request_timeout;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = io::BufReader::new(read_half);
    let mut writer = stream;
    let start = Instant::now();
    match http::read_request(&mut reader) {
        Ok(Some(req)) => match router::dispatch(state, &req) {
            (route, Reply::Full(resp)) => {
                state.record_http(route, start.elapsed());
                let _ = resp.write_to(&mut writer);
            }
            (route, Reply::Events(cursor)) => {
                state.record_http(route, start.elapsed());
                stream_events(&mut writer, cursor);
            }
        },
        Ok(None) => {}
        Err(e) => {
            if let Some(resp) = e.response() {
                state.record_http("(rejected)", start.elapsed());
                let _ = resp.write_to(&mut writer);
            }
        }
    }
}

/// Streams a job's event log as Server-Sent Events over chunked transfer
/// encoding, replaying history first, then following live until the
/// terminal (`done`/`failed`) event. Blocks on the cursor's condvar with a
/// 1 s timeout; idle gaps emit `: keepalive` comment frames so proxies and
/// dead-peer detection see traffic. A client disconnect surfaces as a write
/// error and silently ends the stream — never the job.
fn stream_events(writer: &mut TcpStream, mut cursor: jobs::EventCursor) {
    if http::write_stream_headers(writer, "text/event-stream").is_err() {
        return;
    }
    loop {
        let batch = cursor.poll(Duration::from_secs(1));
        if batch.is_empty() {
            if http::write_chunk(writer, b": keepalive\n\n").is_err() {
                return;
            }
            continue;
        }
        for ev in batch {
            let frame = format!("event: {}\ndata: {}\n\n", ev.event, ev.data);
            if http::write_chunk(writer, frame.as_bytes()).is_err() {
                return;
            }
            if ev.terminal() {
                let _ = http::finish_chunks(writer);
                return;
            }
        }
    }
}

/// Runs the service until SIGINT/SIGTERM or `POST /shutdown`, then drains
/// and returns (the CLI exits 0 on a clean drain).
///
/// # Errors
///
/// Propagates bind I/O errors.
pub fn run(cfg: ServeConfig) -> io::Result<()> {
    signal::install();
    let server = Server::bind(cfg)?;
    eprintln!("ringsim serve: listening on http://{}", server.local_addr());
    while !signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("ringsim serve: draining (in-flight jobs run to completion)");
    server.join();
    eprintln!("ringsim serve: drained cleanly");
    Ok(())
}
