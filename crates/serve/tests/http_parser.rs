//! Fuzz-style robustness properties for the hand-rolled HTTP parser: on
//! arbitrary byte soup and on mutations of valid requests, `read_request`
//! must never panic — every input parses or maps to a clean [`HttpError`].
//!
//! The generator is a seeded SplitMix64 stream (the workspace's standard
//! deterministic PRNG finalizer), so failures replay exactly.

use std::io::Cursor;

use ringsim_serve::http::{read_request, HttpError, MAX_BODY, MAX_LINE};

/// SplitMix64: deterministic, seedable, good enough to shape byte soup.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn parse(bytes: &[u8]) -> Result<Option<ringsim_serve::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()))
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = SplitMix64(0x5eed);
    for _case in 0..2_000 {
        let len = rng.below(512);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        // Must return, not panic; any outcome is acceptable.
        let _ = parse(&bytes);
    }
}

#[test]
fn structured_soup_with_http_shards_never_panics() {
    // Byte soup biased toward HTTP-ish tokens, to reach deeper parser paths
    // than uniform noise would.
    const SHARDS: &[&[u8]] = &[
        b"GET ",
        b"POST ",
        b"/runs",
        b"/runs/abc/artifacts/x.json",
        b" HTTP/1.1",
        b" HTTP/1.0",
        b"\r\n",
        b"\n",
        b"\r",
        b"Content-Length: ",
        b"Content-Length: 99999999999999999999",
        b"Transfer-Encoding: chunked",
        b"Host: h",
        b": ",
        b"0",
        b"18446744073709551616",
        b"-1",
        b"\xff\xfe",
        b"{\"experiment\": \"fig3\"}",
        b"",
    ];
    let mut rng = SplitMix64(0xf00d);
    for _case in 0..2_000 {
        let mut bytes = Vec::new();
        for _ in 0..rng.below(12) {
            bytes.extend_from_slice(SHARDS[rng.below(SHARDS.len())]);
        }
        let _ = parse(&bytes);
    }
}

#[test]
fn mutated_valid_requests_never_panic() {
    let valid =
        b"POST /runs HTTP/1.1\r\nHost: h\r\nContent-Length: 22\r\n\r\n{\"experiment\": \"fig3\"}"
            .to_vec();
    assert!(parse(&valid).unwrap().is_some());
    let mut rng = SplitMix64(0xbeef);
    for _case in 0..2_000 {
        let mut bytes = valid.clone();
        for _ in 0..=rng.below(4) {
            match rng.below(3) {
                // Flip a byte.
                0 => {
                    if bytes.is_empty() {
                        continue;
                    }
                    let i = rng.below(bytes.len());
                    bytes[i] = (rng.next() & 0xff) as u8;
                }
                // Truncate.
                1 => bytes.truncate(rng.below(bytes.len() + 1)),
                // Duplicate a slice into the middle.
                _ => {
                    let i = rng.below(bytes.len().max(1));
                    let j = i + rng.below(bytes.len() - i + 1);
                    let slice = bytes[i..j].to_vec();
                    bytes.splice(i..i, slice);
                }
            }
        }
        let _ = parse(&bytes);
    }
}

#[test]
fn oversized_inputs_map_to_clean_errors() {
    // Request line just over the limit.
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
    assert!(matches!(parse(long_target.as_bytes()), Err(HttpError::Bad(_))));

    // Declared body over the limit: rejected from the header alone (no
    // allocation of MAX_BODY+ bytes, no panic).
    let big = format!("POST /runs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY as u64 + 1);
    assert!(matches!(parse(big.as_bytes()), Err(HttpError::BodyTooLarge(_))));

    // Absurd (non-u64) declared length is a 400, not a panic.
    let absurd = b"POST / HTTP/1.1\r\nContent-Length: 999999999999999999999999\r\n\r\n";
    assert!(matches!(parse(absurd), Err(HttpError::Bad(_))));

    // A body shorter than declared is a 400 (truncated), not a hang/panic.
    let short = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
    assert!(matches!(parse(short), Err(HttpError::Bad(_))));
}

#[test]
fn error_responses_are_renderable() {
    // Every error the parser can produce must map to a writable response
    // (or an intentional silent hang-up), never a panic.
    let cases: &[&[u8]] = &[
        b"junk\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n",
        b"GET / HTTP/2.0\r\n\r\n",
    ];
    for bytes in cases {
        let err = parse(bytes).expect_err("malformed input must error");
        if let Some(resp) = err.response() {
            let mut out = Vec::new();
            resp.write_to(&mut out).unwrap();
            assert!(out.starts_with(b"HTTP/1.1 4"), "expected a 4xx for {bytes:?}");
        }
    }
}
