//! End-to-end service test over real loopback sockets: concurrent clients
//! submit the same experiment, exactly one job runs, and every served
//! artifact is byte-identical to a direct (serial) sweep-engine run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ringsim_serve::{ServeConfig, Server};
use ringsim_sweep::{run_experiment, SweepConfig};
use serde::Value;

/// Small enough to finish in seconds, large enough to exercise every
/// sweep point (fig3 is analytic-model backed).
const REFS: u64 = 2_000;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ringsim-serve-e2e-{tag}-{}", std::process::id()))
}

/// Minimal raw-socket HTTP/1.1 client: one request, reads to EOF
/// (the server always closes), returns `(status, body_bytes)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response must have a header/body separator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("ASCII headers");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
    (status, raw[header_end + 4..].to_vec())
}

fn json(body: &[u8]) -> Value {
    serde_json::parse_value(std::str::from_utf8(body).expect("UTF-8 JSON body"))
        .expect("valid JSON body")
}

fn str_of<'v>(v: &'v Value, key: &str) -> &'v str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("expected string `{key}`, got {other:?}"),
    }
}

fn u64_of(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("expected integer `{key}`, got {other:?}"),
    }
}

fn bool_of(v: &Value, key: &str) -> bool {
    match v.get(key) {
        Some(Value::Bool(b)) => *b,
        other => panic!("expected bool `{key}`, got {other:?}"),
    }
}

/// Polls `GET /runs/:id` until the job is done (or failed/panicking).
fn wait_done(addr: &str, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/runs/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {}", String::from_utf8_lossy(&body));
        let v = json(&body);
        match str_of(&v, "state") {
            "done" => return v,
            "failed" => panic!("job failed: {v:?}"),
            _ => assert!(Instant::now() < deadline, "job did not finish in time: {v:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn concurrent_clients_dedupe_onto_one_byte_identical_run() {
    // Reference: a direct serial run of the same submission.
    let ref_dir = tmp("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let exp = ringsim_bench::experiments::find("fig3").expect("fig3 registered");
    let report = run_experiment(exp, &SweepConfig::new(REFS).jobs(1).out_dir(&ref_dir));
    assert!(!report.artifacts.is_empty());

    // Service under test, on an ephemeral port.
    let out_dir = tmp("service");
    let _ = std::fs::remove_dir_all(&out_dir);
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        out_dir: out_dir.clone(),
        workers: 2,
        queue_cap: 8,
        sweep_jobs: 2,
        default_refs: REFS,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    let (status, body) = http(&addr, "GET", "/experiments", "");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("fig3"));

    // N concurrent clients race the same submission (while also hammering
    // the status endpoint): exactly one creates the job, the rest dedupe
    // onto the same deterministic id.
    let submission = format!("{{\"experiment\": \"fig3\", \"refs\": {REFS}}}");
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let (addr, submission) = (addr.clone(), submission.clone());
            std::thread::spawn(move || {
                let (status, body) = http(&addr, "POST", "/runs", &submission);
                assert!(status == 200 || status == 202, "unexpected submit status {status}");
                let v = json(&body);
                let id = str_of(&v, "id").to_owned();
                // Interleave status reads with the other submitters.
                let (st, _) = http(&addr, "GET", &format!("/runs/{id}"), "");
                assert_eq!(st, 200);
                (id, bool_of(&v, "deduped"))
            })
        })
        .collect();
    let results: Vec<(String, bool)> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();
    let first_id = results[0].0.clone();
    assert!(results.iter().all(|(id, _)| *id == first_id), "ids diverged: {results:?}");
    assert_eq!(
        results.iter().filter(|(_, deduped)| !deduped).count(),
        1,
        "exactly one submission may create the job: {results:?}"
    );

    // The job completes; the cold run computed every point.
    let status_doc = wait_done(&addr, &first_id);
    let cache = status_doc.get("cache").expect("cache counts");
    assert_eq!(u64_of(cache, "hits"), 0, "cold run must not hit the cache");
    assert!(u64_of(cache, "misses") > 0);
    let points = status_doc.get("points").expect("points progress");
    assert_eq!(u64_of(points, "total"), u64_of(points, "completed"));

    // Every artifact the direct run produced is served byte-exactly.
    let artifact_names: Vec<String> = match status_doc.get("artifacts") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => panic!("artifact names must be strings, got {other:?}"),
            })
            .collect(),
        other => panic!("expected artifact array, got {other:?}"),
    };
    assert!(!artifact_names.is_empty());
    for artifact in &report.artifacts {
        let file = artifact.path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(artifact_names.contains(&file), "service is missing artifact {file}");
        let (status, served) =
            http(&addr, "GET", &format!("/runs/{first_id}/artifacts/{file}"), "");
        assert_eq!(status, 200);
        let direct = std::fs::read(&artifact.path).expect("reference artifact");
        assert_eq!(served, direct, "served bytes of {file} differ from the direct run");
    }

    // Re-submitting the identical request is a warm dedupe.
    let (status, body) = http(&addr, "POST", "/runs", &submission);
    assert_eq!(status, 200);
    assert!(bool_of(&json(&body), "deduped"));

    // Unknown artifacts and runs are clean 404s; bad submissions are 400s.
    let (status, _) = http(&addr, "GET", &format!("/runs/{first_id}/artifacts/../secret"), "");
    assert_eq!(status, 404);
    let (status, _) = http(&addr, "GET", "/runs/ffffffffffffffff", "");
    assert_eq!(status, 404);
    let (status, _) = http(&addr, "POST", "/runs", "{\"experiment\": \"nope\"}");
    assert_eq!(status, 400);

    // A bad `network` spelling surfaces the simulator registry's typed
    // error, candidates included, straight over the wire.
    let (status, body) =
        http(&addr, "POST", "/runs", "{\"experiment\": \"fig3\", \"network\": \"bu\"}");
    assert_eq!(status, 400);
    let msg = String::from_utf8_lossy(&body).into_owned();
    assert!(
        msg.contains("bus50-mesi") && msg.contains("bus50-dragon"),
        "ambiguous-prefix error must list every candidate: {msg}"
    );

    // /metrics reflects the traffic this test generated.
    let (status, body) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = json(&body);
    assert_eq!(u64_of(metrics.get("jobs").expect("job counts"), "done"), 1);
    let http_stats = match metrics.get("http") {
        Some(Value::Array(items)) => items,
        other => panic!("expected http stats array, got {other:?}"),
    };
    let routes: Vec<&str> = http_stats.iter().map(|s| str_of(s, "route")).collect();
    assert!(routes.contains(&"POST /runs"), "missing POST /runs in {routes:?}");
    assert!(routes.contains(&"GET /runs/:id"), "missing GET /runs/:id in {routes:?}");

    // A submission can pin the network; the ack echoes the canonical
    // registry spelling (aliases included: `sci` resolves to `sci500`),
    // and the SCI-backed experiment runs to completion.
    let sci_submission =
        format!("{{\"experiment\": \"sci_vs_fullmap\", \"refs\": {REFS}, \"network\": \"sci\"}}");
    let (status, body) = http(&addr, "POST", "/runs", &sci_submission);
    assert_eq!(status, 202, "new submission must create a job: {status}");
    let v = json(&body);
    assert_eq!(str_of(&v, "network"), "sci500");
    let sci_id = str_of(&v, "id").to_owned();
    assert_ne!(sci_id, first_id);
    wait_done(&addr, &sci_id);

    // Malformed wire input maps to a 400, not a dropped connection.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"junk\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(raw.starts_with(b"HTTP/1.1 400"), "got {:?}", String::from_utf8_lossy(&raw));

    // Graceful shutdown: join() drains and stops accepting. (The
    // 503-while-draining contract is locked by the router unit tests —
    // over the wire it would race the accept loop's exit, because a
    // drained pool lets the listener close immediately.)
    server.join();
    assert!(TcpStream::connect(&addr).is_err(), "listener must be closed after a completed drain");

    // A fresh server over the same out dir re-runs the identical
    // submission against the warm sweep cache: zero points recomputed,
    // and artifacts still match the direct run byte-for-byte.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        out_dir: out_dir.clone(),
        workers: 1,
        queue_cap: 8,
        sweep_jobs: 1,
        default_refs: REFS,
        ..ServeConfig::default()
    })
    .expect("rebind loopback");
    let addr = server.local_addr().to_string();
    let (status, body) = http(&addr, "POST", "/runs", &submission);
    assert_eq!(status, 202, "fresh server has no job registry entry yet");
    let warm_id = str_of(&json(&body), "id").to_owned();
    assert_eq!(warm_id, first_id, "run ids must be stable across restarts");
    let warm = wait_done(&addr, &warm_id);
    let cache = warm.get("cache").expect("cache counts");
    assert_eq!(u64_of(cache, "misses"), 0, "warm resubmission must not recompute: {warm:?}");
    assert!(u64_of(cache, "hits") > 0);
    for artifact in &report.artifacts {
        let file = artifact.path.file_name().unwrap().to_string_lossy().into_owned();
        let (status, served) = http(&addr, "GET", &format!("/runs/{warm_id}/artifacts/{file}"), "");
        assert_eq!(status, 200);
        assert_eq!(served, std::fs::read(&artifact.path).unwrap());
    }
    server.join();

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&out_dir);
}
