//! Property tests locking the retention planner's safety rules.
//!
//! [`ringsim_serve::gc::plan`] is a pure function from a scan snapshot to
//! an eviction list, which makes its three hard guarantees — active runs,
//! pinned runs, and younger-than-`min_age` runs are never deleted —
//! checkable over arbitrary snapshots and policies rather than a handful
//! of examples. A planner that violates any of these under any input would
//! delete a run out from under a client.

use std::time::Duration;

use proptest::prelude::*;
use ringsim_serve::gc::{plan, GcPolicy, RunInfo};

/// Builds a deterministic snapshot from proptest-chosen raw parts; the
/// third element packs the `active`/`pinned` flags in its low two bits
/// (the vendored proptest only composes tuples up to three elements).
fn snapshot(raw: &[(u64, u64, u64)]) -> Vec<RunInfo> {
    raw.iter()
        .enumerate()
        .map(|(i, &(bytes, age_secs, flags))| RunInfo {
            id: format!("run-{i:04}"),
            bytes: bytes % 1_000_000,
            age: Duration::from_secs(age_secs % 100_000),
            active: flags & 1 != 0,
            pinned: flags & 2 != 0,
        })
        .collect()
}

proptest! {
    #[test]
    fn plan_never_touches_active_pinned_or_young_runs(
        raw in prop::collection::vec(
            (0u64..1_000_000, 0u64..100_000, 0u64..4),
            0..40,
        ),
        max_total in 0u64..2_000_000,
        max_age_secs in 0u64..100_000,
        min_age_secs in 0u64..100_000,
    ) {
        let runs = snapshot(&raw);
        let policy = GcPolicy {
            max_total_bytes: max_total,
            max_age: Duration::from_secs(max_age_secs),
            min_age: Duration::from_secs(min_age_secs),
        };
        let doomed = plan(&runs, &policy);
        for id in &doomed {
            let info = runs.iter().find(|r| &r.id == id)
                .expect("planned id must come from the snapshot");
            prop_assert!(!info.active, "planned an active run: {id}");
            prop_assert!(!info.pinned, "planned a pinned run: {id}");
            prop_assert!(
                info.age >= policy.min_age,
                "planned a run younger than min_age: {id}"
            );
        }
        // No id is planned twice (the sweeper deletes each at most once).
        let mut seen = doomed.clone();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), doomed.len(), "duplicate ids in the plan");
    }

    #[test]
    fn disabled_policy_never_plans_and_age_axis_is_sound(
        raw in prop::collection::vec(
            (0u64..1_000_000, 0u64..100_000, 0u64..4),
            0..40,
        ),
        max_age_secs in 1u64..100_000,
    ) {
        let runs = snapshot(&raw);
        let off = GcPolicy {
            max_total_bytes: 0,
            max_age: Duration::ZERO,
            min_age: Duration::ZERO,
        };
        prop_assert!(plan(&runs, &off).is_empty(), "disabled policy planned evictions");

        // Age-only policy: everything evictable past max_age is planned,
        // nothing else is.
        let age_only = GcPolicy {
            max_total_bytes: 0,
            max_age: Duration::from_secs(max_age_secs),
            min_age: Duration::ZERO,
        };
        let doomed = plan(&runs, &age_only);
        for r in &runs {
            let expected = !r.active && !r.pinned && r.age > age_only.max_age;
            prop_assert_eq!(
                doomed.contains(&r.id),
                expected,
                "age axis mis-planned {}", &r.id
            );
        }
    }
}
