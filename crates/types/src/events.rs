use core::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Counts of every coherence-relevant event class in a run.
///
/// The classes are chosen so that each of the paper's protocols can derive
/// its transaction mix from them:
///
/// * the **snooping** ring cares about "local clean read miss" (no ring
///   traffic) versus everything else (one probe traversal + a block reply);
/// * the **full-map directory** ring cares about the geometry classes of
///   Figure 5 — 1-cycle clean, 1-cycle dirty and 2-cycle misses — and about
///   whether invalidations need a multicast round;
/// * the **bus** broadcasts every miss and upgrade.
///
/// `local` / `remote` refers to the position of the block's *home* node
/// relative to the requester. `_1` / `_2` on dirty-miss classes is the ring
/// traversal count: `_1` when the dirty node is *not* on the requester→home
/// path (the "fortunate" placement of paper Figure 2), `_2` otherwise.
///
/// # Examples
///
/// ```
/// use ringsim_types::CoherenceEvents;
///
/// let mut e = CoherenceEvents::default();
/// e.shared_reads = 80;
/// e.read_clean_remote = 8;
/// e.read_dirty_1 = 2;
/// assert_eq!(e.shared_misses(), 10);
/// assert_eq!(e.fig5_one_cycle_clean(), 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are the documentation; see type docs
pub struct CoherenceEvents {
    // Reference mix.
    pub private_reads: u64,
    pub private_writes: u64,
    pub shared_reads: u64,
    pub shared_writes: u64,

    // Private misses (homes are always local for private pages).
    pub private_misses: u64,

    // Shared read misses.
    pub read_clean_local: u64,
    pub read_clean_remote: u64,
    pub read_dirty_1: u64,
    pub read_dirty_2: u64,

    // Shared write misses.
    pub write_nosharers_local: u64,
    pub write_nosharers_remote: u64,
    pub write_sharers_local: u64,
    pub write_sharers_remote: u64,
    pub write_dirty_1: u64,
    pub write_dirty_2: u64,

    // Upgrades (write hits on read-shared lines; the paper's
    // "invalidations").
    pub upgrade_nosharers_local: u64,
    pub upgrade_nosharers_remote: u64,
    pub upgrade_sharers_local: u64,
    pub upgrade_sharers_remote: u64,

    // Write-backs of dirty victims, by home locality.
    pub writeback_local: u64,
    pub writeback_remote: u64,

    /// Total remote cache lines invalidated by writes/upgrades.
    pub invalidated_copies: u64,
}

impl CoherenceEvents {
    /// All data references.
    #[must_use]
    pub fn data_refs(&self) -> u64 {
        self.private_reads + self.private_writes + self.shared_reads + self.shared_writes
    }

    /// References to private data.
    #[must_use]
    pub fn private_refs(&self) -> u64 {
        self.private_reads + self.private_writes
    }

    /// References to shared data.
    #[must_use]
    pub fn shared_refs(&self) -> u64 {
        self.shared_reads + self.shared_writes
    }

    /// Shared read misses.
    #[must_use]
    pub fn shared_read_misses(&self) -> u64 {
        self.read_clean_local + self.read_clean_remote + self.read_dirty_1 + self.read_dirty_2
    }

    /// Shared write misses.
    #[must_use]
    pub fn shared_write_misses(&self) -> u64 {
        self.write_nosharers_local
            + self.write_nosharers_remote
            + self.write_sharers_local
            + self.write_sharers_remote
            + self.write_dirty_1
            + self.write_dirty_2
    }

    /// All shared misses.
    #[must_use]
    pub fn shared_misses(&self) -> u64 {
        self.shared_read_misses() + self.shared_write_misses()
    }

    /// All misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.private_misses + self.shared_misses()
    }

    /// All upgrades.
    #[must_use]
    pub fn upgrades(&self) -> u64 {
        self.upgrade_nosharers_local
            + self.upgrade_nosharers_remote
            + self.upgrade_sharers_local
            + self.upgrade_sharers_remote
    }

    /// All write-backs.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writeback_local + self.writeback_remote
    }

    /// Miss rate over all data references (upgrades are accesses, not
    /// misses — matches Table 2).
    #[must_use]
    pub fn total_miss_rate(&self) -> f64 {
        ratio(self.misses(), self.data_refs())
    }

    /// Miss rate over shared references.
    #[must_use]
    pub fn shared_miss_rate(&self) -> f64 {
        ratio(self.shared_misses(), self.shared_refs())
    }

    /// Miss rate over private references.
    #[must_use]
    pub fn private_miss_rate(&self) -> f64 {
        ratio(self.private_misses, self.private_refs())
    }

    /// Fraction of shared references that write.
    #[must_use]
    pub fn shared_write_frac(&self) -> f64 {
        ratio(self.shared_writes, self.shared_refs())
    }

    /// Fraction of private references that write.
    #[must_use]
    pub fn private_write_frac(&self) -> f64 {
        ratio(self.private_writes, self.private_refs())
    }

    /// Remote shared misses: every shared miss that must use the
    /// interconnect under the directory protocol (home remote, or dirty
    /// copy / sharers elsewhere).
    #[must_use]
    pub fn remote_misses(&self) -> u64 {
        self.fig5_one_cycle_clean() + self.fig5_one_cycle_dirty() + self.fig5_two_cycle()
    }

    /// Figure 5 class: misses satisfied by a remote home in one traversal
    /// with no third party (clean remote misses, plus local-home multicasts
    /// which also take one traversal).
    #[must_use]
    pub fn fig5_one_cycle_clean(&self) -> u64 {
        self.read_clean_remote + self.write_nosharers_remote + self.write_sharers_local
    }

    /// Figure 5 class: dirty misses resolved in one traversal thanks to the
    /// fortunate position of the dirty node.
    #[must_use]
    pub fn fig5_one_cycle_dirty(&self) -> u64 {
        self.read_dirty_1 + self.write_dirty_1
    }

    /// Figure 5 class: misses needing two ring traversals (unfortunate dirty
    /// node, or a multicast invalidation round before the reply).
    #[must_use]
    pub fn fig5_two_cycle(&self) -> u64 {
        self.read_dirty_2 + self.write_dirty_2 + self.write_sharers_remote
    }

    /// Fraction of shared misses that found the block dirty in a remote
    /// cache.
    #[must_use]
    pub fn dirty_miss_frac(&self) -> f64 {
        ratio(
            self.read_dirty_1 + self.read_dirty_2 + self.write_dirty_1 + self.write_dirty_2,
            self.shared_misses(),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for CoherenceEvents {
    type Output = CoherenceEvents;
    fn add(mut self, rhs: CoherenceEvents) -> CoherenceEvents {
        self += rhs;
        self
    }
}

impl AddAssign for CoherenceEvents {
    fn add_assign(&mut self, rhs: CoherenceEvents) {
        self.private_reads += rhs.private_reads;
        self.private_writes += rhs.private_writes;
        self.shared_reads += rhs.shared_reads;
        self.shared_writes += rhs.shared_writes;
        self.private_misses += rhs.private_misses;
        self.read_clean_local += rhs.read_clean_local;
        self.read_clean_remote += rhs.read_clean_remote;
        self.read_dirty_1 += rhs.read_dirty_1;
        self.read_dirty_2 += rhs.read_dirty_2;
        self.write_nosharers_local += rhs.write_nosharers_local;
        self.write_nosharers_remote += rhs.write_nosharers_remote;
        self.write_sharers_local += rhs.write_sharers_local;
        self.write_sharers_remote += rhs.write_sharers_remote;
        self.write_dirty_1 += rhs.write_dirty_1;
        self.write_dirty_2 += rhs.write_dirty_2;
        self.upgrade_nosharers_local += rhs.upgrade_nosharers_local;
        self.upgrade_nosharers_remote += rhs.upgrade_nosharers_remote;
        self.upgrade_sharers_local += rhs.upgrade_sharers_local;
        self.upgrade_sharers_remote += rhs.upgrade_sharers_remote;
        self.writeback_local += rhs.writeback_local;
        self.writeback_remote += rhs.writeback_remote;
        self.invalidated_copies += rhs.invalidated_copies;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoherenceEvents {
        CoherenceEvents {
            private_reads: 700,
            private_writes: 300,
            shared_reads: 160,
            shared_writes: 40,
            private_misses: 5,
            read_clean_local: 2,
            read_clean_remote: 10,
            read_dirty_1: 3,
            read_dirty_2: 4,
            write_nosharers_local: 1,
            write_nosharers_remote: 2,
            write_sharers_local: 1,
            write_sharers_remote: 3,
            write_dirty_1: 1,
            write_dirty_2: 2,
            upgrade_nosharers_local: 1,
            upgrade_nosharers_remote: 2,
            upgrade_sharers_local: 3,
            upgrade_sharers_remote: 4,
            writeback_local: 6,
            writeback_remote: 7,
            invalidated_copies: 11,
        }
    }

    #[test]
    fn totals_add_up() {
        let e = sample();
        assert_eq!(e.data_refs(), 1200);
        assert_eq!(e.shared_read_misses(), 19);
        assert_eq!(e.shared_write_misses(), 10);
        assert_eq!(e.shared_misses(), 29);
        assert_eq!(e.misses(), 34);
        assert_eq!(e.upgrades(), 10);
        assert_eq!(e.writebacks(), 13);
    }

    #[test]
    fn rates() {
        let e = sample();
        assert!((e.total_miss_rate() - 34.0 / 1200.0).abs() < 1e-12);
        assert!((e.shared_miss_rate() - 29.0 / 200.0).abs() < 1e-12);
        assert!((e.shared_write_frac() - 0.2).abs() < 1e-12);
        assert!((e.private_write_frac() - 0.3).abs() < 1e-12);
        assert_eq!(CoherenceEvents::default().total_miss_rate(), 0.0);
    }

    #[test]
    fn fig5_partition_covers_remote_misses() {
        let e = sample();
        let remote = e.fig5_one_cycle_clean() + e.fig5_one_cycle_dirty() + e.fig5_two_cycle();
        assert_eq!(remote, e.remote_misses());
        // Every shared miss is either local-clean or in a Figure 5 class.
        assert_eq!(e.shared_misses(), remote + e.read_clean_local + e.write_nosharers_local);
    }

    #[test]
    fn addition_is_fieldwise() {
        let e = sample();
        let sum = e + e;
        assert_eq!(sum.data_refs(), 2 * e.data_refs());
        assert_eq!(sum.misses(), 2 * e.misses());
        assert_eq!(sum.invalidated_copies, 22);
    }

    #[test]
    fn dirty_fraction() {
        let e = sample();
        assert!((e.dirty_miss_frac() - 10.0 / 29.0).abs() < 1e-12);
    }
}
