use core::fmt;
use std::error::Error;

/// Error returned when a simulation configuration is internally inconsistent
/// (zero nodes, non-power-of-two block size, and so on).
///
/// # Examples
///
/// ```
/// use ringsim_types::ConfigError;
///
/// let e = ConfigError::new("nodes", "must be at least 2");
/// assert_eq!(e.to_string(), "invalid config field `nodes`: must be at least 2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates a new configuration error for `field` with a human-readable
    /// `reason`.
    #[must_use]
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self { field: field.into(), reason: reason.into() }
    }

    /// Name of the offending configuration field.
    #[must_use]
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Why the field is invalid.
    #[must_use]
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = ConfigError::new("block_size", "must be a power of two");
        assert_eq!(e.field(), "block_size");
        assert_eq!(e.reason(), "must be a power of two");
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
