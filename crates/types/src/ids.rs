use core::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a processing element (processor + cache + memory partition +
/// ring/bus interface).
///
/// Nodes are numbered `0..n` in ring order: node `i` forwards messages to
/// node `(i + 1) % n`.
///
/// # Examples
///
/// ```
/// use ringsim_types::NodeId;
///
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(n.to_string(), "P5");
/// assert_eq!(n.successor(8), NodeId::new(6));
/// assert_eq!(NodeId::new(7).successor(8), NodeId::new(0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from its position on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16` (systems are at most a few
    /// hundred nodes).
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u16::try_from(index).expect("node index exceeds u16"))
    }

    /// Position of this node on the ring, in `0..n`.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The next node downstream on a unidirectional ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `self` is not a valid node of an `n`-node
    /// ring.
    #[must_use]
    pub fn successor(self, n: usize) -> Self {
        assert!(n > 0 && self.index() < n, "node {self} not in 0..{n}");
        Self::new((self.index() + 1) % n)
    }

    /// Iterator over all node ids of an `n`-node system, in ring order.
    ///
    /// # Examples
    ///
    /// ```
    /// use ringsim_types::NodeId;
    /// let ids: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(ids, [NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId::new)
    }

    /// Number of downstream hops from `self` to `to` on an `n`-node
    /// unidirectional ring. Zero when `self == to`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ringsim_types::NodeId;
    /// assert_eq!(NodeId::new(2).hops_to(NodeId::new(5), 8), 3);
    /// assert_eq!(NodeId::new(5).hops_to(NodeId::new(2), 8), 5);
    /// assert_eq!(NodeId::new(4).hops_to(NodeId::new(4), 8), 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if either node is not a valid node of an `n`-node ring.
    #[must_use]
    pub fn hops_to(self, to: NodeId, n: usize) -> usize {
        assert!(self.index() < n && to.index() < n, "node out of range for ring of {n}");
        (to.index() + n - self.index()) % n
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        Self(v)
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> Self {
        v.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 7, 63, 255] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn successor_wraps() {
        assert_eq!(NodeId::new(15).successor(16), NodeId::new(0));
        assert_eq!(NodeId::new(0).successor(16), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn successor_rejects_out_of_range() {
        let _ = NodeId::new(16).successor(16);
    }

    #[test]
    fn hops_are_ring_distances() {
        let n = 8;
        for a in 0..n {
            for b in 0..n {
                let d = NodeId::new(a).hops_to(NodeId::new(b), n);
                assert!(d < n);
                assert_eq!((a + d) % n, b);
            }
        }
    }

    #[test]
    fn display_is_paper_style() {
        assert_eq!(NodeId::new(11).to_string(), "P11");
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<usize> = NodeId::all(5).map(NodeId::index).collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }
}
