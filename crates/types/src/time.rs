use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Simulated time, stored as an integer number of picoseconds.
///
/// Picoseconds are fine enough to represent every clock in the paper exactly
/// (500 MHz ring = 2000 ps, 250 MHz ring = 4000 ps, buses at 10–20 ns,
/// processor cycles of 1–20 ns) while `u64` still covers ~213 days of
/// simulated time.
///
/// `Time` is used both for points in time and for durations; the arithmetic
/// provided is the subset that is meaningful for either use.
///
/// # Examples
///
/// ```
/// use ringsim_types::Time;
///
/// let ring_cycle = Time::from_ns(2);
/// let mem = Time::from_ns(140);
/// assert_eq!(mem / ring_cycle, 70);
/// assert_eq!((ring_cycle * 30).as_ns_f64(), 60.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero time / zero duration.
    pub const ZERO: Time = Time(0);

    /// Creates a time from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Self(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Self(us * 1_000_000)
    }

    /// Creates a duration from a fractional number of nanoseconds, rounding
    /// to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[must_use]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "duration must be finite and non-negative");
        Self((ns * 1_000.0).round() as u64)
    }

    /// This time in picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time in (possibly fractional) nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// `true` when this is the zero time.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of whole periods of length `period` that fit in `self`
    /// (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn cycles(self, period: Time) -> u64 {
        assert!(!period.is_zero(), "period must be non-zero");
        self.0 / period.0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("simulated time overflow"))
    }
}

impl Div<Time> for Time {
    /// Integer division of durations: how many `rhs` fit in `self`.
    type Output = u64;
    fn div(self, rhs: Time) -> u64 {
        self.cycles(rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}ns", self.0 / 1_000)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Time::from_ns(2).as_ps(), 2_000);
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ns_f64(2.5).as_ps(), 2_500);
        assert!((Time::from_ps(1_500).as_ns_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / b, 2);
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn sum_and_display() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3));
        assert_eq!(total.to_string(), "3ns");
        assert_eq!(Time::from_ps(1_500).to_string(), "1500ps");
    }

    #[test]
    fn cycle_counts() {
        assert_eq!(Time::from_ns(141).cycles(Time::from_ns(2)), 70);
    }
}
