use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{Addr, NodeId};

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// Whether an address belongs to a processor-private region or to the shared
/// region of the address space.
///
/// The trace generator knows this statically (it allocates the regions); the
/// simulators use it for accounting (Table 2 separates private from shared
/// references) and for page placement (private pages are local to their
/// owner, shared pages are distributed pseudo-randomly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Data private to one processor.
    Private,
    /// Data potentially accessed by several processors.
    Shared,
}

impl Region {
    /// `true` for [`Region::Shared`].
    #[must_use]
    pub const fn is_shared(self) -> bool {
        matches!(self, Region::Shared)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::Private => "private",
            Region::Shared => "shared",
        })
    }
}

/// One data memory reference issued by a processor.
///
/// Instruction fetches are not represented individually: the paper assumes
/// instruction references never miss, so the simulators charge instruction
/// time as whole processor cycles between data references (see
/// `ringsim-trace`).
///
/// # Examples
///
/// ```
/// use ringsim_types::{AccessKind, Addr, MemRef, NodeId, Region};
///
/// let r = MemRef {
///     node: NodeId::new(2),
///     addr: Addr::new(0x4000),
///     kind: AccessKind::Write,
///     region: Region::Shared,
/// };
/// assert!(r.kind.is_write());
/// assert!(r.region.is_shared());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Issuing processor.
    pub node: NodeId,
    /// Byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Private or shared region.
    pub region: Region,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} ({})", self.node, self.kind, self.addr, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn region_predicates() {
        assert!(Region::Shared.is_shared());
        assert!(!Region::Private.is_shared());
    }

    #[test]
    fn display_is_compact() {
        let r = MemRef {
            node: NodeId::new(1),
            addr: Addr::new(0x10),
            kind: AccessKind::Read,
            region: Region::Private,
        };
        assert_eq!(r.to_string(), "P1 R 0x10 (private)");
    }
}
