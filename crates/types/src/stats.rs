//! Lightweight metric primitives shared by the simulators.
//!
//! * [`Counter`] — monotonically increasing event count,
//! * [`RunningMean`] — streaming mean/min/max of a series,
//! * [`Histogram`] — fixed-bin histogram with overflow bin,
//! * [`BusyTracker`] — time-weighted busy fraction (processor, bus and slot
//!   utilisation are all computed with it).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::Time;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ringsim_types::stats::Counter;
///
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This count as a fraction of `total` (0 when `total` is 0).
    #[must_use]
    pub fn frac_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Streaming mean, minimum and maximum of an `f64` series.
///
/// # Examples
///
/// ```
/// use ringsim_types::stats::RunningMean;
///
/// let mut m = RunningMean::default();
/// m.push(1.0);
/// m.push(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.min(), Some(1.0));
/// assert_eq!(m.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningMean {
    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Adds a [`Time`] sample, in nanoseconds.
    pub fn push_time_ns(&mut self, t: Time) {
        self.push(t.as_ns_f64());
    }

    /// Number of samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 with no samples).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of the samples.
    #[must_use]
    pub const fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample seen, if any.
    #[must_use]
    pub const fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample seen, if any.
    #[must_use]
    pub const fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another series into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }
}

/// Fixed-width-bin histogram with an overflow bin.
///
/// # Examples
///
/// ```
/// use ringsim_types::stats::Histogram;
///
/// let mut h = Histogram::new(10.0, 5); // bins [0,10), [10,20), ... [40,50), overflow
/// h.record(3.0);
/// h.record(47.0);
/// h.record(500.0);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width` starting at
    /// zero, plus an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive or `bins` is zero.
    #[must_use]
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Self { bin_width, bins: vec![0; bins], overflow: 0 }
    }

    /// Records one sample (negative samples count in bin 0).
    pub fn record(&mut self, x: f64) {
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of regular bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples that exceeded the last bin.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Approximate `q`-quantile (0–1) of the recorded samples: the upper
    /// edge of the bin containing the quantile, or infinity when it falls
    /// into the overflow bin. Returns `None` with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        Some(f64::INFINITY)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths or counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

/// Tracks the fraction of simulated time a resource is busy.
///
/// Call [`BusyTracker::set_busy`] on every state change and
/// [`BusyTracker::finish`] at the end of the simulation; the busy fraction is
/// time-weighted.
///
/// # Examples
///
/// ```
/// use ringsim_types::stats::BusyTracker;
/// use ringsim_types::Time;
///
/// let mut b = BusyTracker::new();
/// b.set_busy(true, Time::ZERO);
/// b.set_busy(false, Time::from_ns(30));
/// b.finish(Time::from_ns(100));
/// assert!((b.busy_fraction(Time::from_ns(100)) - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyTracker {
    busy: bool,
    since: Time,
    busy_time: Time,
    finished: bool,
}

impl BusyTracker {
    /// Creates an idle tracker at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a state change at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous state change.
    pub fn set_busy(&mut self, busy: bool, now: Time) {
        if self.busy {
            self.busy_time += now - self.since;
        } else {
            // Idle interval: just validate monotonicity.
            assert!(now >= self.since, "time went backwards");
        }
        self.busy = busy;
        self.since = now;
    }

    /// Closes the measurement interval at `end`.
    pub fn finish(&mut self, end: Time) {
        if self.busy {
            self.busy_time += end - self.since;
            self.busy = false;
        }
        self.since = end;
        self.finished = true;
    }

    /// Total busy time accumulated so far.
    #[must_use]
    pub const fn busy_time(&self) -> Time {
        self.busy_time
    }

    /// Busy time as a fraction of `total` (0 when `total` is zero).
    #[must_use]
    pub fn busy_fraction(&self, total: Time) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / total.as_ps() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fraction() {
        let mut c = Counter::default();
        c.add(25);
        assert!((c.frac_of(100) - 0.25).abs() < 1e-12);
        assert_eq!(Counter::default().frac_of(0), 0.0);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::default();
        let mut b = RunningMean::default();
        a.push(1.0);
        b.push(5.0);
        b.push(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 5.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn running_mean_empty() {
        let m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::new(1.0, 3);
        for x in [0.5, 1.5, 1.9, 2.5, 7.0] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 2);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bins(), 3);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10.0, 10);
        for x in [5.0, 15.0, 25.0, 35.0] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.25), Some(10.0));
        assert_eq!(h.quantile(0.5), Some(20.0));
        assert_eq!(h.quantile(1.0), Some(40.0));
        assert_eq!(Histogram::new(1.0, 2).quantile(0.5), None);
        h.record(1e9);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn merge_adds_bins() {
        let mut a = Histogram::new(1.0, 3);
        let mut b = Histogram::new(1.0, 3);
        a.record(0.5);
        b.record(0.7);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn busy_tracker_interleaved() {
        let mut b = BusyTracker::new();
        b.set_busy(true, Time::from_ns(10));
        b.set_busy(false, Time::from_ns(20));
        b.set_busy(true, Time::from_ns(50));
        b.finish(Time::from_ns(100));
        assert_eq!(b.busy_time(), Time::from_ns(60));
        assert!((b.busy_fraction(Time::from_ns(100)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_idempotent_state() {
        let mut b = BusyTracker::new();
        b.set_busy(true, Time::from_ns(0));
        b.set_busy(true, Time::from_ns(10)); // still busy: accumulates
        b.finish(Time::from_ns(20));
        assert_eq!(b.busy_time(), Time::from_ns(20));
    }
}
