//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the simulator (page placement, synthetic
//! workload generation) flows through [`Xoshiro256`], a small, fast,
//! well-studied generator (xoshiro256** by Blackman & Vigna). Keeping the
//! generator in-tree guarantees bit-identical traces across platforms and
//! `rand`-crate versions, which the test suite relies on.
//!
//! # Examples
//!
//! ```
//! use ringsim_types::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

use serde::{Deserialize, Serialize};

/// The xoshiro256** generator with a SplitMix64 seeding routine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// One step of SplitMix64, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the seeding procedure recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used to give each processor / pool its own stream so that changing one
    /// parameter does not perturb unrelated random choices.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire rejection sampling for an unbiased result.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks one index in `0..weights.len()` with probability proportional to
    /// its weight. Returns `None` when all weights are zero or the slice is
    /// empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn differs_for_different_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_is_roughly_uniform() {
        let mut g = Xoshiro256::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[g.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10k; allow generous slack.
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn range_endpoints() {
        let mut g = Xoshiro256::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = g.range(10, 12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut g = Xoshiro256::seed_from_u64(5);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
    }

    #[test]
    fn weighted_pick_skips_zero_weights() {
        let mut g = Xoshiro256::seed_from_u64(6);
        for _ in 0..1_000 {
            let i = g.pick_weighted(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(i, 1);
        }
        assert_eq!(g.pick_weighted(&[]), None);
        assert_eq!(g.pick_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_pick_tracks_proportions() {
        let mut g = Xoshiro256::seed_from_u64(8);
        let mut hits = [0u32; 2];
        for _ in 0..30_000 {
            hits[g.pick_weighted(&[1.0, 3.0]).unwrap()] += 1;
        }
        let frac = f64::from(hits[1]) / 30_000.0;
        assert!((0.72..0.78).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Xoshiro256::seed_from_u64(10);
        let mut a = base.fork(0);
        let mut b = base.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
