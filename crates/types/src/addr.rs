use core::fmt;

use serde::{Deserialize, Serialize};

/// A physical byte address.
///
/// Addresses are plain 64-bit values; block and page views are derived with
/// an explicit size so that the block size stays a run-time simulation
/// parameter (the paper sweeps 16–128 byte blocks in Table 3).
///
/// # Examples
///
/// ```
/// use ringsim_types::Addr;
///
/// let a = Addr::new(0x1fe8);
/// assert_eq!(a.block(16).raw(), 0x1fe);
/// assert_eq!(a.page(4096).raw(), 0x1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw byte value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    #[must_use]
    pub fn block(self, block_size: u64) -> BlockAddr {
        assert!(block_size.is_power_of_two(), "block size must be a power of two");
        BlockAddr(self.0 >> block_size.trailing_zeros())
    }

    /// The page containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    #[must_use]
    pub fn page(self, page_size: u64) -> PageAddr {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        PageAddr(self.0 >> page_size.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A cache-block-aligned address (byte address divided by the block size).
///
/// The probe-slot parity rule of the slotted ring (one probe slot for even
/// blocks, one for odd blocks) is exposed via [`BlockAddr::is_even`].
///
/// # Examples
///
/// ```
/// use ringsim_types::BlockAddr;
///
/// assert!(BlockAddr::new(4).is_even());
/// assert!(!BlockAddr::new(5).is_even());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw block number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this block has an even block number.
    ///
    /// Even blocks use the even probe slot of each ring frame, odd blocks the
    /// odd probe slot, so that the dual snooping directory can be 2-way
    /// interleaved (paper §3.3).
    #[must_use]
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The first byte address of the block, given the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    #[must_use]
    pub fn base_addr(self, block_size: u64) -> Addr {
        assert!(block_size.is_power_of_two(), "block size must be a power of two");
        Addr(self.0 << block_size.trailing_zeros())
    }

    /// The page containing this block.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `block_size` is not a power of two, or if the
    /// block is larger than the page.
    #[must_use]
    pub fn page(self, block_size: u64, page_size: u64) -> PageAddr {
        assert!(block_size <= page_size, "block larger than page");
        self.base_addr(block_size).page(page_size)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A page-aligned address. Pages are the unit of home-node placement: the
/// paper allocates shared pages pseudo-randomly among the nodes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a raw page number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw page number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{:#x}", self.0)
    }
}

impl From<u64> for PageAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction() {
        let a = Addr::new(0x12345);
        assert_eq!(a.block(16), BlockAddr::new(0x1234));
        assert_eq!(a.block(64), BlockAddr::new(0x48d));
    }

    #[test]
    fn parity_matches_block_number() {
        assert!(Addr::new(0x20).block(16).is_even());
        assert!(!Addr::new(0x30).block(16).is_even());
    }

    #[test]
    fn base_addr_roundtrip() {
        let b = Addr::new(0xabcd).block(16);
        let base = b.base_addr(16);
        assert_eq!(base.raw(), 0xabc0);
        assert_eq!(base.block(16), b);
    }

    #[test]
    fn page_of_block_matches_page_of_addr() {
        let a = Addr::new(0x7_1234);
        assert_eq!(a.block(16).page(16, 4096), a.page(4096));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        let _ = Addr::new(0).block(24);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0xff).to_string(), "0xff");
        assert_eq!(BlockAddr::new(0xf).to_string(), "B0xf");
        assert_eq!(PageAddr::new(2).to_string(), "pg0x2");
    }
}
