//! Shared vocabulary types for the `ringsim` simulator family.
//!
//! This crate defines the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! * [`NodeId`] — identity of a processing element on the ring or bus,
//! * [`Addr`] / [`BlockAddr`] / [`PageAddr`] — physical addresses at byte,
//!   cache-block and page granularity,
//! * [`Time`] — simulated time in integer picoseconds,
//! * [`AccessKind`] / [`MemRef`] — memory-reference vocabulary shared by the
//!   trace generator and the simulators,
//! * [`rng`] — a small deterministic PRNG ([`rng::Xoshiro256`]) so that every
//!   simulation is exactly reproducible across platforms,
//! * [`stats`] — counters, running means and histograms used for metrics.
//!
//! # Examples
//!
//! ```
//! use ringsim_types::{Addr, BlockAddr, NodeId, Time};
//!
//! let addr = Addr::new(0x1234);
//! let block = addr.block(16);
//! assert_eq!(block, BlockAddr::new(0x123));
//! assert!(!block.is_even());
//!
//! let t = Time::from_ns(140);
//! assert_eq!(t.as_ps(), 140_000);
//! assert_eq!(NodeId::new(3).index(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod events;
mod ids;
mod mem;
pub mod rng;
pub mod stats;
mod time;

pub use addr::{Addr, BlockAddr, PageAddr};
pub use error::ConfigError;
pub use events::CoherenceEvents;
pub use ids::NodeId;
pub use mem::{AccessKind, MemRef, Region};
pub use time::Time;
