//! Murphi-style exhaustive model checker for ringsim's coherence protocols.
//!
//! For small configurations (2–4 nodes, 1–2 blocks) the checker enumerates
//! *every* reachable protocol state by breadth-first search over an abstract
//! machine ([`mod@model`]'s docs explain the abstractions and why they are
//! sound). The machine is built from the same [`ringsim_cache::Cache`],
//! [`ringsim_proto::Directory`] and [`ringsim_proto::HomeMemory`] objects the
//! timed simulators use, and every transition consults the shared tables in
//! [`ringsim_proto::transitions`] — so the states explored here are the
//! states the simulator can actually produce, not a re-implementation.
//!
//! On every reachable state the checker evaluates the shared
//! [`ringsim_proto::invariants`]:
//!
//! * **SWMR** — at most one writable copy, no readers alongside it,
//! * **dirty-data reachability** — a dirty block always has a live owner,
//!   an in-flight write-back, or an in-progress transaction accounting
//!   for it,
//! * **directory–cache agreement** — at quiescence the presence bits and
//!   owner pointer match the caches exactly,
//! * **deadlock freedom** — every non-quiescent state has an enabled
//!   protocol step, and (optionally) **livelock freedom** — every state can
//!   reach a quiescent one.
//!
//! A violation is reported as a shortest-path counterexample: the BFS
//! spanning tree gives the sequence of scheduler steps from the initial
//! state, followed by a rendering of the offending state.
//!
//! Mutation testing is built in: [`Fault`] reinstates known-bad behaviours
//! (skipping an invalidation, forgetting the owner pointer, parking
//! forwards behind a buffered write-back) so the test suite can prove the
//! checker *would* catch each class of bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

use ringsim_proto::ProtocolKind;
use ringsim_types::ConfigError;

mod explore;
mod model;

/// A deliberately injected protocol bug, for mutation-testing the checker.
///
/// Each fault reinstates a concrete wrong behaviour; `explore` must flag a
/// violation under every fault, proving the invariants have teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the protocols as shipped.
    #[default]
    None,
    /// The highest-numbered node ignores invalidations, so a stale reader
    /// survives a write — a SWMR violation.
    SkipInvalidate,
    /// The home never records the new owner (directory) / never sets the
    /// dirty bit (snooping), so dirty data becomes unaccounted for.
    ForgetOwner,
    /// Directory forwards park behind *any* transaction of the target node,
    /// even when the target's write-back buffer could serve them — the
    /// deadlock this checker found in the seed `RingSystem::deliver`.
    ParkBusyForwards,
}

impl Fault {
    /// All faults, including [`Fault::None`].
    pub const ALL: [Fault; 4] =
        [Fault::None, Fault::SkipInvalidate, Fault::ForgetOwner, Fault::ParkBusyForwards];

    /// The CLI spelling of this fault.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::SkipInvalidate => "skip-invalidate",
            Fault::ForgetOwner => "forget-owner",
            Fault::ParkBusyForwards => "park-busy-forwards",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Fault {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fault::ALL.into_iter().find(|f| f.name() == s).ok_or_else(|| {
            ConfigError::new(
                "fault",
                "must be one of none, skip-invalidate, forget-owner, park-busy-forwards",
            )
        })
    }
}

/// One model-checking run: a protocol, a tiny configuration, and options.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Which protocol's transition tables to drive.
    pub protocol: ProtocolKind,
    /// Ring size; exhaustive exploration is feasible up to about 4.
    pub nodes: usize,
    /// Distinct cache blocks in play (homes assigned round-robin).
    pub blocks: usize,
    /// Injected bug, if any (mutation testing).
    pub fault: Fault,
    /// Cap on stored states; exploration past the cap marks the report
    /// incomplete instead of aborting.
    pub max_states: usize,
    /// Also prove every state can reach quiescence (reverse reachability
    /// over the full graph; requires a complete exploration).
    pub check_liveness: bool,
    /// Include explicit eviction moves (conflict-miss stand-ins).
    pub evictions: bool,
}

impl CheckConfig {
    /// A configuration with the defaults used by `ringsim check`.
    pub fn new(protocol: ProtocolKind, nodes: usize, blocks: usize) -> Self {
        CheckConfig {
            protocol,
            nodes,
            blocks,
            fault: Fault::None,
            max_states: 4_000_000,
            check_liveness: true,
            evictions: true,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if !(2..=8).contains(&self.nodes) {
            return Err(ConfigError::new("nodes", "exhaustive checking needs 2..=8 nodes"));
        }
        if !(1..=4).contains(&self.blocks) {
            return Err(ConfigError::new("blocks", "exhaustive checking needs 1..=4 blocks"));
        }
        if self.max_states == 0 {
            return Err(ConfigError::new("max_states", "must be positive"));
        }
        Ok(())
    }
}

/// A counterexample: what went wrong and how to get there.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that failed, with block and node detail.
    pub message: String,
    /// Human-readable shortest path from the initial state, ending with a
    /// rendering of the offending state.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {step}")?;
        }
        Ok(())
    }
}

/// The outcome of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Protocol checked.
    pub protocol: ProtocolKind,
    /// Nodes in the configuration.
    pub nodes: usize,
    /// Blocks in the configuration.
    pub blocks: usize,
    /// Injected fault, if any.
    pub fault: Fault,
    /// Distinct reachable states discovered.
    pub states: usize,
    /// Transitions (edges) taken, including duplicates into known states.
    pub transitions: u64,
    /// States with no outstanding transactions or in-flight messages.
    pub quiescent_states: usize,
    /// Longest shortest-path distance from the initial state.
    pub depth: usize,
    /// Whether the whole graph fit under `max_states`.
    pub complete: bool,
    /// Whether the quiescence-reachability (livelock) pass ran.
    pub livelock_checked: bool,
    /// The first invariant violation found, if any.
    pub violation: Option<Violation>,
}

impl CheckReport {
    /// True when the exploration finished with no violation.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}n/{}b: {} states, {} transitions, {} quiescent, depth {}{}{}",
            self.protocol,
            self.nodes,
            self.blocks,
            self.states,
            self.transitions,
            self.quiescent_states,
            self.depth,
            if self.complete { "" } else { " (truncated)" },
            if self.livelock_checked { ", livelock-free" } else { "" },
        )?;
        if self.fault != Fault::None {
            write!(f, " [fault: {}]", self.fault)?;
        }
        match &self.violation {
            None => write!(f, " — OK"),
            Some(v) => write!(f, " — FAILED: {}", v.message),
        }
    }
}

/// Exhaustively explores the configuration and checks every invariant.
///
/// Returns `Err` only for nonsensical configurations; a protocol bug is
/// reported inside the [`CheckReport`] as a [`Violation`].
pub fn explore(cfg: &CheckConfig) -> Result<CheckReport, ConfigError> {
    cfg.validate()?;
    Ok(explore::run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(f.name().parse::<Fault>().unwrap(), f);
        }
        assert!("bogus".parse::<Fault>().is_err());
    }

    #[test]
    fn config_bounds_are_enforced() {
        let mut c = CheckConfig::new(ProtocolKind::Snooping, 1, 1);
        assert!(explore(&c).is_err());
        c.nodes = 2;
        c.blocks = 0;
        assert!(explore(&c).is_err());
        c.blocks = 1;
        c.max_states = 0;
        assert!(explore(&c).is_err());
    }
}
