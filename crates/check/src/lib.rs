//! Murphi-style exhaustive model checker for ringsim's coherence protocols.
//!
//! For small configurations the checker enumerates *every* reachable
//! protocol state by breadth-first search over an abstract machine
//! ([`mod@model`]'s docs explain the abstractions and why they are sound).
//! The machine is built from the same [`ringsim_cache::Cache`],
//! [`ringsim_proto::Directory`] and [`ringsim_proto::HomeMemory`] objects the
//! timed simulators use, and every transition consults the shared guarded
//! rule sets in [`ringsim_proto::guarded`] — so the states explored here are
//! the states the simulator can actually produce, not a re-implementation.
//!
//! Three scaling levers keep exhaustive runs tractable past 4 nodes:
//! symmetry reduction (only one representative per node/block-permutation
//! orbit is stored — `sym`'s docs derive the sound group), a
//! hash-compacted visited set (64-bit fingerprints instead of full state
//! encodings, Murphi's classic trade of a ~`n²/2⁶⁴` collision risk for an
//! order-of-magnitude memory saving), and a level-synchronous parallel BFS
//! ([`CheckConfig::jobs`]) whose deterministic merge keeps every report
//! byte-identical regardless of worker count.
//!
//! [`CheckConfig::validate`] accepts 2..=8 nodes and 1..=4 blocks, but what
//! is *practically* exhaustive differs sharply per protocol — the
//! directory's home-side queues and write-back buffers multiply states far
//! faster than the snooping dirty bit does. Measured complete state-space
//! sizes (fault-free, with evictions):
//!
//! | configuration | Snooping | Directory |
//! |---------------|---------:|----------:|
//! | 3 nodes / 1 block | ~2.5 k | ~243 k |
//! | 4 nodes / 1 block | ~38 k  | > 35 M (truncated) |
//! | 4 nodes / 2 blocks | > 10 M | ~100 M+ |
//!
//! With symmetry reduction on (the default), snooping is exhaustive
//! through 5 nodes / 1 block in under a second (33 838 canonical states)
//! and 4 nodes / 2 blocks in minutes (5 437 317 canonical states);
//! the directory protocol reaches 5 nodes / 1 block in seconds with
//! `evictions` off (172 589 states — the replacement-free protocol core),
//! but with evictions on it exceeds 13 M canonical states already at
//! 4 nodes. At 6 nodes / 2 blocks both protocols exceed 30 M canonical
//! states even without evictions; there, set `max_states` and treat the
//! truncated run as a bounded smoke test (CI does exactly this).
//!
//! On every reachable state the checker evaluates the shared
//! [`ringsim_proto::invariants`]:
//!
//! * **SWMR** — at most one writable copy, no readers alongside it,
//! * **dirty-data reachability** — a dirty block always has a live owner,
//!   an in-flight write-back, or an in-progress transaction accounting
//!   for it,
//! * **directory–cache agreement** — at quiescence the presence bits and
//!   owner pointer match the caches exactly,
//! * **deadlock freedom** — every non-quiescent state has an enabled
//!   protocol step, and (optionally) **livelock freedom** — every state can
//!   reach a quiescent one.
//!
//! A violation is reported as a shortest-path counterexample: the BFS
//! spanning tree gives the sequence of scheduler steps from the initial
//! state, followed by a rendering of the offending state.
//!
//! Mutation testing is built in: [`Fault`] reinstates known-bad behaviours
//! (skipping an invalidation, forgetting the owner pointer, parking
//! forwards behind a buffered write-back) so the test suite can prove the
//! checker *would* catch each class of bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

use ringsim_proto::guarded::RuleFire;
use ringsim_proto::ProtocolKind;
use ringsim_types::ConfigError;

mod explore;
mod model;
mod store;
mod sym;

/// A deliberately injected protocol bug, for mutation-testing the checker.
///
/// Each fault reinstates a concrete wrong behaviour; `explore` must flag a
/// violation under every fault, proving the invariants have teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the protocols as shipped.
    #[default]
    None,
    /// The highest-numbered node ignores invalidations, so a stale reader
    /// survives a write — a SWMR violation.
    SkipInvalidate,
    /// The home never records the new owner (directory) / never sets the
    /// dirty bit (snooping), so dirty data becomes unaccounted for.
    ForgetOwner,
    /// Directory forwards park behind *any* transaction of the target node,
    /// even when the target's write-back buffer could serve them — the
    /// deadlock this checker found in the seed `RingSystem::deliver`.
    ParkBusyForwards,
    /// The SCI rollout splice drops the departing node's *successor* from
    /// the sharing list instead of relinking it — a classic linked-list
    /// pointer bug. Only the SCI list–cache agreement invariant can see it;
    /// every other protocol ignores the fault entirely.
    BreakListLink,
}

impl Fault {
    /// All faults, including [`Fault::None`].
    pub const ALL: [Fault; 5] = [
        Fault::None,
        Fault::SkipInvalidate,
        Fault::ForgetOwner,
        Fault::ParkBusyForwards,
        Fault::BreakListLink,
    ];

    /// The CLI spelling of this fault.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::SkipInvalidate => "skip-invalidate",
            Fault::ForgetOwner => "forget-owner",
            Fault::ParkBusyForwards => "park-busy-forwards",
            Fault::BreakListLink => "break-list-link",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Failure to parse a [`Fault`] from its CLI spelling (the same shape as
/// `ringsim-core`'s `SimKindError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The name matches no known fault.
    Unknown {
        /// The spelling that failed to parse.
        name: String,
    },
}

impl FaultError {
    /// Every accepted spelling, for error messages and usage text.
    pub fn known_names() -> Vec<&'static str> {
        Fault::ALL.iter().map(|f| f.name()).collect()
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Unknown { name } => {
                write!(
                    f,
                    "unknown fault `{name}`; valid faults: {}",
                    Self::known_names().join(", ")
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FromStr for Fault {
    type Err = FaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fault::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| FaultError::Unknown { name: s.to_owned() })
    }
}

/// One model-checking run: a protocol, a tiny configuration, and options.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Which protocol's transition tables to drive.
    pub protocol: ProtocolKind,
    /// Ring size; exhaustive exploration is feasible up to about 4.
    pub nodes: usize,
    /// Distinct cache blocks in play (homes assigned round-robin).
    pub blocks: usize,
    /// Injected bug, if any (mutation testing).
    pub fault: Fault,
    /// Cap on stored states; exploration past the cap marks the report
    /// incomplete instead of aborting.
    pub max_states: usize,
    /// Also prove every state can reach quiescence (reverse reachability
    /// over the full graph; requires a complete exploration).
    pub check_liveness: bool,
    /// Include explicit eviction moves (conflict-miss stand-ins).
    pub evictions: bool,
    /// Worker threads for frontier expansion; `0` = one per available core
    /// (the sweep engine's convention). Reports are byte-identical for any
    /// value.
    pub jobs: usize,
    /// Store one representative per symmetry orbit instead of every state.
    /// Off, the checker degenerates to the plain (slower, larger) BFS —
    /// useful for validating the reduction itself.
    pub symmetry: bool,
    /// Collect exploration statistics: raw-vs-canonical state counts and
    /// per-rule fire counts (filled into [`CheckReport::stats`]).
    pub stats: bool,
}

impl CheckConfig {
    /// A configuration with the defaults used by `ringsim check`.
    pub fn new(protocol: ProtocolKind, nodes: usize, blocks: usize) -> Self {
        CheckConfig {
            protocol,
            nodes,
            blocks,
            fault: Fault::None,
            max_states: 4_000_000,
            check_liveness: true,
            evictions: true,
            jobs: 0,
            symmetry: true,
            stats: false,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if !(2..=8).contains(&self.nodes) {
            return Err(ConfigError::new("nodes", "exhaustive checking needs 2..=8 nodes"));
        }
        if !(1..=4).contains(&self.blocks) {
            return Err(ConfigError::new("blocks", "exhaustive checking needs 1..=4 blocks"));
        }
        if self.max_states == 0 {
            return Err(ConfigError::new("max_states", "must be positive"));
        }
        Ok(())
    }
}

/// A counterexample: what went wrong and how to get there.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that failed, with block and node detail.
    pub message: String,
    /// Human-readable shortest path from the initial state, ending with a
    /// rendering of the offending state.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {step}")?;
        }
        Ok(())
    }
}

/// The outcome of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Protocol checked.
    pub protocol: ProtocolKind,
    /// Nodes in the configuration.
    pub nodes: usize,
    /// Blocks in the configuration.
    pub blocks: usize,
    /// Injected fault, if any.
    pub fault: Fault,
    /// Distinct reachable states discovered.
    pub states: usize,
    /// Transitions (edges) taken, including duplicates into known states.
    pub transitions: u64,
    /// States with no outstanding transactions or in-flight messages.
    pub quiescent_states: usize,
    /// Longest shortest-path distance from the initial state.
    pub depth: usize,
    /// Whether the whole graph fit under `max_states`.
    pub complete: bool,
    /// Whether the quiescence-reachability (livelock) pass ran.
    pub livelock_checked: bool,
    /// The first invariant violation found, if any.
    pub violation: Option<Violation>,
    /// Exploration statistics, when [`CheckConfig::stats`] was set (omitted
    /// on violation runs: the counterexample replay would distort counts).
    pub stats: Option<CheckStats>,
}

/// Exploration statistics for `ringsim check --stats`: the observed orbit
/// reduction and the guarded-rule exhaustiveness (dead-rule) report.
///
/// Deterministic for any [`CheckConfig::jobs`]: every BFS level is fully
/// expanded before its successors are merged, so the same edges are
/// evaluated no matter how they are sharded.
#[derive(Debug, Clone)]
pub struct CheckStats {
    /// Distinct *raw* (uncanonicalized) successor states observed. With
    /// symmetry on, `raw_states / states` is the achieved orbit reduction —
    /// a lower bound, since only successors of stored representatives are
    /// counted.
    pub raw_states: u64,
    /// The symmetry group's order — the theoretical maximum reduction.
    pub group_order: u64,
    /// Fire count per guarded rule, in (rule-set, declaration) order.
    pub rule_fires: Vec<RuleFire>,
}

impl CheckStats {
    /// The achieved orbit reduction factor (`raw_states / states`).
    pub fn reduction(&self, states: usize) -> f64 {
        if states == 0 {
            return 1.0;
        }
        let raw = self.raw_states.max(states as u64);
        raw as f64 / states as f64
    }

    /// Rules that never fired but should have under `protocol` — dead
    /// weight or a reachability bug at this configuration size.
    pub fn dead_rules(&self, protocol: ProtocolKind) -> Vec<&RuleFire> {
        self.rule_fires.iter().filter(|r| r.fires_under == protocol && r.fired == 0).collect()
    }

    /// Renders the stats block printed under a report by
    /// `ringsim check --stats`.
    pub fn render(&self, states: usize, protocol: ProtocolKind) -> Vec<String> {
        let mut lines = vec![format!(
            "  orbit reduction: {} raw successors -> {states} canonical states (x{:.2}, group order {})",
            self.raw_states,
            self.reduction(states),
            self.group_order,
        )];
        for r in &self.rule_fires {
            let applicable = r.fires_under == protocol;
            lines.push(format!(
                "  rule {}/{}: fired {}{}",
                r.ruleset,
                r.rule,
                r.fired,
                if applicable { "" } else { " (other protocol)" },
            ));
        }
        let dead = self.dead_rules(protocol);
        if dead.is_empty() {
            lines.push("  dead rules: none".to_owned());
        } else {
            for r in dead {
                lines.push(format!("  dead rule: {}/{} never fired", r.ruleset, r.rule));
            }
        }
        lines
    }
}

impl CheckReport {
    /// True when the exploration finished with no violation.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}n/{}b: {} states, {} transitions, {} quiescent, depth {}{}{}",
            self.protocol,
            self.nodes,
            self.blocks,
            self.states,
            self.transitions,
            self.quiescent_states,
            self.depth,
            if self.complete { "" } else { " (truncated)" },
            if self.livelock_checked { ", livelock-free" } else { "" },
        )?;
        if self.fault != Fault::None {
            write!(f, " [fault: {}]", self.fault)?;
        }
        match &self.violation {
            None => write!(f, " — OK"),
            Some(v) => write!(f, " — FAILED: {}", v.message),
        }
    }
}

/// Exhaustively explores the configuration and checks every invariant.
///
/// Returns `Err` only for nonsensical configurations; a protocol bug is
/// reported inside the [`CheckReport`] as a [`Violation`].
pub fn explore(cfg: &CheckConfig) -> Result<CheckReport, ConfigError> {
    cfg.validate()?;
    Ok(explore::run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(f.name().parse::<Fault>().unwrap(), f);
        }
        assert!("bogus".parse::<Fault>().is_err());
    }

    #[test]
    fn config_bounds_are_enforced() {
        let mut c = CheckConfig::new(ProtocolKind::Snooping, 1, 1);
        assert!(explore(&c).is_err());
        c.nodes = 2;
        c.blocks = 0;
        assert!(explore(&c).is_err());
        c.blocks = 1;
        c.max_states = 0;
        assert!(explore(&c).is_err());
    }
}
