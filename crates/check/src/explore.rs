//! Symmetry-reduced, hash-compacted, level-synchronous parallel BFS with
//! invariant checking, deadlock detection, and quiescence-reachability
//! (livelock) analysis.
//!
//! The exploration proceeds level by level. Within a level every frontier
//! state is expanded independently — workers share the frontier through an
//! atomic cursor, evaluate invariants on fresh successors, and
//! canonicalize them (`sym`) — while the visited store (`store`) is
//! read-only. A single serial merge then assigns dense ids in (frontier
//! order, move order) and reports the first violation in that same order,
//! which makes every report **byte-identical for any `jobs` value**: the
//! schedule only changes who computes a result, never which results exist
//! or how they are ordered.
//!
//! Memory per stored state is one fingerprint map entry plus a 6-byte
//! `Meta` (parent id + packed move). Counterexample traces are rebuilt by
//! replaying moves from the initial state and re-canonicalizing after each
//! step, so no state encodings or step labels are retained.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ringsim_cache::LineState;
use ringsim_proto::guarded::FireCounts;
use ringsim_proto::{invariants, ProtocolKind};
use ringsim_types::{BlockAddr, NodeId};

use crate::model::{Model, Move, State};
use crate::store::{fingerprint, FpMap, FpSet};
use crate::sym::Symmetry;
use crate::{CheckConfig, CheckReport, CheckStats, Violation};

/// Per-state side table entry: the BFS spanning tree, losslessly — enough
/// to replay any stored state from the initial one.
struct Meta {
    parent: u32,
    mv: u16,
}

/// What one worker reports for one expanded frontier state.
struct ItemResult {
    /// Outstanding work but no enabled protocol step.
    deadlock: bool,
    /// One entry per enumerated move, in move order.
    edges: Vec<EdgeOut>,
}

struct EdgeOut {
    mv: u16,
    /// Fingerprint of the canonical successor encoding.
    fp: u64,
    /// Fingerprint of the *raw* successor encoding (stats only, else 0).
    raw_fp: u64,
    /// Filled when `fp` was not in the visited store at expansion time.
    fresh: Option<FreshOut>,
}

struct FreshOut {
    enc: Vec<u8>,
    quiescent: bool,
    violation: Option<String>,
}

/// Evaluates the shared invariants on one state. Shallow (per-block)
/// checks run on every reachable state; the strict directory–cache
/// agreement check runs whenever a block is quiescent.
fn check_state(model: &Model, s: &State) -> Result<(), String> {
    for b in 0..model.blocks {
        let block = BlockAddr::new(b as u64);
        let states: Vec<LineState> =
            (0..model.nodes).map(|i| s.caches[i].state_of(block)).collect();
        let conflicting: Vec<bool> = (0..model.nodes)
            .map(|i| s.txns[i].as_ref().is_some_and(|t| t.block == block))
            .collect();
        invariants::check_swmr(&states, &conflicting).map_err(|e| format!("{block}: {e}"))?;
        match model.protocol {
            ProtocolKind::Snooping => {
                let dirty = s.mem.is_dirty(block);
                invariants::check_we_implies_dirty(&states, dirty)
                    .map_err(|e| format!("{block}: {e}"))?;
                let wb_pending: Vec<bool> = (0..model.nodes)
                    .map(|i| {
                        s.net.iter().any(|m| {
                            m.kind == ringsim_proto::MsgKind::WriteBack
                                && m.block == block
                                && m.src.index() == i
                        })
                    })
                    .collect();
                invariants::check_dirty_data_reachable(&states, &conflicting, &wb_pending, dirty)
                    .map_err(|e| format!("{block}: {e}"))?;
            }
            ProtocolKind::Directory => {
                let entry = s.dir.entry(block);
                // The owner pointer is stale while a MemUpdate or WriteBack
                // from the (old) owner travels to — or queues at — the home;
                // those messages account for the dirty data meanwhile.
                let wb_pending: Vec<bool> = (0..model.nodes)
                    .map(|i| {
                        s.wb_buffer[i][b]
                            || s.net.iter().chain(s.queue[b].iter()).any(|m| {
                                matches!(
                                    m.kind,
                                    ringsim_proto::MsgKind::MemUpdate
                                        | ringsim_proto::MsgKind::WriteBack
                                ) && m.block == block
                                    && m.src.index() == i
                            })
                    })
                    .collect();
                invariants::check_dirty_data_reachable(
                    &states,
                    &conflicting,
                    &wb_pending,
                    entry.owner.is_some(),
                )
                .map_err(|e| format!("{block}: {e}"))?;
                if model.block_quiescent(s, block) {
                    invariants::check_dir_agreement(&states, &entry)
                        .map_err(|e| format!("{block}: {e}"))?;
                }
            }
            ProtocolKind::Sci => {
                let e = &s.sci[b];
                for (k, p) in e.list.iter().enumerate() {
                    if e.list[..k].contains(p) {
                        return Err(format!("{block}: sci list holds {p} twice"));
                    }
                }
                if e.dirty && (e.list.len() != 1 || states[e.list[0].index()] != LineState::We) {
                    return Err(format!(
                        "{block}: dirty sci list without a sole write-exclusive head"
                    ));
                }
                let wb_pending = vec![false; model.nodes];
                invariants::check_dirty_data_reachable(&states, &conflicting, &wb_pending, e.dirty)
                    .map_err(|e| format!("{block}: {e}"))?;
                if model.block_quiescent(s, block) {
                    for (i, st) in states.iter().enumerate() {
                        if st.is_valid() != e.contains(NodeId::new(i)) {
                            return Err(format!(
                                "{block}: sci list and caches disagree at quiescence: P{i} \
                                 is {:?} but {} the sharing list",
                                st,
                                if st.is_valid() { "missing from" } else { "listed on" },
                            ));
                        }
                    }
                }
            }
            ProtocolKind::Mesi | ProtocolKind::Dragon => {
                for (i, &st) in states.iter().enumerate() {
                    if s.excl[i][b] && st != LineState::We {
                        return Err(format!(
                            "{block}: P{i} is marked clean-exclusive without a We line"
                        ));
                    }
                }
                let dirty = s.mem.is_dirty(block);
                let modified_at = |i: usize| states[i] == LineState::We && !s.excl[i][b];
                if (0..model.nodes).any(modified_at) && !dirty {
                    return Err(format!(
                        "{block}: a modified line exists but memory claims to be clean"
                    ));
                }
                let owner_exists = (0..model.nodes).any(modified_at) || s.sm[b].is_some();
                if dirty && !owner_exists && !conflicting.iter().any(|&c| c) {
                    return Err(format!(
                        "{block}: memory is stale (dirty) but no cache owns the data"
                    ));
                }
                if let Some(o) = s.sm[b] {
                    if states[o.index()] != LineState::Rs {
                        return Err(format!(
                            "{block}: shared-modified owner {o} holds no shared line"
                        ));
                    }
                    if states.contains(&LineState::We) {
                        return Err(format!(
                            "{block}: both a shared-modified owner and an exclusive line"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// The canonicalization in force: orbit representative when symmetry is
/// on, the plain encoding otherwise.
fn canon(model: &Model, sym: Option<&Symmetry>, s: &State) -> Vec<u8> {
    match sym {
        Some(sym) => sym.canonical_encode(model, s),
        None => model.encode(s),
    }
}

/// Replays the stored path to `id`, returning the narrated steps and the
/// state as explored (the canonical representative of `id`). Labels come
/// out exactly as exploration saw them because each step re-canonicalizes
/// before the next stored move is applied.
fn replay(model: &Model, sym: Option<&Symmetry>, metas: &[Meta], id: u32) -> (Vec<String>, State) {
    let mut path = Vec::new();
    let mut cur = id;
    while cur != 0 {
        path.push(cur);
        cur = metas[cur as usize].parent;
    }
    path.reverse();
    let mut steps = vec!["initial state (all caches invalid, memory clean)".to_owned()];
    let mut s = model.initial();
    for k in path {
        let label = model.apply(&mut s, Move::unpack(metas[k as usize].mv));
        steps.push(label);
        s = model.decode(&canon(model, sym, &s));
    }
    (steps, s)
}

/// Counterexample for a violation *on* stored state `id` (deadlock,
/// livelock, or the initial state).
fn violation_at(
    model: &Model,
    sym: Option<&Symmetry>,
    metas: &[Meta],
    id: u32,
    message: String,
) -> Violation {
    let (mut trace, s) = replay(model, sym, metas, id);
    trace.push("resulting state:".to_owned());
    trace.extend(model.render(&s));
    Violation { message, trace }
}

/// Counterexample for an invariant violation on the raw successor of
/// stored state `parent` under `mv` (the successor itself is never
/// stored: exploration stops first).
fn violation_past(
    model: &Model,
    sym: Option<&Symmetry>,
    metas: &[Meta],
    parent: u32,
    mv: u16,
    message: String,
) -> Violation {
    let (mut trace, mut s) = replay(model, sym, metas, parent);
    trace.push(model.apply(&mut s, Move::unpack(mv)));
    trace.push("resulting state:".to_owned());
    trace.extend(model.render(&s));
    Violation { message, trace }
}

/// Expands one frontier state: enumerate, apply, canonicalize, and check
/// fresh successors. Runs concurrently; touches only read-only shares.
fn expand_item(
    model: &Model,
    sym: Option<&Symmetry>,
    visited: &FpMap,
    want_stats: bool,
    enc: &[u8],
) -> ItemResult {
    let s = model.decode(enc);
    let moves = model.enumerate(&s);
    let deadlock = !moves.iter().any(|m| m.is_progress()) && !model.is_quiescent(&s);
    let mut edges = Vec::with_capacity(moves.len());
    for mv in moves {
        let mut next = s.clone();
        model.apply(&mut next, mv);
        let raw_fp = if want_stats { fingerprint(&model.encode(&next)) } else { 0 };
        let cenc = canon(model, sym, &next);
        let fp = fingerprint(&cenc);
        let fresh = if visited.contains_key(&fp) {
            None
        } else {
            Some(FreshOut {
                quiescent: model.is_quiescent(&next),
                violation: check_state(model, &next).err(),
                enc: cenc,
            })
        };
        edges.push(EdgeOut { mv: mv.pack(), fp, raw_fp, fresh });
    }
    ItemResult { deadlock, edges }
}

/// Runs the exhaustive exploration for one configuration.
pub(crate) fn run(cfg: &CheckConfig) -> CheckReport {
    let mut model = Model::new(cfg.protocol, cfg.nodes, cfg.blocks, cfg.fault, cfg.evictions);
    let counts = cfg.stats.then(|| Arc::new(FireCounts::new()));
    model.counts = counts.clone();
    let sym = cfg.symmetry.then(|| Symmetry::new(&model));
    let sym = sym.as_ref();
    let jobs = match cfg.jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        j => j,
    };

    let mut report = CheckReport {
        protocol: cfg.protocol,
        nodes: cfg.nodes,
        blocks: cfg.blocks,
        fault: cfg.fault,
        states: 0,
        transitions: 0,
        quiescent_states: 0,
        depth: 0,
        complete: true,
        livelock_checked: false,
        violation: None,
        stats: None,
    };

    let init = model.initial();
    // The initial state is fully symmetric: every group element fixes it,
    // so its plain encoding already is the orbit representative.
    let init_enc = model.encode(&init);
    let mut visited = FpMap::default();
    let mut metas: Vec<Meta> = Vec::new();
    let mut quiescent: Vec<bool> = Vec::new();
    let mut succs: Vec<Vec<u32>> = Vec::new();
    let mut raw_fps = FpSet::default();

    visited.insert(fingerprint(&init_enc), 0);
    metas.push(Meta { parent: 0, mv: 0 });
    quiescent.push(model.is_quiescent(&init));
    if cfg.check_liveness {
        succs.push(Vec::new());
    }

    if let Err(e) = check_state(&model, &init) {
        report.states = 1;
        report.violation = Some(violation_at(&model, sym, &metas, 0, e));
        return report;
    }

    let mut frontier: Vec<(u32, Vec<u8>)> = vec![(0, init_enc)];
    let mut depth = 0usize;
    'levels: while !frontier.is_empty() {
        report.depth = depth;

        // ---- parallel expansion (visited is read-only for the level)
        let results: Vec<ItemResult> = if jobs <= 1 || frontier.len() < 2 {
            frontier
                .iter()
                .map(|(_, enc)| expand_item(&model, sym, &visited, cfg.stats, enc))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let frontier_ref = &frontier;
            let visited_ref = &visited;
            let model_ref = &model;
            let mut indexed: Vec<(usize, ItemResult)> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..jobs.min(frontier.len()))
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some((_, enc)) = frontier_ref.get(i) else { break };
                                out.push((
                                    i,
                                    expand_item(model_ref, sym, visited_ref, cfg.stats, enc),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("expansion worker panicked"))
                    .collect()
            });
            indexed.sort_unstable_by_key(|&(i, _)| i);
            debug_assert!(indexed.iter().enumerate().all(|(k, &(i, _))| k == i));
            indexed.into_iter().map(|(_, r)| r).collect()
        };

        // ---- serial deterministic merge: ids in (frontier, move) order
        let mut next_frontier: Vec<(u32, Vec<u8>)> = Vec::new();
        for ((id, _), result) in frontier.iter().zip(results) {
            if result.deadlock {
                report.states = metas.len();
                report.violation = Some(violation_at(
                    &model,
                    sym,
                    &metas,
                    *id,
                    "deadlock: outstanding work but no protocol step can run".to_owned(),
                ));
                break 'levels;
            }
            for edge in result.edges {
                report.transitions += 1;
                if cfg.stats {
                    raw_fps.insert(edge.raw_fp);
                }
                if let Some(&known) = visited.get(&edge.fp) {
                    if cfg.check_liveness {
                        succs[*id as usize].push(known);
                    }
                    continue;
                }
                // Not seen in any level up to and including the ids merged
                // so far — the worker's fresh data is authoritative.
                let fresh = edge.fresh.expect("unknown fingerprint without fresh data");
                if let Some(msg) = fresh.violation {
                    report.states = metas.len();
                    report.violation = Some(violation_past(&model, sym, &metas, *id, edge.mv, msg));
                    break 'levels;
                }
                // The cap bounds *stored* states exactly (not per-level):
                // past it, successors are still invariant-checked above but
                // not stored or expanded, and the report says truncated.
                if metas.len() >= cfg.max_states {
                    report.complete = false;
                    continue;
                }
                let new_id = metas.len() as u32;
                visited.insert(edge.fp, new_id);
                metas.push(Meta { parent: *id, mv: edge.mv });
                quiescent.push(fresh.quiescent);
                if cfg.check_liveness {
                    succs.push(Vec::new());
                    succs[*id as usize].push(new_id);
                }
                next_frontier.push((new_id, fresh.enc));
            }
        }
        if report.violation.is_some() {
            break;
        }
        frontier = next_frontier;
        depth += 1;
    }

    if report.violation.is_some() {
        return report;
    }

    report.states = metas.len();
    report.quiescent_states = quiescent.iter().filter(|&&q| q).count();

    // Livelock: a state from which no quiescent state is reachable. Only
    // meaningful when the whole graph was expanded.
    if report.complete && cfg.check_liveness {
        report.livelock_checked = true;
        let n = metas.len();
        // Predecessor CSR from the successor lists.
        let mut deg = vec![0u32; n];
        for outs in &succs {
            for &t in outs {
                deg[t as usize] += 1;
            }
        }
        let mut start = vec![0usize; n + 1];
        for i in 0..n {
            start[i + 1] = start[i] + deg[i] as usize;
        }
        let mut fill = start.clone();
        let mut preds = vec![0u32; start[n]];
        for (from, outs) in succs.iter().enumerate() {
            for &t in outs {
                preds[fill[t as usize]] = from as u32;
                fill[t as usize] += 1;
            }
        }
        let mut reaches = vec![false; n];
        let mut work: VecDeque<u32> = (0..n as u32).filter(|&i| quiescent[i as usize]).collect();
        for &q in &work {
            reaches[q as usize] = true;
        }
        while let Some(t) = work.pop_front() {
            for &p in &preds[start[t as usize]..start[t as usize + 1]] {
                if !reaches[p as usize] {
                    reaches[p as usize] = true;
                    work.push_back(p);
                }
            }
        }
        if let Some(stuck) = (0..n as u32).find(|&i| !reaches[i as usize]) {
            report.violation = Some(violation_at(
                &model,
                sym,
                &metas,
                stuck,
                "livelock: no quiescent state is reachable from here".to_owned(),
            ));
        }
    }

    if report.violation.is_none() {
        if let Some(counts) = counts {
            report.stats = Some(CheckStats {
                raw_states: raw_fps.len() as u64,
                group_order: sym.map_or(1, Symmetry::group_order),
                rule_fires: counts.snapshot(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;

    fn cfg(protocol: ProtocolKind, nodes: usize, blocks: usize) -> CheckConfig {
        CheckConfig::new(protocol, nodes, blocks)
    }

    #[test]
    fn tiny_snooping_is_clean() {
        let report = run(&cfg(ProtocolKind::Snooping, 2, 1));
        assert!(report.complete);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.states > 10);
        assert!(report.quiescent_states > 1);
        assert!(report.livelock_checked);
    }

    #[test]
    fn tiny_directory_is_clean() {
        let report = run(&cfg(ProtocolKind::Directory, 2, 1));
        assert!(report.complete);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.states > 10);
    }

    #[test]
    fn tiny_atomic_protocols_are_clean() {
        for protocol in [ProtocolKind::Sci, ProtocolKind::Mesi, ProtocolKind::Dragon] {
            let report = run(&cfg(protocol, 2, 1));
            assert!(report.complete, "{protocol}");
            assert!(report.violation.is_none(), "{protocol}: {:?}", report.violation);
            assert!(report.states > 10, "{protocol}");
            assert!(report.livelock_checked, "{protocol}");
        }
    }

    #[test]
    fn decode_roundtrips_along_a_walk() {
        for protocol in [
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
            ProtocolKind::Sci,
            ProtocolKind::Mesi,
            ProtocolKind::Dragon,
        ] {
            let model = Model::new(protocol, 3, 2, Fault::None, true);
            let mut s = model.initial();
            // A deterministic zig-zag walk: always take the move at a
            // rotating index, re-encoding at every step.
            for step in 0..200 {
                let moves = model.enumerate(&s);
                if moves.is_empty() {
                    break;
                }
                let mv = moves[step % moves.len()];
                model.apply(&mut s, mv);
                let enc = model.encode(&s);
                let back = model.decode(&enc);
                assert_eq!(model.encode(&back), enc, "{protocol} step {step}");
            }
        }
    }

    #[test]
    fn moves_pack_round_trip() {
        let model = Model::new(ProtocolKind::Directory, 4, 2, Fault::None, true);
        let mut s = model.initial();
        for step in 0..300 {
            let moves = model.enumerate(&s);
            if moves.is_empty() {
                break;
            }
            for &mv in &moves {
                assert_eq!(Move::unpack(mv.pack()), mv, "step {step}");
            }
            model.apply(&mut s, moves[step % moves.len()]);
        }
    }

    #[test]
    fn skip_invalidate_mutation_is_caught() {
        // Not Dragon: an update protocol has no invalidations to skip.
        for protocol in
            [ProtocolKind::Snooping, ProtocolKind::Directory, ProtocolKind::Sci, ProtocolKind::Mesi]
        {
            let mut c = cfg(protocol, 2, 1);
            c.fault = Fault::SkipInvalidate;
            let report = run(&c);
            let v = report.violation.expect("mutation must be caught");
            assert!(v.trace.len() > 2, "trace should narrate the steps");
        }
    }

    #[test]
    fn break_list_link_mutation_is_caught_by_sci_only() {
        // The broken splice needs a list of three: the evictor, its
        // successor (lost), and a survivor keeping the block non-empty.
        let mut c = cfg(ProtocolKind::Sci, 3, 1);
        c.fault = Fault::BreakListLink;
        c.check_liveness = false;
        let report = run(&c);
        let v = report.violation.expect("broken splice must be caught");
        assert!(v.message.contains("sci list"), "{}", v.message);
        // Every other protocol never touches the sharing list, so the same
        // fault must be a no-op there.
        for protocol in [
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
            ProtocolKind::Mesi,
            ProtocolKind::Dragon,
        ] {
            let mut c = cfg(protocol, 2, 1);
            c.fault = Fault::BreakListLink;
            c.check_liveness = false;
            let report = run(&c);
            assert!(report.violation.is_none(), "{protocol}: {:?}", report.violation);
        }
    }

    #[test]
    fn forget_owner_mutation_is_caught() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let mut c = cfg(protocol, 2, 1);
            c.fault = Fault::ForgetOwner;
            let report = run(&c);
            assert!(report.violation.is_some(), "{protocol}: mutation must be caught");
        }
    }

    #[test]
    fn parked_forward_deadlock_is_caught() {
        let mut c = cfg(ProtocolKind::Directory, 2, 1);
        c.fault = Fault::ParkBusyForwards;
        let report = run(&c);
        let v = report.violation.expect("seed forward-parking bug must be caught");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }

    #[test]
    fn symmetry_off_finds_the_same_verdicts() {
        // The reduced and unreduced runs must agree on pass/fail for every
        // fault, and on the violation's invariant class when they fail.
        for fault in Fault::ALL {
            let mut reduced = cfg(ProtocolKind::Directory, 3, 1);
            reduced.fault = fault;
            reduced.check_liveness = false;
            reduced.max_states = 400_000;
            let mut plain = reduced;
            plain.symmetry = false;
            let (r, p) = (run(&reduced), run(&plain));
            assert_eq!(r.passed(), p.passed(), "{fault}");
            assert!(r.states <= p.states, "{fault}: reduction must not add states");
            if let (Some(rv), Some(pv)) = (&r.violation, &p.violation) {
                let class = |m: &str| {
                    ["SWMR", "deadlock", "dirty", "directory"]
                        .iter()
                        .find(|c| m.contains(*c))
                        .copied()
                };
                assert_eq!(class(&rv.message), class(&pv.message), "{fault}");
            }
        }
    }

    #[test]
    fn jobs_do_not_change_the_report() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let mut base = cfg(protocol, 3, 1);
            base.stats = true;
            let mut serial = base;
            serial.jobs = 1;
            let mut parallel = base;
            parallel.jobs = 4;
            let (a, b) = (run(&serial), run(&parallel));
            assert_eq!(format!("{a}"), format!("{b}"), "{protocol}");
            assert_eq!(a.depth, b.depth);
            let fires = |r: &CheckReport| {
                r.stats.as_ref().map(|s| s.rule_fires.iter().map(|f| f.fired).collect::<Vec<_>>())
            };
            assert_eq!(fires(&a), fires(&b), "{protocol}: fire counts must be jobs-invariant");
            assert_eq!(
                a.stats.as_ref().map(|s| s.raw_states),
                b.stats.as_ref().map(|s| s.raw_states)
            );
        }
    }
}
