//! Breadth-first exhaustive exploration with invariant checking,
//! deadlock detection, and quiescence-reachability (livelock) analysis.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

use ringsim_cache::LineState;
use ringsim_proto::{invariants, ProtocolKind};
use ringsim_types::BlockAddr;

use crate::model::{Model, State};
use crate::{CheckConfig, CheckReport, Violation};

/// Per-state bookkeeping: BFS spanning tree for counterexample traces.
struct Meta {
    parent: u32,
    label: Box<str>,
}

/// Evaluates the shared invariants on one state. Shallow (per-block)
/// checks run on every reachable state; the strict directory–cache
/// agreement check runs whenever a block is quiescent.
fn check_state(model: &Model, s: &State) -> Result<(), String> {
    for b in 0..model.blocks {
        let block = BlockAddr::new(b as u64);
        let states: Vec<LineState> =
            (0..model.nodes).map(|i| s.caches[i].state_of(block)).collect();
        let conflicting: Vec<bool> = (0..model.nodes)
            .map(|i| s.txns[i].as_ref().is_some_and(|t| t.block == block))
            .collect();
        invariants::check_swmr(&states, &conflicting).map_err(|e| format!("{block}: {e}"))?;
        match model.protocol {
            ProtocolKind::Snooping => {
                let dirty = s.mem.is_dirty(block);
                invariants::check_we_implies_dirty(&states, dirty)
                    .map_err(|e| format!("{block}: {e}"))?;
                let wb_pending: Vec<bool> = (0..model.nodes)
                    .map(|i| {
                        s.net.iter().any(|m| {
                            m.kind == ringsim_proto::MsgKind::WriteBack
                                && m.block == block
                                && m.src.index() == i
                        })
                    })
                    .collect();
                invariants::check_dirty_data_reachable(&states, &conflicting, &wb_pending, dirty)
                    .map_err(|e| format!("{block}: {e}"))?;
            }
            ProtocolKind::Directory => {
                let entry = s.dir.entry(block);
                // The owner pointer is stale while a MemUpdate or WriteBack
                // from the (old) owner travels to — or queues at — the home;
                // those messages account for the dirty data meanwhile.
                let wb_pending: Vec<bool> = (0..model.nodes)
                    .map(|i| {
                        s.wb_buffer[i][b]
                            || s.net.iter().chain(s.queue[b].iter()).any(|m| {
                                matches!(
                                    m.kind,
                                    ringsim_proto::MsgKind::MemUpdate
                                        | ringsim_proto::MsgKind::WriteBack
                                ) && m.block == block
                                    && m.src.index() == i
                            })
                    })
                    .collect();
                invariants::check_dirty_data_reachable(
                    &states,
                    &conflicting,
                    &wb_pending,
                    entry.owner.is_some(),
                )
                .map_err(|e| format!("{block}: {e}"))?;
                if model.block_quiescent(s, block) {
                    invariants::check_dir_agreement(&states, &entry)
                        .map_err(|e| format!("{block}: {e}"))?;
                }
            }
        }
    }
    Ok(())
}

fn trace_to(metas: &[Meta], id: u32) -> Vec<String> {
    let mut steps = Vec::new();
    let mut cur = id;
    while cur != 0 {
        steps.push(metas[cur as usize].label.to_string());
        cur = metas[cur as usize].parent;
    }
    steps.push("initial state (all caches invalid, memory clean)".to_owned());
    steps.reverse();
    steps
}

fn violation(metas: &[Meta], model: &Model, s: &State, id: u32, message: String) -> Violation {
    let mut trace = trace_to(metas, id);
    trace.push("resulting state:".to_owned());
    trace.extend(model.render(s));
    Violation { message, trace }
}

/// Runs the exhaustive exploration for one configuration.
pub(crate) fn run(cfg: &CheckConfig) -> CheckReport {
    let model = Model::new(cfg.protocol, cfg.nodes, cfg.blocks, cfg.fault, cfg.evictions);
    let mut report = CheckReport {
        protocol: cfg.protocol,
        nodes: cfg.nodes,
        blocks: cfg.blocks,
        fault: cfg.fault,
        states: 0,
        transitions: 0,
        quiescent_states: 0,
        depth: 0,
        complete: true,
        livelock_checked: false,
        violation: None,
    };

    let init = model.initial();
    let init_enc: Rc<[u8]> = model.encode(&init).into();
    let mut ids: HashMap<Rc<[u8]>, u32> = HashMap::new();
    let mut encodings: Vec<Rc<[u8]>> = Vec::new();
    let mut metas: Vec<Meta> = Vec::new();
    let mut quiescent: Vec<bool> = Vec::new();
    let mut succs: Vec<Vec<u32>> = Vec::new();
    let mut frontier: VecDeque<(u32, usize)> = VecDeque::new();

    ids.insert(Rc::clone(&init_enc), 0);
    encodings.push(init_enc);
    metas.push(Meta { parent: 0, label: "initial".into() });
    quiescent.push(model.is_quiescent(&init));
    succs.push(Vec::new());
    frontier.push_back((0, 0));

    if let Err(e) = check_state(&model, &init) {
        report.states = 1;
        report.violation = Some(violation(&metas, &model, &init, 0, e));
        return report;
    }

    while let Some((id, depth)) = frontier.pop_front() {
        report.depth = report.depth.max(depth);
        let s = model.decode(&encodings[id as usize]);
        let moves = model.enumerate(&s);
        let has_progress = moves.iter().any(|m| m.is_progress());
        if !has_progress && !quiescent[id as usize] {
            report.states = encodings.len();
            report.violation = Some(violation(
                &metas,
                &model,
                &s,
                id,
                "deadlock: outstanding work but no protocol step can run".to_owned(),
            ));
            return report;
        }
        for mv in moves {
            let mut next = s.clone();
            let label = model.apply(&mut next, mv);
            report.transitions += 1;
            let enc = model.encode(&next);
            let next_id = if let Some(&existing) = ids.get(enc.as_slice()) {
                existing
            } else {
                let new_id = encodings.len() as u32;
                let enc: Rc<[u8]> = enc.into();
                ids.insert(Rc::clone(&enc), new_id);
                encodings.push(enc);
                metas.push(Meta { parent: id, label: label.into_boxed_str() });
                quiescent.push(model.is_quiescent(&next));
                succs.push(Vec::new());
                if let Err(e) = check_state(&model, &next) {
                    report.states = encodings.len();
                    report.violation = Some(violation(&metas, &model, &next, new_id, e));
                    return report;
                }
                if encodings.len() <= cfg.max_states {
                    frontier.push_back((new_id, depth + 1));
                } else {
                    report.complete = false;
                }
                new_id
            };
            succs[id as usize].push(next_id);
        }
    }

    report.states = encodings.len();
    report.quiescent_states = quiescent.iter().filter(|&&q| q).count();

    // Livelock: a state from which no quiescent state is reachable. Only
    // meaningful when the whole graph was expanded.
    if report.complete && cfg.check_liveness {
        report.livelock_checked = true;
        let n = encodings.len();
        // Predecessor CSR from the successor lists.
        let mut deg = vec![0u32; n];
        for outs in &succs {
            for &t in outs {
                deg[t as usize] += 1;
            }
        }
        let mut start = vec![0usize; n + 1];
        for i in 0..n {
            start[i + 1] = start[i] + deg[i] as usize;
        }
        let mut fill = start.clone();
        let mut preds = vec![0u32; start[n]];
        for (from, outs) in succs.iter().enumerate() {
            for &t in outs {
                preds[fill[t as usize]] = from as u32;
                fill[t as usize] += 1;
            }
        }
        let mut reaches = vec![false; n];
        let mut work: VecDeque<u32> = (0..n as u32).filter(|&i| quiescent[i as usize]).collect();
        for &q in &work {
            reaches[q as usize] = true;
        }
        while let Some(t) = work.pop_front() {
            for &p in &preds[start[t as usize]..start[t as usize + 1]] {
                if !reaches[p as usize] {
                    reaches[p as usize] = true;
                    work.push_back(p);
                }
            }
        }
        if let Some(stuck) = (0..n as u32).find(|&i| !reaches[i as usize]) {
            let s = model.decode(&encodings[stuck as usize]);
            report.violation = Some(violation(
                &metas,
                &model,
                &s,
                stuck,
                "livelock: no quiescent state is reachable from here".to_owned(),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;

    fn cfg(protocol: ProtocolKind, nodes: usize, blocks: usize) -> CheckConfig {
        CheckConfig::new(protocol, nodes, blocks)
    }

    #[test]
    fn tiny_snooping_is_clean() {
        let report = run(&cfg(ProtocolKind::Snooping, 2, 1));
        assert!(report.complete);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.states > 10);
        assert!(report.quiescent_states > 1);
        assert!(report.livelock_checked);
    }

    #[test]
    fn tiny_directory_is_clean() {
        let report = run(&cfg(ProtocolKind::Directory, 2, 1));
        assert!(report.complete);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.states > 10);
    }

    #[test]
    fn decode_roundtrips_along_a_walk() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let model = Model::new(protocol, 3, 2, Fault::None, true);
            let mut s = model.initial();
            // A deterministic zig-zag walk: always take the move at a
            // rotating index, re-encoding at every step.
            for step in 0..200 {
                let moves = model.enumerate(&s);
                if moves.is_empty() {
                    break;
                }
                let mv = moves[step % moves.len()];
                model.apply(&mut s, mv);
                let enc = model.encode(&s);
                let back = model.decode(&enc);
                assert_eq!(model.encode(&back), enc, "{protocol} step {step}");
            }
        }
    }

    #[test]
    fn skip_invalidate_mutation_is_caught() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let mut c = cfg(protocol, 2, 1);
            c.fault = Fault::SkipInvalidate;
            let report = run(&c);
            let v = report.violation.expect("mutation must be caught");
            assert!(v.message.contains("SWMR"), "{protocol}: {}", v.message);
            assert!(v.trace.len() > 2, "trace should narrate the steps");
        }
    }

    #[test]
    fn forget_owner_mutation_is_caught() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let mut c = cfg(protocol, 2, 1);
            c.fault = Fault::ForgetOwner;
            let report = run(&c);
            assert!(report.violation.is_some(), "{protocol}: mutation must be caught");
        }
    }

    #[test]
    fn parked_forward_deadlock_is_caught() {
        let mut c = cfg(ProtocolKind::Directory, 2, 1);
        c.fault = Fault::ParkBusyForwards;
        let report = run(&c);
        let v = report.violation.expect("seed forward-parking bug must be caught");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }
}
