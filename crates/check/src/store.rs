//! Hash-compacted visited-state store.
//!
//! Murphi-style hash compaction: instead of keying the visited set by the
//! full canonical encoding (tens of bytes per state, the dominant memory
//! cost of the old `HashMap<Rc<[u8]>, u32>` store), only a 64-bit
//! fingerprint of the encoding is kept. Two distinct states whose
//! fingerprints collide are merged — one of them is silently not explored —
//! so the check becomes probabilistic with a missed-state probability of
//! about `n² / 2⁶⁴` for `n` stored states (< 10⁻⁶ even at 100 M states).
//! This is the standard model-checking trade; counterexample traces stay
//! exact because they are *replayed* from the initial state through the
//! lossless parent/move side table, never decoded from the store.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// 64-bit fingerprint of a state encoding: FNV-1a over the bytes, then a
/// `splitmix64`-style finalizer so that near-identical encodings (states
/// differing in one byte) still spread over the whole space.
pub(crate) fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Pass-through hasher for keys that already are fingerprints: feeding a
/// well-mixed `u64` through SipHash again would only cost time.
#[derive(Default)]
pub(crate) struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold defensively anyway.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// `BuildHasher` for [`FpHasher`].
#[derive(Default, Clone)]
pub(crate) struct FpBuild;

impl BuildHasher for FpBuild {
    type Hasher = FpHasher;

    fn build_hasher(&self) -> FpHasher {
        FpHasher::default()
    }
}

/// The compacted visited set: fingerprint → dense state id.
pub(crate) type FpMap = HashMap<u64, u32, FpBuild>;

/// Distinct-fingerprint accumulator (used for the `--stats` raw-state
/// count).
pub(crate) type FpSet = std::collections::HashSet<u64, FpBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_spreads_single_byte_changes() {
        let base = fingerprint(&[0u8; 16]);
        for i in 0..16 {
            let mut bytes = [0u8; 16];
            bytes[i] = 1;
            let fp = fingerprint(&bytes);
            assert_ne!(fp, base);
            // The finalizer should flip roughly half the bits.
            let differing = (fp ^ base).count_ones();
            assert!((8..=56).contains(&differing), "weak diffusion: {differing} bits");
        }
    }

    #[test]
    fn fp_map_round_trips() {
        let mut map = FpMap::default();
        map.insert(fingerprint(b"alpha"), 1);
        map.insert(fingerprint(b"beta"), 2);
        assert_eq!(map.get(&fingerprint(b"alpha")), Some(&1));
        assert_eq!(map.get(&fingerprint(b"beta")), Some(&2));
        assert_eq!(map.get(&fingerprint(b"gamma")), None);
    }
}
