//! The abstract protocol machine explored by the checker.
//!
//! The *state* is built from the very objects the timed simulator uses —
//! [`Cache`], [`Directory`], [`HomeMemory`], [`RingMessage`] — and every
//! transition consults the shared tables in [`ringsim_proto::transitions`].
//! What the model abstracts away is *time*: slot rotation, latencies and
//! retry backoffs are replaced by a nondeterministic scheduler that explores
//! every ordering of the remaining atomic steps (issuing a reference,
//! circulating a snoop probe, delivering one network message, ...).
//!
//! Abstractions, and why they are sound:
//!
//! * **Atomic probe circulation.** A snooping probe (and the directory's
//!   multicast invalidation) visits all nodes in one step. Per-node effects
//!   are independent, and a reference issued "mid-circulation" at node `j`
//!   is indistinguishable from one issued just before or just after the
//!   probe's visit to `j`, both of which the scheduler explores as separate
//!   interleavings.
//! * **Folded home access.** The directory home's lock acquisition and its
//!   subsequent memory/directory access are one step: the entry is locked
//!   for the whole window, so no same-block event can interleave.
//! * **Per-class FIFO network.** Messages with the same source,
//!   destination, slot class, and block arrive in insertion order (slots of
//!   one class preserve order on the ring); everything else reorders
//!   freely.
//! * **No conflict misses.** Caches are sized so every model block maps to
//!   its own line; replacements are modelled by explicit eviction steps,
//!   which drive the same victim/write-back code paths that
//!   `fill`-displacement does in the simulator.

use std::collections::VecDeque;
use std::sync::Arc;

use ringsim_cache::{Cache, CacheConfig, LineState};
use ringsim_proto::guarded::{self, FireCounts};
use ringsim_proto::sci::{SciAction, SciList, SciRequest};
use ringsim_proto::transitions::{
    self, BusOp, DirAction, DirRequest, DragonAction, HomeSnoopAction, MesiAction, SnoopAction,
};
use ringsim_proto::{Directory, HomeMemory, MsgKind, ProtocolKind, RingMessage};
use ringsim_types::{BlockAddr, NodeId};

use crate::Fault;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnKind {
    Read,
    Write,
    Upgrade,
}

impl TxnKind {
    fn name(self) -> &'static str {
        match self {
            TxnKind::Read => "read miss",
            TxnKind::Write => "write miss",
            TxnKind::Upgrade => "upgrade",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Snooping: the probe is ready to circulate (first attempt or retry).
    NeedProbe,
    /// Snooping: a local clean read completing from the home's own memory.
    WaitLocal,
    /// Waiting for a remote reply (snooping data, or any directory reply).
    WaitRemote,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Txn {
    pub block: BlockAddr,
    pub kind: TxnKind,
    pub phase: Phase,
    pub poisoned: bool,
    pub self_owner: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    AwaitInval,
    AwaitUpdate,
}

/// Mirror of the simulator's `HomeTxn`: the locked request's context while
/// the home waits for its multicast or memory update to return.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Active {
    pub req: RingMessage,
    pub stage: Stage,
    pub converted: bool,
}

/// One reachable protocol state.
#[derive(Debug, Clone)]
pub(crate) struct State {
    pub caches: Vec<Cache>,
    pub mem: HomeMemory,
    pub dir: Directory,
    pub txns: Vec<Option<Txn>>,
    /// Directory mode: dirty-victim write-back in flight, per `[node][block]`.
    pub wb_buffer: Vec<Vec<bool>>,
    /// In-flight messages, insertion-ordered (FIFO within a class lane).
    pub net: Vec<RingMessage>,
    /// Per-block locked home transaction, mirror of `home_txns`.
    pub active: Vec<Option<Active>>,
    /// Per-block pending queue at the home, mirror of `home_pending`.
    pub queue: Vec<VecDeque<RingMessage>>,
    /// Forwards parked behind the target's own fill, per node.
    pub pending_fwds: Vec<Vec<RingMessage>>,
    /// SCI mode: per-block sharing list (head first) plus dirty bit.
    pub sci: Vec<SciList>,
    /// MESI/Dragon mode: clean-exclusive (E) marker per `[node][block]` —
    /// the line is `We` in the cache but memory is still up to date.
    pub excl: Vec<Vec<bool>>,
    /// Dragon mode: per-block Sm owner (shared-modified supplier), if any.
    pub sm: Vec<Option<NodeId>>,
}

/// One scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Move {
    /// A processor issues a read (`write == false`) or write reference.
    Issue { node: usize, block: usize, write: bool },
    /// A cache replaces a valid line (conflict miss stand-in).
    Evict { node: usize, block: usize },
    /// A snooping local clean read completes from the home's own memory.
    LocalComplete { node: usize },
    /// A snooping probe circulates the full ring and returns.
    Circulate { node: usize },
    /// The `index`-th in-flight message arrives at its destination.
    Deliver { index: usize },
}

impl Move {
    /// Issue and Evict inject new work; everything else makes progress on
    /// outstanding work. Deadlock is judged on progress moves only.
    pub(crate) fn is_progress(self) -> bool {
        !matches!(self, Move::Issue { .. } | Move::Evict { .. })
    }

    /// Packs the move into 16 bits for the per-state side table (3-bit tag,
    /// 13-bit payload). Nodes fit in 3 bits and blocks in 2 by
    /// `CheckConfig::validate`; delivery indices are bounded by the number
    /// of in-flight messages, far below 2^13.
    pub(crate) fn pack(self) -> u16 {
        match self {
            Move::Issue { node, block, write } => {
                (node as u16) << 4 | (block as u16) << 1 | u16::from(write)
            }
            Move::Evict { node, block } => 1 << 13 | (node as u16) << 4 | (block as u16) << 1,
            Move::LocalComplete { node } => 2 << 13 | node as u16,
            Move::Circulate { node } => 3 << 13 | node as u16,
            Move::Deliver { index } => {
                debug_assert!(index < 1 << 13, "unpackable delivery index {index}");
                4 << 13 | index as u16
            }
        }
    }

    /// Inverse of [`Move::pack`].
    pub(crate) fn unpack(p: u16) -> Move {
        let payload = (p & 0x1FFF) as usize;
        match p >> 13 {
            0 => Move::Issue {
                node: payload >> 4,
                block: (payload >> 1) & 0b11,
                write: payload & 1 != 0,
            },
            1 => Move::Evict { node: payload >> 4, block: (payload >> 1) & 0b11 },
            2 => Move::LocalComplete { node: payload },
            3 => Move::Circulate { node: payload },
            4 => Move::Deliver { index: payload },
            tag => panic!("invalid packed move tag {tag}"),
        }
    }
}

/// The model: configuration plus the transition functions.
#[derive(Debug, Clone)]
pub(crate) struct Model {
    pub protocol: ProtocolKind,
    pub nodes: usize,
    pub blocks: usize,
    pub fault: Fault,
    pub evictions: bool,
    /// When set, every guarded-rule evaluation bumps its fire counter
    /// (`--stats`); `None` skips the accounting entirely.
    pub counts: Option<Arc<FireCounts>>,
}

pub(crate) fn kind_code(k: MsgKind) -> u8 {
    match k {
        MsgKind::SnoopRead => 0,
        MsgKind::SnoopWrite => 1,
        MsgKind::SnoopUpgrade => 2,
        MsgKind::DirRead => 3,
        MsgKind::DirWrite => 4,
        MsgKind::DirUpgrade => 5,
        MsgKind::DirFwdRead => 6,
        MsgKind::DirFwdWrite => 7,
        MsgKind::DirInval => 8,
        MsgKind::DirAck => 9,
        MsgKind::BlockData => 10,
        MsgKind::WriteBack => 11,
        MsgKind::MemUpdate => 12,
    }
}

fn code_kind(c: u8) -> MsgKind {
    match c {
        0 => MsgKind::SnoopRead,
        1 => MsgKind::SnoopWrite,
        2 => MsgKind::SnoopUpgrade,
        3 => MsgKind::DirRead,
        4 => MsgKind::DirWrite,
        5 => MsgKind::DirUpgrade,
        6 => MsgKind::DirFwdRead,
        7 => MsgKind::DirFwdWrite,
        8 => MsgKind::DirInval,
        9 => MsgKind::DirAck,
        10 => MsgKind::BlockData,
        11 => MsgKind::WriteBack,
        12 => MsgKind::MemUpdate,
        _ => panic!("invalid message-kind code {c}"),
    }
}

pub(crate) fn state_code(s: LineState) -> u8 {
    match s {
        LineState::Inv => 0,
        LineState::Rs => 1,
        LineState::We => 2,
    }
}

fn code_state(c: u8) -> LineState {
    match c {
        0 => LineState::Inv,
        1 => LineState::Rs,
        2 => LineState::We,
        _ => panic!("invalid line-state code {c}"),
    }
}

/// One-byte encoding of a transaction's kind/phase/flag bits (block
/// excluded), shared by the state encoding and the symmetry signatures.
pub(crate) fn txn_code(t: &Txn) -> u8 {
    let kind = match t.kind {
        TxnKind::Read => 0u8,
        TxnKind::Write => 1,
        TxnKind::Upgrade => 2,
    };
    let phase = match t.phase {
        Phase::NeedProbe => 0u8,
        Phase::WaitLocal => 1,
        Phase::WaitRemote => 2,
    };
    kind | (phase << 2) | (u8::from(t.poisoned) << 4) | (u8::from(t.self_owner) << 5)
}

/// The lane a message travels in: messages in the same lane stay FIFO.
fn lane(m: &RingMessage) -> (u8, u64, u16, u16) {
    let class = match m.class() {
        ringsim_proto::MsgClass::Probe => 0u8,
        ringsim_proto::MsgClass::Block => 1u8,
    };
    (class, m.block.raw(), m.src.index() as u16, m.dst.index() as u16)
}

fn encode_msg_under(out: &mut Vec<u8>, m: &RingMessage, node_map: &[usize], block_map: &[usize]) {
    out.push(kind_code(m.kind));
    out.push(block_map[m.block.raw() as usize] as u8);
    out.push(node_map[m.src.index()] as u8);
    out.push(node_map[m.dst.index()] as u8);
    out.push(node_map[m.requester.index()] as u8);
    out.push(u8::from(m.retained) | (u8::from(m.from_dirty) << 1));
}

fn decode_msg(bytes: &[u8], pos: &mut usize) -> RingMessage {
    let take = |pos: &mut usize| {
        let b = bytes[*pos];
        *pos += 1;
        b
    };
    let kind = code_kind(take(pos));
    let block = BlockAddr::new(u64::from(take(pos)));
    let src = NodeId::new(take(pos) as usize);
    let dst = NodeId::new(take(pos) as usize);
    let requester = NodeId::new(take(pos) as usize);
    let flags = take(pos);
    RingMessage::for_requester(kind, block, src, dst, requester)
        .with_retained(flags & 1 != 0)
        .with_from_dirty(flags & 2 != 0)
}

impl Model {
    pub(crate) fn new(
        protocol: ProtocolKind,
        nodes: usize,
        blocks: usize,
        fault: Fault,
        evictions: bool,
    ) -> Self {
        Self { protocol, nodes, blocks, fault, evictions, counts: None }
    }

    /// The guarded-rule dispatch counters, if stats are being collected.
    fn fire_counts(&self) -> Option<&FireCounts> {
        self.counts.as_deref()
    }

    fn cache_config(&self) -> CacheConfig {
        // Every model block gets its own line: replacement is modelled by
        // explicit Evict moves, not by accidental conflicts.
        CacheConfig { size_bytes: 16 * (self.blocks as u64).next_power_of_two(), block_bytes: 16 }
    }

    pub(crate) fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::new(block.raw() as usize % self.nodes)
    }

    pub(crate) fn initial(&self) -> State {
        State {
            caches: (0..self.nodes)
                .map(|_| Cache::new(self.cache_config()).expect("valid model cache"))
                .collect(),
            mem: HomeMemory::new(),
            dir: Directory::new(self.nodes),
            txns: vec![None; self.nodes],
            wb_buffer: vec![vec![false; self.blocks]; self.nodes],
            net: Vec::new(),
            active: vec![None; self.blocks],
            queue: vec![VecDeque::new(); self.blocks],
            pending_fwds: vec![Vec::new(); self.nodes],
            sci: vec![SciList::default(); self.blocks],
            excl: vec![vec![false; self.blocks]; self.nodes],
            sm: vec![None; self.blocks],
        }
    }

    /// Whether this protocol is one of the atomic-transaction models: the
    /// bus protocols (a bus transaction is indivisible) and SCI (the home
    /// serialises all list operations per block). For these, `Circulate`
    /// means "the pending transaction wins arbitration and is served in one
    /// step"; interleavings come from the order outstanding transactions
    /// and evictions are served in, not from in-flight messages.
    fn is_atomic(&self) -> bool {
        matches!(self.protocol, ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon)
    }

    pub(crate) fn is_quiescent(&self, s: &State) -> bool {
        s.txns.iter().all(Option::is_none)
            && s.net.is_empty()
            && s.active.iter().all(Option::is_none)
            && s.queue.iter().all(VecDeque::is_empty)
            && s.wb_buffer.iter().flatten().all(|&b| !b)
            && s.pending_fwds.iter().all(Vec::is_empty)
    }

    /// Whether nothing at all is outstanding for `block` — the precondition
    /// for the strict directory–cache agreement check.
    pub(crate) fn block_quiescent(&self, s: &State, block: BlockAddr) -> bool {
        let b = block.raw() as usize;
        s.txns.iter().all(|t| t.as_ref().is_none_or(|t| t.block != block))
            && s.net.iter().all(|m| m.block != block)
            && s.active[b].is_none()
            && s.queue[b].is_empty()
            && s.wb_buffer.iter().all(|w| !w[b])
            && s.pending_fwds.iter().flatten().all(|m| m.block != block)
    }

    // ------------------------------------------------------------ moves

    pub(crate) fn enumerate(&self, s: &State) -> Vec<Move> {
        let mut moves = Vec::new();
        for i in 0..self.nodes {
            match &s.txns[i] {
                None => {
                    for b in 0..self.blocks {
                        match s.caches[i].state_of(BlockAddr::new(b as u64)) {
                            LineState::Inv => {
                                moves.push(Move::Issue { node: i, block: b, write: false });
                                moves.push(Move::Issue { node: i, block: b, write: true });
                            }
                            LineState::Rs => {
                                moves.push(Move::Issue { node: i, block: b, write: true });
                            }
                            // A clean-exclusive (E) line promotes silently on
                            // a write hit — a real transition worth exploring.
                            LineState::We if s.excl[i][b] => {
                                moves.push(Move::Issue { node: i, block: b, write: true });
                            }
                            LineState::We => {}
                        }
                    }
                }
                Some(t) => match t.phase {
                    Phase::NeedProbe => moves.push(Move::Circulate { node: i }),
                    Phase::WaitLocal => moves.push(Move::LocalComplete { node: i }),
                    Phase::WaitRemote => {}
                },
            }
            if self.evictions {
                for b in 0..self.blocks {
                    let block = BlockAddr::new(b as u64);
                    let busy = s.txns[i].as_ref().is_some_and(|t| t.block == block);
                    // One write-back buffer entry per block, as in real
                    // hardware: a dirty line cannot be evicted again while a
                    // previous WriteBack from this node is still in flight.
                    // Without this bound stale write-backs (reclaimed by the
                    // evictor's own re-miss) pile up without limit and the
                    // state space is infinite.
                    let wb_in_flight = s.caches[i].state_of(block).is_dirty()
                        && (s.wb_buffer[i][b]
                            || s.net
                                .iter()
                                .chain(s.queue[b].iter())
                                .chain(s.pending_fwds.iter().flatten())
                                .any(|m| {
                                    m.kind == MsgKind::WriteBack
                                        && m.block == block
                                        && m.src.index() == i
                                }));
                    if !busy && !wb_in_flight && s.caches[i].state_of(block).is_valid() {
                        moves.push(Move::Evict { node: i, block: b });
                    }
                }
            }
        }
        for (k, m) in s.net.iter().enumerate() {
            let key = lane(m);
            if s.net[..k].iter().all(|e| lane(e) != key) {
                moves.push(Move::Deliver { index: k });
            }
        }
        moves
    }

    /// Applies `mv` and returns a human-readable description of the step.
    pub(crate) fn apply(&self, s: &mut State, mv: Move) -> String {
        match mv {
            Move::Issue { node, block, write } => self.do_issue(s, node, block, write),
            Move::Evict { node, block } => self.do_evict(s, node, block),
            Move::LocalComplete { node } => self.do_local_complete(s, node),
            Move::Circulate { node } => self.do_circulate(s, node),
            Move::Deliver { index } => {
                let msg = s.net.remove(index);
                self.deliver(s, msg)
            }
        }
    }

    // ---------------------------------------------------- gated mutators

    /// A coherence invalidation observed at node `j` — the hook the
    /// `SkipInvalidate` mutation disables for the highest-index node.
    fn invalidate_at(&self, s: &mut State, j: usize, block: BlockAddr) {
        if self.fault == Fault::SkipInvalidate && j == self.nodes - 1 {
            return;
        }
        s.caches[j].snoop_invalidate(block);
    }

    /// Directory ownership grant — disabled wholesale by `ForgetOwner`.
    fn set_owner(&self, s: &mut State, block: BlockAddr, node: NodeId) {
        if self.fault == Fault::ForgetOwner {
            return;
        }
        s.dir.set_owner(block, node);
    }

    /// Snooping home claims the dirty bit — disabled by `ForgetOwner`.
    fn claim_dirty(&self, s: &mut State, block: BlockAddr) {
        if self.fault == Fault::ForgetOwner {
            return;
        }
        s.mem.set_dirty(block);
    }

    fn poison_pending_read(&self, s: &mut State, j: usize, block: BlockAddr) {
        if let Some(t) = &mut s.txns[j] {
            if t.block == block && t.kind == TxnKind::Read {
                t.poisoned = true;
            }
        }
    }

    fn unpoison(&self, s: &mut State, requester: NodeId, block: BlockAddr) {
        if let Some(t) = &mut s.txns[requester.index()] {
            if t.block == block {
                t.poisoned = false;
            }
        }
    }

    // ------------------------------------------------------ basic moves

    fn do_issue(&self, s: &mut State, i: usize, b: usize, write: bool) -> String {
        let block = BlockAddr::new(b as u64);
        let me = NodeId::new(i);
        let home = self.home_of(block);
        if s.caches[i].state_of(block) == LineState::We {
            // Only enumerated for MESI/Dragon on a clean-exclusive line: the
            // write hit promotes E to M without any bus traffic.
            debug_assert!(write && s.excl[i][b]);
            match self.protocol {
                ProtocolKind::Mesi => {
                    let a = guarded::mesi_action(
                        BusOp::WriteExclusiveHit,
                        false,
                        false,
                        self.fire_counts(),
                    );
                    debug_assert_eq!(a, MesiAction::PromoteSilently);
                }
                ProtocolKind::Dragon => {
                    let a = guarded::dragon_action(
                        BusOp::WriteExclusiveHit,
                        false,
                        false,
                        self.fire_counts(),
                    );
                    debug_assert_eq!(a, DragonAction::PromoteSilently);
                }
                _ => unreachable!("silent promotion outside MESI/Dragon"),
            }
            s.excl[i][b] = false;
            // Memory is stale from here on; `ForgetOwner` loses the note.
            self.claim_dirty(s, block);
            return format!("P{i} writes {block} in clean-exclusive; silent promotion to modified");
        }
        let kind = match (s.caches[i].state_of(block), write) {
            (LineState::Inv, false) => TxnKind::Read,
            (LineState::Inv, true) => TxnKind::Write,
            (LineState::Rs, true) => TxnKind::Upgrade,
            (state, _) => unreachable!("issue on a hitting access ({state:?})"),
        };
        let mut txn =
            Txn { block, kind, phase: Phase::WaitRemote, poisoned: false, self_owner: false };
        let label = format!("P{i} issues a {} on {block}", kind.name());
        match self.protocol {
            ProtocolKind::Snooping => {
                let local_clean = home == me && !s.mem.is_dirty(block);
                match kind {
                    TxnKind::Read if local_clean => txn.phase = Phase::WaitLocal,
                    TxnKind::Read => txn.phase = Phase::NeedProbe,
                    TxnKind::Write | TxnKind::Upgrade => {
                        if local_clean {
                            txn.self_owner = true;
                            s.mem.set_dirty(block);
                        }
                        txn.phase = Phase::NeedProbe;
                    }
                }
                s.txns[i] = Some(txn);
                label
            }
            ProtocolKind::Directory => {
                let mk = match kind {
                    TxnKind::Read => MsgKind::DirRead,
                    TxnKind::Write => MsgKind::DirWrite,
                    TxnKind::Upgrade => MsgKind::DirUpgrade,
                };
                s.txns[i] = Some(txn);
                let req = RingMessage::new(mk, block, me, home);
                if home == me {
                    let outcome = self.home_receive(s, req);
                    format!("{label} ({outcome} at its own home)")
                } else {
                    s.net.push(req);
                    label
                }
            }
            ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => {
                // Atomic-transaction protocols: the request sits pending
                // until a Circulate move serves it in one indivisible step.
                txn.phase = Phase::NeedProbe;
                s.txns[i] = Some(txn);
                label
            }
        }
    }

    fn do_evict(&self, s: &mut State, i: usize, b: usize) -> String {
        let block = BlockAddr::new(b as u64);
        let state = s.caches[i].evict(block);
        let dirty = state.is_dirty();
        self.handle_victim(s, i, block, state);
        format!("P{i} evicts {block} ({})", if dirty { "dirty" } else { "clean" })
    }

    /// Victim handling shared by Evict and `fill` displacement — mirrors
    /// `RingSystem::fill`.
    fn handle_victim(&self, s: &mut State, i: usize, victim: BlockAddr, vstate: LineState) {
        let me = NodeId::new(i);
        let vhome = self.home_of(victim);
        match self.protocol {
            ProtocolKind::Snooping => {
                if vstate.is_dirty() {
                    if vhome == me {
                        s.mem.clear_dirty(victim);
                    } else {
                        s.net.push(RingMessage::new(MsgKind::WriteBack, victim, me, vhome));
                    }
                }
            }
            ProtocolKind::Directory => {
                if vstate.is_dirty() {
                    s.wb_buffer[i][victim.raw() as usize] = true;
                    let wb = RingMessage::new(MsgKind::WriteBack, victim, me, vhome);
                    if vhome == me {
                        self.home_receive(s, wb);
                    } else {
                        s.net.push(wb);
                    }
                } else if vstate.is_valid() {
                    // Zero-cost replacement hint, as in the simulator.
                    s.dir.remove_sharer(victim, me);
                }
            }
            ProtocolKind::Sci => {
                if vstate.is_valid() {
                    let e = &s.sci[victim.raw() as usize];
                    let a = guarded::sci_action(
                        SciRequest::Rollout,
                        e.list.len(),
                        e.contains(me),
                        self.fire_counts(),
                    );
                    debug_assert_eq!(a, SciAction::Splice);
                    self.sci_splice(s, victim, me);
                }
                // A dirty head's rollout carries the data home with it; the
                // splice clears the dirty bit when the list empties, so
                // nothing stays in flight.
            }
            ProtocolKind::Mesi | ProtocolKind::Dragon => {
                let b = victim.raw() as usize;
                if vstate.is_dirty() && !s.excl[i][b] {
                    // A modified victim writes back in the same bus
                    // transaction as the replacement (atomic bus).
                    s.mem.clear_dirty(victim);
                }
                s.excl[i][b] = false;
                if s.sm[b] == Some(me) {
                    // The Sm owner's write-back refreshes memory; remaining
                    // Sc copies stay valid and clean.
                    s.mem.clear_dirty(victim);
                    s.sm[b] = None;
                }
            }
        }
    }

    /// SCI rollout: the departing node splices itself out of the sharing
    /// list. `BreakListLink` reinstates a classic SCI implementation bug:
    /// the splice writes the departing node's *own* forward pointer into
    /// its predecessor instead of the successor's, losing the successor —
    /// the list forgets a cache that still holds a valid copy.
    fn sci_splice(&self, s: &mut State, block: BlockAddr, node: NodeId) {
        let e = &mut s.sci[block.raw() as usize];
        if self.fault == Fault::BreakListLink {
            if let Some(pos) = e.list.iter().position(|&p| p == node) {
                if pos + 1 < e.list.len() {
                    e.list.remove(pos + 1);
                }
            }
        }
        e.splice(node);
    }

    fn fill(&self, s: &mut State, i: usize, block: BlockAddr, state: LineState) {
        if let Some((victim, vstate)) = s.caches[i].fill(block, state) {
            self.handle_victim(s, i, victim, vstate);
        }
    }

    fn do_local_complete(&self, s: &mut State, i: usize) -> String {
        let t = s.txns[i].expect("local completion without txn");
        debug_assert_eq!(t.phase, Phase::WaitLocal);
        if !t.poisoned {
            self.fill(s, i, t.block, LineState::Rs);
        }
        self.finish_txn(s, i);
        format!(
            "P{i} completes its local clean read of {}{}",
            t.block,
            if t.poisoned { " (poisoned, uncached)" } else { "" }
        )
    }

    // --------------------------------------------------- snooping probes

    fn do_circulate(&self, s: &mut State, i: usize) -> String {
        if self.is_atomic() {
            return self.do_serve(s, i);
        }
        let t = s.txns[i].expect("circulate without txn");
        debug_assert_eq!(t.phase, Phase::NeedProbe);
        let block = t.block;
        let me = NodeId::new(i);
        let home = self.home_of(block);
        // A retry goes back through `issue_txn` in the simulator, which
        // re-samples the local-clean condition — without this a home-node
        // requester whose probe nobody can acknowledge would retry forever
        // (its own write-back clears the dirty bit between attempts).
        if home == me && !s.mem.is_dirty(block) {
            match t.kind {
                TxnKind::Read => {
                    if let Some(u) = &mut s.txns[i] {
                        u.phase = Phase::WaitLocal;
                    }
                    return format!(
                        "P{i}'s retried read of {block} re-issues on the local clean path"
                    );
                }
                TxnKind::Write | TxnKind::Upgrade => {
                    if let Some(u) = &mut s.txns[i] {
                        u.self_owner = true;
                    }
                    s.mem.set_dirty(block);
                }
            }
        }
        let t = s.txns[i].expect("circulate without txn");
        let probe = match t.kind {
            TxnKind::Read => MsgKind::SnoopRead,
            TxnKind::Write => MsgKind::SnoopWrite,
            TxnKind::Upgrade => MsgKind::SnoopUpgrade,
        };
        let mut acked = t.self_owner;
        for step in 1..self.nodes {
            let j = (i + step) % self.nodes;
            // A node with its own transaction in flight on this block does
            // not participate (home side included); a passing write still
            // poisons its pending read.
            if let Some(u) = &s.txns[j] {
                if u.block == block {
                    if probe != MsgKind::SnoopRead {
                        self.poison_pending_read(s, j, block);
                    }
                    continue;
                }
            }
            let state = s.caches[j].state_of(block);
            let data =
                RingMessage::for_requester(MsgKind::BlockData, block, NodeId::new(j), me, me);
            match guarded::snooper_action(state, probe, self.fire_counts()) {
                SnoopAction::SupplyDowngrade => {
                    s.caches[j].snoop_downgrade(block);
                    acked = true;
                    s.net.push(data.with_from_dirty(true));
                    // The write-back stays in flight even when the owner is
                    // the home: the dirty bit keeps arbitrating Silent until
                    // the WriteBack lands, exactly as in the simulator.
                    let wb = RingMessage::new(MsgKind::WriteBack, block, NodeId::new(j), home);
                    s.net.push(wb);
                }
                SnoopAction::SupplyInvalidate => {
                    s.caches[j].snoop_invalidate(block);
                    acked = true;
                    s.net.push(data.with_from_dirty(true));
                }
                SnoopAction::Invalidate => self.invalidate_at(s, j, block),
                SnoopAction::Ignore => {}
            }
            if j == home.index() {
                match guarded::home_snoop_action(s.mem.is_dirty(block), probe, self.fire_counts()) {
                    HomeSnoopAction::Supply => {
                        acked = true;
                        s.net.push(data.with_from_dirty(false));
                    }
                    HomeSnoopAction::SupplyClaim => {
                        acked = true;
                        s.net.push(data.with_from_dirty(false));
                        self.claim_dirty(s, block);
                    }
                    HomeSnoopAction::AckClaim => {
                        acked = true;
                        self.claim_dirty(s, block);
                    }
                    HomeSnoopAction::Silent => {}
                }
            }
        }
        // probe_returned
        if !acked {
            let converts = t.kind == TxnKind::Upgrade;
            if converts {
                // The requester's line is stale: drop it and retry as a
                // write miss.
                if let Some(u) = &mut s.txns[i] {
                    u.kind = TxnKind::Write;
                }
                s.caches[i].snoop_invalidate(block);
            }
            return format!(
                "P{i}'s {probe} probe for {block} circulates unacknowledged ({})",
                if converts { "upgrade converts to a write miss" } else { "will retry" }
            );
        }
        match t.kind {
            TxnKind::Upgrade => {
                if !s.caches[i].promote(block) {
                    // Only fault injection can remove the line mid-upgrade;
                    // fill so the invariant layer reports the damage.
                    self.fill(s, i, block, LineState::We);
                }
                self.finish_txn(s, i);
                format!("P{i}'s upgrade probe for {block} circulates; copies invalidated, line promoted")
            }
            TxnKind::Write if t.self_owner => {
                self.fill(s, i, block, LineState::We);
                self.finish_txn(s, i);
                format!("P{i}'s write probe for {block} circulates; local memory supplies")
            }
            TxnKind::Read | TxnKind::Write => {
                if let Some(u) = &mut s.txns[i] {
                    u.phase = Phase::WaitRemote;
                }
                format!("P{i}'s {probe} probe for {block} circulates, acknowledged")
            }
        }
    }

    // -------------------------------------- atomic transaction protocols

    /// Serves node `i`'s pending transaction in one indivisible step — the
    /// bus grant (MESI/Dragon) or the home's serialised list operation
    /// (SCI). See [`Model::is_atomic`].
    fn do_serve(&self, s: &mut State, i: usize) -> String {
        let t = s.txns[i].expect("serve without txn");
        debug_assert_eq!(t.phase, Phase::NeedProbe);
        match self.protocol {
            ProtocolKind::Sci => self.serve_sci(s, i, t),
            ProtocolKind::Mesi => self.serve_mesi(s, i, t),
            ProtocolKind::Dragon => self.serve_dragon(s, i, t),
            _ => unreachable!("serve on a message-passing protocol"),
        }
    }

    /// An upgrade whose line vanished while the request was pending must go
    /// back to memory as a full write miss (`upgrade_must_convert`'s bus
    /// analogue).
    fn demote_stale_upgrade(&self, s: &State, i: usize, t: &Txn) -> TxnKind {
        if t.kind == TxnKind::Upgrade && !s.caches[i].state_of(t.block).is_valid() {
            TxnKind::Write
        } else {
            t.kind
        }
    }

    /// Clears the clean-exclusive marker once the line is no longer `We` —
    /// keeps `excl` meaningful even when a fault skips an invalidation.
    fn sync_excl(&self, s: &mut State, j: usize, block: BlockAddr) {
        if s.caches[j].state_of(block) != LineState::We {
            s.excl[j][block.raw() as usize] = false;
        }
    }

    fn serve_sci(&self, s: &mut State, i: usize, t: Txn) -> String {
        let block = t.block;
        let b = block.raw() as usize;
        let me = NodeId::new(i);
        let home = self.home_of(block);
        let kind = self.demote_stale_upgrade(s, i, &t);
        let req = match kind {
            TxnKind::Read => SciRequest::Read,
            TxnKind::Write => SciRequest::Write,
            TxnKind::Upgrade => SciRequest::Upgrade,
        };
        let e = s.sci[b].clone();
        let action = guarded::sci_action(req, e.list.len(), e.contains(me), self.fire_counts());
        let note = match action {
            SciAction::GrantFromMemory => {
                s.sci[b].list.insert(0, me);
                self.fill(s, i, block, LineState::Rs);
                "memory supplies; requester heads the empty list"
            }
            SciAction::ForwardToHead => {
                if e.dirty {
                    s.caches[e.list[0].index()].snoop_downgrade(block);
                    s.sci[b].dirty = false;
                }
                s.sci[b].list.insert(0, me);
                self.fill(s, i, block, LineState::Rs);
                "head supplies; requester prepends to the list"
            }
            SciAction::GrantClaim => {
                s.sci[b].list = vec![me];
                s.sci[b].dirty = true;
                self.fill(s, i, block, LineState::We);
                "memory supplies; requester claims the empty list"
            }
            SciAction::PurgeAndClaim => {
                for &p in &e.list {
                    self.invalidate_at(s, p.index(), block);
                }
                s.sci[b].list = vec![me];
                s.sci[b].dirty = true;
                self.fill(s, i, block, LineState::We);
                "list purged in order; requester claims"
            }
            SciAction::PurgeOthersAndClaim => {
                for p in e.others(me) {
                    self.invalidate_at(s, p.index(), block);
                }
                s.sci[b].list = vec![me];
                s.sci[b].dirty = true;
                if !s.caches[i].promote(block) {
                    self.fill(s, i, block, LineState::We);
                }
                "other members purged; sole survivor claims"
            }
            SciAction::Claim => {
                s.sci[b].dirty = true;
                if !s.caches[i].promote(block) {
                    self.fill(s, i, block, LineState::We);
                }
                "sole member claims the list"
            }
            SciAction::Splice => unreachable!("rollouts are served at eviction, not as requests"),
        };
        self.finish_txn(s, i);
        format!("home {home} serves P{i}'s {} on {block}; {note}", kind.name())
    }

    fn serve_mesi(&self, s: &mut State, i: usize, t: Txn) -> String {
        let block = t.block;
        let b = block.raw() as usize;
        let kind = self.demote_stale_upgrade(s, i, &t);
        let others: Vec<usize> =
            (0..self.nodes).filter(|&j| j != i && s.caches[j].state_of(block).is_valid()).collect();
        // "Owner" means a modified copy; a clean-exclusive (E) copy lets
        // memory supply and merely downgrades.
        let owner = others
            .iter()
            .copied()
            .find(|&j| s.caches[j].state_of(block) == LineState::We && !s.excl[j][b]);
        let op = match kind {
            TxnKind::Read => BusOp::ReadMiss,
            TxnKind::Write => BusOp::WriteMiss,
            TxnKind::Upgrade => BusOp::WriteSharedHit,
        };
        let action =
            guarded::mesi_action(op, !others.is_empty(), owner.is_some(), self.fire_counts());
        let note = match action {
            MesiAction::FillExclusive => {
                self.fill(s, i, block, LineState::We);
                s.excl[i][b] = true;
                "memory supplies; fills clean-exclusive"
            }
            MesiAction::FillShared => {
                for &j in &others {
                    if s.caches[j].state_of(block) == LineState::We {
                        s.caches[j].snoop_downgrade(block);
                    }
                    self.sync_excl(s, j, block);
                }
                self.fill(s, i, block, LineState::Rs);
                "memory supplies; fills shared"
            }
            MesiAction::OwnerSuppliesShared => {
                let j = owner.expect("owner-supplies without owner");
                s.caches[j].snoop_downgrade(block);
                // The owner's flush refreshes memory as it supplies.
                s.mem.clear_dirty(block);
                self.fill(s, i, block, LineState::Rs);
                "owner supplies and downgrades; memory refreshed"
            }
            MesiAction::OwnerSuppliesModified => {
                let j = owner.expect("owner-supplies without owner");
                self.invalidate_at(s, j, block);
                self.sync_excl(s, j, block);
                self.fill(s, i, block, LineState::We);
                // Dirty data moves cache to cache; memory stays stale.
                self.claim_dirty(s, block);
                "owner supplies modified data and invalidates itself"
            }
            MesiAction::InvalidateAndFillModified => {
                for &j in &others {
                    self.invalidate_at(s, j, block);
                    self.sync_excl(s, j, block);
                }
                self.fill(s, i, block, LineState::We);
                self.claim_dirty(s, block);
                "sharers invalidated; fills modified"
            }
            MesiAction::FillModified => {
                self.fill(s, i, block, LineState::We);
                self.claim_dirty(s, block);
                "memory supplies; fills modified"
            }
            MesiAction::InvalidateAndPromote => {
                for &j in &others {
                    self.invalidate_at(s, j, block);
                    self.sync_excl(s, j, block);
                }
                if !s.caches[i].promote(block) {
                    self.fill(s, i, block, LineState::We);
                }
                self.claim_dirty(s, block);
                "sharers invalidated; line promoted"
            }
            MesiAction::Promote => {
                if !s.caches[i].promote(block) {
                    self.fill(s, i, block, LineState::We);
                }
                self.claim_dirty(s, block);
                "last copy; line promoted in place"
            }
            MesiAction::PromoteSilently => {
                unreachable!("exclusive write hits never reach the bus")
            }
        };
        self.finish_txn(s, i);
        format!("bus grants P{i}'s {} on {block}; {note}", kind.name())
    }

    fn serve_dragon(&self, s: &mut State, i: usize, t: Txn) -> String {
        let block = t.block;
        let b = block.raw() as usize;
        let me = NodeId::new(i);
        let kind = self.demote_stale_upgrade(s, i, &t);
        let others: Vec<usize> =
            (0..self.nodes).filter(|&j| j != i && s.caches[j].state_of(block).is_valid()).collect();
        // The owner — responsible for supplying dirty data — is either a
        // modified copy or the block's Sm (shared-modified) holder.
        let m_owner = others
            .iter()
            .copied()
            .find(|&j| s.caches[j].state_of(block) == LineState::We && !s.excl[j][b]);
        let has_owner =
            m_owner.is_some() || s.sm[b].is_some_and(|o| o != me && others.contains(&o.index()));
        let op = match kind {
            TxnKind::Read => BusOp::ReadMiss,
            TxnKind::Write => BusOp::WriteMiss,
            TxnKind::Upgrade => BusOp::WriteSharedHit,
        };
        let action = guarded::dragon_action(op, !others.is_empty(), has_owner, self.fire_counts());
        let note = match action {
            DragonAction::FillExclusive => {
                self.fill(s, i, block, LineState::We);
                s.excl[i][b] = true;
                "memory supplies; fills clean-exclusive"
            }
            DragonAction::FillShared => {
                for &j in &others {
                    if s.caches[j].state_of(block) == LineState::We {
                        s.caches[j].snoop_downgrade(block);
                    }
                    self.sync_excl(s, j, block);
                }
                self.fill(s, i, block, LineState::Rs);
                "memory supplies; fills shared-clean"
            }
            DragonAction::OwnerSuppliesShared => {
                if let Some(j) = m_owner {
                    // A modified owner demotes to Sm but keeps supplying.
                    s.caches[j].snoop_downgrade(block);
                    s.sm[b] = Some(NodeId::new(j));
                }
                self.fill(s, i, block, LineState::Rs);
                "owner supplies; stays shared-modified"
            }
            DragonAction::FillModified => {
                self.fill(s, i, block, LineState::We);
                self.claim_dirty(s, block);
                "memory supplies; fills modified"
            }
            DragonAction::FillSharedOwnerUpdate => {
                for &j in &others {
                    if s.caches[j].state_of(block) == LineState::We {
                        s.caches[j].snoop_downgrade(block);
                    }
                    self.sync_excl(s, j, block);
                }
                s.sm[b] = Some(me);
                self.fill(s, i, block, LineState::Rs);
                self.claim_dirty(s, block);
                "copies updated in place; writer becomes shared-modified owner"
            }
            DragonAction::BroadcastUpdate => {
                s.sm[b] = Some(me);
                self.claim_dirty(s, block);
                "update broadcast; writer becomes shared-modified owner"
            }
            DragonAction::PromoteToModified => {
                if s.sm[b] == Some(me) {
                    s.sm[b] = None;
                }
                if !s.caches[i].promote(block) {
                    self.fill(s, i, block, LineState::We);
                }
                self.claim_dirty(s, block);
                "last copy; promoted to modified"
            }
            DragonAction::PromoteSilently => {
                unreachable!("exclusive write hits never reach the bus")
            }
        };
        self.finish_txn(s, i);
        format!("bus grants P{i}'s {} on {block}; {note}", kind.name())
    }

    // ------------------------------------------------------- deliveries

    /// Routes a message that reached its destination — mirror of
    /// `RingSystem::deliver`.
    fn deliver(&self, s: &mut State, msg: RingMessage) -> String {
        match msg.kind {
            MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade => {
                unreachable!("snoop probes circulate atomically, never via the network")
            }
            MsgKind::DirRead | MsgKind::DirWrite | MsgKind::DirUpgrade => {
                let outcome = self.home_receive(s, msg);
                format!("{msg} arrives ({outcome})")
            }
            MsgKind::DirFwdRead | MsgKind::DirFwdWrite => self.forward_arrived(s, msg),
            MsgKind::DirInval => self.inval_circulates(s, msg),
            MsgKind::DirAck => self.ack_received(s, msg),
            MsgKind::BlockData => self.data_received(s, msg),
            MsgKind::WriteBack => match self.protocol {
                ProtocolKind::Snooping => {
                    s.mem.clear_dirty(msg.block);
                    format!("{msg} arrives; memory clean again")
                }
                ProtocolKind::Directory => {
                    let outcome = self.home_receive(s, msg);
                    format!("{msg} arrives ({outcome})")
                }
                ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => {
                    unreachable!("atomic protocols fold write-backs into the serving step")
                }
            },
            MsgKind::MemUpdate => self.update_received(s, msg),
        }
    }

    /// Sends a reply; local replies (home == requester) deliver immediately,
    /// as the simulator's `enqueue_msg` does.
    fn emit(&self, s: &mut State, msg: RingMessage) {
        if msg.dst == msg.src && !msg.kind.returns_to_source() {
            self.deliver(s, msg);
        } else {
            s.net.push(msg);
        }
    }

    fn data_received(&self, s: &mut State, msg: RingMessage) -> String {
        let i = msg.dst.index();
        let Some(t) = s.txns[i] else {
            return format!("{msg} arrives (stale, dropped)");
        };
        if t.block != msg.block {
            return format!("{msg} arrives (stale, dropped)");
        }
        let note = match t.kind {
            TxnKind::Read => {
                if t.poisoned {
                    "poisoned read completes uncached"
                } else {
                    self.fill(s, i, t.block, LineState::Rs);
                    "read fills read-shared"
                }
            }
            TxnKind::Write | TxnKind::Upgrade => {
                self.fill(s, i, t.block, LineState::We);
                "write fills write-exclusive"
            }
        };
        self.finish_txn(s, i);
        format!("{msg} arrives; {note}")
    }

    fn ack_received(&self, s: &mut State, msg: RingMessage) -> String {
        let i = msg.dst.index();
        let Some(t) = s.txns[i] else {
            return format!("{msg} arrives (stale, dropped)");
        };
        if t.block != msg.block {
            return format!("{msg} arrives (stale, dropped)");
        }
        if !s.caches[i].promote(t.block) {
            // Only reachable under fault injection (see do_circulate).
            self.fill(s, i, t.block, LineState::We);
        }
        self.finish_txn(s, i);
        format!("{msg} arrives; line promoted")
    }

    fn finish_txn(&self, s: &mut State, i: usize) {
        let t = s.txns[i].take().expect("finishing absent txn");
        let fwds = std::mem::take(&mut s.pending_fwds[i]);
        for fwd in fwds {
            if fwd.block == t.block {
                self.serve_forward(s, i, fwd);
            } else {
                s.pending_fwds[i].push(fwd);
            }
        }
    }

    // ------------------------------------------------ directory home side

    fn home_receive(&self, s: &mut State, msg: RingMessage) -> &'static str {
        debug_assert_eq!(self.protocol, ProtocolKind::Directory);
        let block = msg.block;
        if s.dir.try_lock(block) {
            self.home_act(s, msg);
            "served"
        } else {
            s.queue[block.raw() as usize].push_back(msg);
            "queued behind the busy entry"
        }
    }

    fn unlock_and_drain(&self, s: &mut State, block: BlockAddr) {
        s.dir.unlock(block);
        s.active[block.raw() as usize] = None;
        if let Some(next) = s.queue[block.raw() as usize].pop_front() {
            self.home_receive(s, next);
        }
    }

    fn home_act(&self, s: &mut State, req: RingMessage) {
        let block = req.block;
        match req.kind {
            MsgKind::WriteBack => {
                // The buffer entry is the liveness token: a write-back whose
                // entry was reclaimed by the evictor's own re-miss is stale
                // and must not touch the directory (see `RingSystem`).
                let evictor = req.src;
                let live = s.wb_buffer[evictor.index()][block.raw() as usize];
                s.wb_buffer[evictor.index()][block.raw() as usize] = false;
                let entry = s.dir.entry(block);
                if live && entry.owner == Some(evictor) {
                    s.dir.remove_sharer(block, evictor);
                }
                self.unlock_and_drain(s, block);
            }
            MsgKind::DirRead => {
                self.unpoison(s, req.requester, block);
                self.home_read(s, req);
            }
            MsgKind::DirWrite => {
                self.unpoison(s, req.requester, block);
                self.home_write(s, req, false);
            }
            MsgKind::DirUpgrade => {
                self.unpoison(s, req.requester, block);
                let entry = s.dir.entry(block);
                if transitions::upgrade_must_convert(&entry, req.requester) {
                    self.home_write(s, req, true);
                } else {
                    self.home_upgrade(s, req);
                }
            }
            _ => unreachable!("home_act on non-request {:?}", req.kind),
        }
    }

    fn reclaim_own_writeback(&self, s: &mut State, block: BlockAddr, requester: NodeId) {
        let entry = s.dir.entry(block);
        if transitions::must_reclaim_writeback(&entry, requester) {
            debug_assert!(
                self.fault != Fault::None || s.wb_buffer[requester.index()][block.raw() as usize],
                "directory owner misses without a write-back in flight"
            );
            s.dir.remove_sharer(block, requester);
            s.wb_buffer[requester.index()][block.raw() as usize] = false;
        }
    }

    fn home_self_invalidate(
        &self,
        s: &mut State,
        home: NodeId,
        requester: NodeId,
        block: BlockAddr,
    ) {
        if home != requester {
            self.invalidate_at(s, home.index(), block);
            self.poison_pending_read(s, home.index(), block);
        }
    }

    fn home_read(&self, s: &mut State, req: RingMessage) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        self.reclaim_own_writeback(s, block, requester);
        let entry = s.dir.entry(block);
        match guarded::dir_action(&entry, requester, DirRequest::Read, self.fire_counts()) {
            DirAction::ForwardRead { owner } => {
                // Presence recorded at grant time, as in the simulator: the
                // requester can fill and evict before the MemUpdate returns.
                s.dir.add_sharer(block, requester);
                s.active[block.raw() as usize] =
                    Some(Active { req, stage: Stage::AwaitUpdate, converted: false });
                self.emit(
                    s,
                    RingMessage::for_requester(MsgKind::DirFwdRead, block, home, owner, requester),
                );
            }
            DirAction::GrantData => {
                s.dir.add_sharer(block, requester);
                self.emit(
                    s,
                    RingMessage::for_requester(
                        MsgKind::BlockData,
                        block,
                        home,
                        requester,
                        requester,
                    ),
                );
                self.unlock_and_drain(s, block);
            }
            DirAction::ForwardWrite { .. } | DirAction::InvalidateSharers | DirAction::GrantAck => {
                unreachable!("read request dispatched to a write action")
            }
        }
    }

    fn home_write(&self, s: &mut State, req: RingMessage, converted: bool) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        self.reclaim_own_writeback(s, block, requester);
        let entry = s.dir.entry(block);
        match guarded::dir_action(&entry, requester, DirRequest::Write, self.fire_counts()) {
            DirAction::ForwardWrite { owner } => {
                s.active[block.raw() as usize] =
                    Some(Active { req, stage: Stage::AwaitUpdate, converted });
                self.emit(
                    s,
                    RingMessage::for_requester(MsgKind::DirFwdWrite, block, home, owner, requester),
                );
            }
            DirAction::InvalidateSharers => {
                self.home_self_invalidate(s, home, requester, block);
                s.active[block.raw() as usize] =
                    Some(Active { req, stage: Stage::AwaitInval, converted });
                s.net.push(RingMessage::for_requester(
                    MsgKind::DirInval,
                    block,
                    home,
                    home,
                    requester,
                ));
            }
            DirAction::GrantData => {
                self.set_owner(s, block, requester);
                self.emit(
                    s,
                    RingMessage::for_requester(
                        MsgKind::BlockData,
                        block,
                        home,
                        requester,
                        requester,
                    ),
                );
                self.unlock_and_drain(s, block);
            }
            DirAction::ForwardRead { .. } | DirAction::GrantAck => {
                unreachable!("write request dispatched to a read/upgrade action")
            }
        }
    }

    fn home_upgrade(&self, s: &mut State, req: RingMessage) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        let entry = s.dir.entry(block);
        match guarded::dir_action(&entry, requester, DirRequest::Upgrade, self.fire_counts()) {
            DirAction::InvalidateSharers => {
                self.home_self_invalidate(s, home, requester, block);
                s.active[block.raw() as usize] =
                    Some(Active { req, stage: Stage::AwaitInval, converted: false });
                s.net.push(RingMessage::for_requester(
                    MsgKind::DirInval,
                    block,
                    home,
                    home,
                    requester,
                ));
            }
            DirAction::GrantAck => {
                self.set_owner(s, block, requester);
                self.emit(
                    s,
                    RingMessage::for_requester(MsgKind::DirAck, block, home, requester, requester),
                );
                self.unlock_and_drain(s, block);
            }
            DirAction::ForwardRead { .. }
            | DirAction::ForwardWrite { .. }
            | DirAction::GrantData => {
                unreachable!("well-formed upgrade dispatched to a miss action")
            }
        }
    }

    /// The multicast invalidation circulates the full ring and returns to
    /// the home — atomic, like snoop probes (see module docs).
    fn inval_circulates(&self, s: &mut State, msg: RingMessage) -> String {
        let block = msg.block;
        let home = msg.src;
        for j in 0..self.nodes {
            if j == msg.requester.index() || j == home.index() {
                continue; // requester is exempt; the home invalidated at send
            }
            match guarded::snooper_action(
                s.caches[j].state_of(block),
                MsgKind::DirInval,
                self.fire_counts(),
            ) {
                SnoopAction::Invalidate => self.invalidate_at(s, j, block),
                SnoopAction::Ignore => {}
                SnoopAction::SupplyInvalidate | SnoopAction::SupplyDowngrade => {
                    unreachable!("multicast invalidation never asks a cache for data")
                }
            }
            self.poison_pending_read(s, j, block);
        }
        // inval_returned
        let act = s.active[block.raw() as usize].expect("inval context");
        debug_assert_eq!(act.stage, Stage::AwaitInval);
        let requester = act.req.requester;
        self.set_owner(s, block, requester);
        let reply_kind = match act.req.kind {
            MsgKind::DirUpgrade if !act.converted => MsgKind::DirAck,
            _ => MsgKind::BlockData,
        };
        self.emit(s, RingMessage::for_requester(reply_kind, block, home, requester, requester));
        self.unlock_and_drain(s, block);
        format!("{msg} circulates and returns; sharers invalidated, {requester} becomes owner")
    }

    fn forward_arrived(&self, s: &mut State, msg: RingMessage) -> String {
        let d = msg.dst.index();
        let has_txn = s.txns[d].as_ref().is_some_and(|t| t.block == msg.block);
        let buffered = s.wb_buffer[d][msg.block.raw() as usize];
        // A forward can always be served from the write-back buffer, even
        // while the target's own re-miss on the block is in flight — parking
        // it would deadlock the home against the target's queued request
        // (found by this checker; `ParkBusyForwards` reinstates the bug).
        let park = match self.fault {
            Fault::ParkBusyForwards => has_txn,
            Fault::None | Fault::SkipInvalidate | Fault::ForgetOwner | Fault::BreakListLink => {
                has_txn && !buffered
            }
        };
        if park {
            s.pending_fwds[d].push(msg);
            format!("{msg} arrives; parked behind the target's own fill")
        } else {
            self.serve_forward(s, d, msg);
            format!("{msg} arrives and is served")
        }
    }

    fn serve_forward(&self, s: &mut State, d: usize, fwd: RingMessage) {
        let block = fwd.block;
        let home = fwd.src;
        let me = NodeId::new(d);
        let state = s.caches[d].state_of(block);
        debug_assert!(
            state == LineState::We || s.wb_buffer[d][block.raw() as usize],
            "forward to a node without the data: {fwd} (state {state:?})"
        );
        if state != LineState::We {
            // Serving from the write-back buffer consumes the entry, killing
            // the still-circulating WriteBack (see `RingSystem`).
            s.wb_buffer[d][block.raw() as usize] = false;
        }
        let retained = match fwd.kind {
            MsgKind::DirFwdRead => {
                if state == LineState::We {
                    s.caches[d].snoop_downgrade(block);
                    true
                } else {
                    false
                }
            }
            MsgKind::DirFwdWrite => {
                if state == LineState::We {
                    s.caches[d].snoop_invalidate(block);
                }
                false
            }
            _ => unreachable!("serve_forward on non-forward"),
        };
        self.emit(
            s,
            RingMessage::for_requester(MsgKind::BlockData, block, me, fwd.requester, fwd.requester)
                .with_from_dirty(true),
        );
        self.emit(s, RingMessage::new(MsgKind::MemUpdate, block, me, home).with_retained(retained));
    }

    fn update_received(&self, s: &mut State, msg: RingMessage) -> String {
        let block = msg.block;
        let act = s.active[block.raw() as usize].expect("update context");
        debug_assert_eq!(act.stage, Stage::AwaitUpdate);
        let requester = act.req.requester;
        let d = msg.src;
        match act.req.kind {
            MsgKind::DirRead => {
                // The requester's presence bit was set at forward time.
                s.dir.clear_owner(block);
                if !msg.retained {
                    s.dir.remove_sharer(block, d);
                }
            }
            _ => self.set_owner(s, block, requester),
        }
        self.unlock_and_drain(s, block);
        format!("{msg} arrives; directory refreshed, entry unlocked")
    }

    // --------------------------------------------------------- encoding

    /// Canonical byte encoding of a state (scheduler-order independent).
    pub(crate) fn encode(&self, s: &State) -> Vec<u8> {
        let identity_nodes: [usize; 8] = core::array::from_fn(|i| i);
        let identity_blocks: [usize; 4] = core::array::from_fn(|b| b);
        let mut out = Vec::with_capacity(8 * self.nodes + 8 * self.blocks + 8 * s.net.len());
        self.encode_under(
            s,
            &identity_nodes[..self.nodes],
            &identity_blocks[..self.blocks],
            &mut out,
        );
        out
    }

    /// Byte encoding of the state relabelled by a symmetry-group element:
    /// node `i` becomes `node_map[i]` and block `b` becomes `block_map[b]`.
    /// Identity maps reproduce [`Model::encode`] exactly (that function
    /// delegates here); `crate::sym::Symmetry` minimises this over the
    /// protocol's symmetry group to pick the orbit representative.
    pub(crate) fn encode_under(
        &self,
        s: &State,
        node_map: &[usize],
        block_map: &[usize],
        out: &mut Vec<u8>,
    ) {
        out.clear();
        // Who lands in each relabelled slot (bounds are validate()'s 8/4).
        let mut inv_node = [0usize; 8];
        for (old, &new) in node_map.iter().enumerate() {
            inv_node[new] = old;
        }
        let mut inv_block = [0usize; 4];
        for (old, &new) in block_map.iter().enumerate() {
            inv_block[new] = old;
        }
        for &old_i in &inv_node[..self.nodes] {
            let cache = &s.caches[old_i];
            for &old_b in &inv_block[..self.blocks] {
                out.push(state_code(cache.state_of(BlockAddr::new(old_b as u64))));
            }
        }
        for &old_b in &inv_block[..self.blocks] {
            let block = BlockAddr::new(old_b as u64);
            out.push(u8::from(s.mem.is_dirty(block)));
            let entry = s.dir.entry(block);
            let mut sharers = 0u8;
            for (j, &new_j) in node_map.iter().enumerate() {
                if entry.sharers & (1 << j) != 0 {
                    sharers |= 1 << new_j;
                }
            }
            out.push(sharers);
            out.push(entry.owner.map_or(0xFF, |o| node_map[o.index()] as u8));
            out.push(u8::from(s.dir.is_locked(block)));
        }
        for &old_i in &inv_node[..self.nodes] {
            match &s.txns[old_i] {
                None => out.push(0xFF),
                Some(t) => {
                    out.push(txn_code(t));
                    out.push(block_map[t.block.raw() as usize] as u8);
                }
            }
        }
        for &old_i in &inv_node[..self.nodes] {
            let wb = &s.wb_buffer[old_i];
            let mut bits = 0u8;
            for (shift, &old_b) in inv_block[..self.blocks].iter().enumerate() {
                bits |= u8::from(wb[old_b]) << shift;
            }
            out.push(bits);
        }
        for &old_b in &inv_block[..self.blocks] {
            match &s.active[old_b] {
                None => out.push(0xFF),
                Some(a) => {
                    let stage = match a.stage {
                        Stage::AwaitInval => 0u8,
                        Stage::AwaitUpdate => 1,
                    };
                    out.push(stage | (u8::from(a.converted) << 1));
                    encode_msg_under(out, &a.req, node_map, block_map);
                }
            }
        }
        for &old_b in &inv_block[..self.blocks] {
            let q = &s.queue[old_b];
            out.push(q.len() as u8);
            for m in q {
                encode_msg_under(out, m, node_map, block_map);
            }
        }
        for &old_i in &inv_node[..self.nodes] {
            let fwds = &s.pending_fwds[old_i];
            let mut sorted: Vec<&RingMessage> = fwds.iter().collect();
            sorted.sort_by_key(|m| (block_map[m.block.raw() as usize], kind_code(m.kind)));
            out.push(sorted.len() as u8);
            for m in sorted {
                encode_msg_under(out, m, node_map, block_map);
            }
        }
        // Extension state for the atomic protocols. Constant defaults for
        // the message-passing protocols, so their encodings stay unique.
        for &old_b in &inv_block[..self.blocks] {
            let e = &s.sci[old_b];
            out.push(e.list.len() as u8 | (u8::from(e.dirty) << 7));
            for p in &e.list {
                out.push(node_map[p.index()] as u8);
            }
        }
        for &old_i in &inv_node[..self.nodes] {
            let mut bits = 0u8;
            for (shift, &old_b) in inv_block[..self.blocks].iter().enumerate() {
                bits |= u8::from(s.excl[old_i][old_b]) << shift;
            }
            out.push(bits);
        }
        for &old_b in &inv_block[..self.blocks] {
            out.push(s.sm[old_b].map_or(0xFF, |o| node_map[o.index()] as u8));
        }
        // Lanes are mutually unordered: stable-sort by relabelled lane,
        // preserving FIFO order within each lane (lanes map to lanes under
        // any group element), so equivalent states encode identically.
        let mut net: Vec<&RingMessage> = s.net.iter().collect();
        net.sort_by_key(|m| {
            let (class, block, src, dst) = lane(m);
            (
                class,
                block_map[block as usize] as u64,
                node_map[src as usize] as u16,
                node_map[dst as usize] as u16,
            )
        });
        out.push(net.len() as u8);
        for m in net {
            encode_msg_under(out, m, node_map, block_map);
        }
    }

    /// Rebuilds a state from its encoding (inverse of [`Model::encode`] up
    /// to cache statistics, which the model never reads).
    pub(crate) fn decode(&self, bytes: &[u8]) -> State {
        let mut s = self.initial();
        let mut pos = 0usize;
        let take = |pos: &mut usize| {
            let b = bytes[*pos];
            *pos += 1;
            b
        };
        for i in 0..self.nodes {
            for b in 0..self.blocks {
                let st = code_state(take(&mut pos));
                if st.is_valid() {
                    s.caches[i].fill(BlockAddr::new(b as u64), st);
                }
            }
        }
        for b in 0..self.blocks {
            let block = BlockAddr::new(b as u64);
            if take(&mut pos) != 0 {
                s.mem.set_dirty(block);
            }
            let sharers = take(&mut pos);
            let owner = take(&mut pos);
            if owner != 0xFF {
                s.dir.set_owner(block, NodeId::new(owner as usize));
            }
            for j in 0..self.nodes {
                if sharers & (1 << j) != 0 && owner != j as u8 {
                    s.dir.add_sharer(block, NodeId::new(j));
                }
            }
            if take(&mut pos) != 0 {
                let locked = s.dir.try_lock(block);
                debug_assert!(locked);
            }
        }
        for i in 0..self.nodes {
            let flags = take(&mut pos);
            if flags == 0xFF {
                continue;
            }
            let block = BlockAddr::new(u64::from(take(&mut pos)));
            s.txns[i] = Some(Txn {
                block,
                kind: match flags & 0b11 {
                    0 => TxnKind::Read,
                    1 => TxnKind::Write,
                    _ => TxnKind::Upgrade,
                },
                phase: match (flags >> 2) & 0b11 {
                    0 => Phase::NeedProbe,
                    1 => Phase::WaitLocal,
                    _ => Phase::WaitRemote,
                },
                poisoned: flags & (1 << 4) != 0,
                self_owner: flags & (1 << 5) != 0,
            });
        }
        for i in 0..self.nodes {
            let bits = take(&mut pos);
            for b in 0..self.blocks {
                s.wb_buffer[i][b] = bits & (1 << b) != 0;
            }
        }
        for b in 0..self.blocks {
            let flags = take(&mut pos);
            if flags == 0xFF {
                continue;
            }
            let req = decode_msg(bytes, &mut pos);
            s.active[b] = Some(Active {
                req,
                stage: if flags & 1 == 0 { Stage::AwaitInval } else { Stage::AwaitUpdate },
                converted: flags & 2 != 0,
            });
        }
        for b in 0..self.blocks {
            let len = take(&mut pos);
            for _ in 0..len {
                s.queue[b].push_back(decode_msg(bytes, &mut pos));
            }
        }
        for i in 0..self.nodes {
            let len = take(&mut pos);
            for _ in 0..len {
                s.pending_fwds[i].push(decode_msg(bytes, &mut pos));
            }
        }
        for b in 0..self.blocks {
            let header = take(&mut pos);
            s.sci[b].dirty = header & 0x80 != 0;
            for _ in 0..(header & 0x7F) {
                s.sci[b].list.push(NodeId::new(take(&mut pos) as usize));
            }
        }
        for i in 0..self.nodes {
            let bits = take(&mut pos);
            for b in 0..self.blocks {
                s.excl[i][b] = bits & (1 << b) != 0;
            }
        }
        for b in 0..self.blocks {
            let owner = take(&mut pos);
            if owner != 0xFF {
                s.sm[b] = Some(NodeId::new(owner as usize));
            }
        }
        let len = take(&mut pos);
        for _ in 0..len {
            s.net.push(decode_msg(bytes, &mut pos));
        }
        debug_assert_eq!(pos, bytes.len(), "trailing bytes in state encoding");
        s
    }

    /// Multi-line summary of a state, appended to counterexample traces.
    pub(crate) fn render(&self, s: &State) -> Vec<String> {
        let mut lines = Vec::new();
        for b in 0..self.blocks {
            let block = BlockAddr::new(b as u64);
            let states: Vec<String> = (0..self.nodes)
                .map(|i| format!("P{i}:{:?}", s.caches[i].state_of(block)))
                .collect();
            let home_side = match self.protocol {
                ProtocolKind::Snooping => {
                    format!("memory {}", if s.mem.is_dirty(block) { "dirty" } else { "clean" })
                }
                ProtocolKind::Directory => {
                    let e = s.dir.entry(block);
                    format!(
                        "dir sharers {:#b} owner {} {}",
                        e.sharers,
                        e.owner.map_or_else(|| "-".to_owned(), |o| o.to_string()),
                        if s.dir.is_locked(block) { "[locked]" } else { "" }
                    )
                }
                ProtocolKind::Sci => {
                    let e = &s.sci[b];
                    format!(
                        "sci list [{}]{}",
                        e.list.iter().map(ToString::to_string).collect::<Vec<_>>().join(" -> "),
                        if e.dirty { " dirty" } else { "" }
                    )
                }
                ProtocolKind::Mesi | ProtocolKind::Dragon => {
                    let excl: Vec<String> = (0..self.nodes)
                        .filter(|&j| s.excl[j][b])
                        .map(|j| format!("P{j}:E"))
                        .collect();
                    format!(
                        "memory {}{}{}",
                        if s.mem.is_dirty(block) { "dirty" } else { "clean" },
                        if excl.is_empty() {
                            String::new()
                        } else {
                            format!(" {}", excl.join(" "))
                        },
                        s.sm[b].map_or_else(String::new, |o| format!(" Sm:{o}")),
                    )
                }
            };
            lines.push(format!(
                "  {block} @home {}: {} | {home_side}",
                self.home_of(block),
                states.join(" ")
            ));
        }
        for (i, t) in s.txns.iter().enumerate() {
            if let Some(t) = t {
                lines.push(format!(
                    "  P{i} txn: {} on {} ({:?}{}{})",
                    t.kind.name(),
                    t.block,
                    t.phase,
                    if t.poisoned { ", poisoned" } else { "" },
                    if t.self_owner { ", self-owner" } else { "" },
                ));
            }
        }
        for m in &s.net {
            lines.push(format!("  in flight: {m}"));
        }
        for (b, q) in s.queue.iter().enumerate() {
            for m in q {
                lines.push(format!("  queued at home of B{b:#x}: {m}"));
            }
        }
        for (i, fwds) in s.pending_fwds.iter().enumerate() {
            for m in fwds {
                lines.push(format!("  parked at P{i}: {m}"));
            }
        }
        lines
    }
}
