//! Symmetry reduction: orbit canonicalization of explored states.
//!
//! Both protocols are symmetric under relabelling of *structurally
//! equivalent* resources, and the checker's state space is dominated by
//! such relabellings. The sound symmetry group for this model is the set
//! of pairs (π, σ) — π a node permutation, σ a block permutation — with
//! π(home(b)) = home(σ(b)) for every block `b` (home(b) = b mod nodes):
//!
//! * **Free nodes** (home to no block) are fully interchangeable: every
//!   transition treats them uniformly, so π may permute them arbitrarily.
//! * **Blocks** may be permuted when π maps homes consistently: two blocks
//!   sharing a home swap freely; blocks with different homes swap only
//!   together with their homes (which constrains π on the home set).
//! * Under [`Fault::SkipInvalidate`] node `nodes-1` is special-cased by
//!   the mutation, so the group is shrunk to elements fixing it.
//!
//! The checker stores only one representative per orbit: the
//! lexicographically smallest [`Model::encode_under`] image over the
//! group. Enumerating the whole group per state would cost up to
//! |σ| · free! encodings, so [`Symmetry::canonical_encode`] instead sorts
//! the free nodes by an invariant per-node *signature* and only enumerates
//! permutations inside signature-tie groups. The signature abstracts
//! concrete free-node indices out of message endpoints (self / home /
//! other-free), which makes it invariant under free-node relabelling —
//! hence `canonical(π(s)) == canonical(s)`, the property
//! `canonicalization_is_invariant` locks in. Tie groups that no in-flight
//! message references encode identically in any order and are skipped;
//! a state whose referenced tie groups still explode past
//! [`ENUMERATION_CAP`] falls back to the signature order, which is still a
//! *sound* canonicalization (one deterministic orbit member — merely a
//! possibly-suboptimal one that can split an orbit across
//! representatives), just not the invariant optimum. The fallback is
//! unreachable below 8 free nodes in a tie.

use ringsim_proto::RingMessage;
use ringsim_types::BlockAddr;

use crate::model::{Model, State};
use crate::Fault;

/// Above this many candidate free-node orders per block permutation the
/// canonicalizer stops enumerating ties (7! — only hit when ≥ 8 mutually
/// tied free nodes are referenced by messages, impossible at `nodes <= 8`
/// with a home node present).
const ENUMERATION_CAP: u64 = 5040;

/// One block permutation together with the node relabelling it forces on
/// the home nodes.
#[derive(Debug)]
struct Sigma {
    /// `block_map[old] = new`.
    block_map: Vec<usize>,
    /// `node_map` template: home (and pinned) nodes filled in, free slots
    /// `usize::MAX` until a free-node order is chosen.
    node_base: Vec<usize>,
}

/// The symmetry group of one checker configuration, ready to canonicalize
/// states.
#[derive(Debug)]
pub(crate) struct Symmetry {
    nodes: usize,
    sigmas: Vec<Sigma>,
    /// Permutable node indices, ascending. These are both the nodes being
    /// relabelled and the slots they land in.
    free: Vec<usize>,
}

impl Symmetry {
    pub(crate) fn new(model: &Model) -> Self {
        let nodes = model.nodes;
        let blocks = model.blocks;
        let home_of = |b: usize| b % nodes;
        let is_home = |i: usize| (0..blocks).any(|b| home_of(b) == i);
        // SkipInvalidate special-cases the highest-index node, breaking its
        // interchangeability with every other node.
        let pinned = |i: usize| model.fault == Fault::SkipInvalidate && i == nodes - 1;
        let free: Vec<usize> = (0..nodes).filter(|&i| !is_home(i) && !pinned(i)).collect();

        let mut sigmas = Vec::new();
        let mut block_map: Vec<usize> = (0..blocks).collect();
        permutations(&mut block_map, 0, &mut |block_map| {
            // The permutation is valid iff it induces a well-defined,
            // injective relabelling of the home nodes (which then must not
            // move a pinned home).
            let mut home_map = [usize::MAX; 8];
            for (b, &new_b) in block_map.iter().enumerate() {
                let (from, to) = (home_of(b), home_of(new_b));
                if home_map[from] != usize::MAX && home_map[from] != to {
                    return;
                }
                home_map[from] = to;
            }
            let mut seen = [false; 8];
            for i in 0..nodes {
                if home_map[i] == usize::MAX {
                    continue;
                }
                if seen[home_map[i]] || (pinned(i) && home_map[i] != i) {
                    return;
                }
                seen[home_map[i]] = true;
            }
            let node_base: Vec<usize> = (0..nodes)
                .map(|i| {
                    if home_map[i] != usize::MAX {
                        home_map[i]
                    } else if pinned(i) {
                        i
                    } else {
                        usize::MAX
                    }
                })
                .collect();
            sigmas.push(Sigma { block_map: block_map.to_vec(), node_base });
        });
        Symmetry { nodes, sigmas, free }
    }

    /// The group's order — the maximum factor by which the visited set can
    /// shrink (reported by `--stats` as the theoretical bound).
    pub(crate) fn group_order(&self) -> u64 {
        let free_fact: u64 = (1..=self.free.len() as u64).product();
        self.sigmas.len() as u64 * free_fact
    }

    /// Whether the group is the identity alone (canonicalization is a
    /// no-op and the plain encoding can be used).
    pub(crate) fn is_trivial(&self) -> bool {
        self.sigmas.len() == 1 && self.free.len() <= 1
    }

    /// The canonical (orbit-representative) encoding of `s`: the minimum
    /// [`Model::encode_under`] image over the candidate group elements.
    pub(crate) fn canonical_encode(&self, model: &Model, s: &State) -> Vec<u8> {
        if self.is_trivial() {
            return model.encode(s);
        }
        // Nodes referenced by any in-flight message: only those can make
        // signature-tied free nodes encode differently.
        let mut referenced = [false; 8];
        {
            let mut mark = |m: &RingMessage| {
                referenced[m.src.index()] = true;
                referenced[m.dst.index()] = true;
                referenced[m.requester.index()] = true;
            };
            for m in &s.net {
                mark(m);
            }
            for q in &s.queue {
                for m in q {
                    mark(m);
                }
            }
            for a in s.active.iter().flatten() {
                mark(&a.req);
            }
            for row in &s.pending_fwds {
                for m in row {
                    mark(m);
                }
            }
        }

        let mut best: Option<Vec<u8>> = None;
        let mut buf = Vec::new();
        let mut node_map = vec![0usize; self.nodes];
        for sigma in &self.sigmas {
            let sigs: Vec<Vec<u8>> =
                self.free.iter().map(|&i| self.signature(model, s, i, sigma)).collect();
            // Rank the free nodes by signature (old index breaks exact
            // ties deterministically when enumeration is skipped).
            let mut order: Vec<usize> = (0..self.free.len()).collect();
            order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]).then(a.cmp(&b)));

            // Tie groups that some message references must be enumerated;
            // unreferenced ties encode identically in any order.
            let mut groups: Vec<(usize, usize)> = Vec::new(); // [start, end)
            let mut candidates = 1u64;
            let mut start = 0;
            while start < order.len() {
                let mut end = start + 1;
                while end < order.len() && sigs[order[end]] == sigs[order[start]] {
                    end += 1;
                }
                let needs_enum =
                    end - start > 1 && order[start..end].iter().any(|&k| referenced[self.free[k]]);
                if needs_enum {
                    candidates =
                        candidates.saturating_mul((1..=(end - start) as u64).product::<u64>());
                    groups.push((start, end));
                }
                start = end;
            }
            if candidates > ENUMERATION_CAP {
                groups.clear(); // fall back to the plain signature order
            }

            let mut emit = |order: &[usize]| {
                node_map.copy_from_slice(&sigma.node_base);
                for (slot, &rank) in order.iter().enumerate() {
                    node_map[self.free[rank]] = self.free[slot];
                }
                model.encode_under(s, &node_map, &sigma.block_map, &mut buf);
                if best.as_ref().is_none_or(|b| buf < *b) {
                    best = Some(buf.clone());
                }
            };
            for_each_tie_order(&mut order, &groups, 0, &mut emit);
        }
        best.expect("symmetry group has at least the identity")
    }

    /// A relabelling-invariant signature of free node `i` under `sigma`:
    /// everything the encoding says about the node, with concrete free-node
    /// indices abstracted out of message endpoints. Signature-equal nodes
    /// are interchangeable up to the cross-references between them.
    fn signature(&self, model: &Model, s: &State, i: usize, sigma: &Sigma) -> Vec<u8> {
        let blocks = model.blocks;
        let bm = &sigma.block_map;
        // Endpoint abstraction: self / mapped home (concrete) / other-free.
        let abs = |j: usize| -> u8 {
            if j == i {
                0xFD
            } else if sigma.node_base[j] != usize::MAX {
                sigma.node_base[j] as u8
            } else {
                0xFE
            }
        };
        let mut sig = Vec::with_capacity(4 * blocks + 2 + 8 * s.net.len());
        // Per-block view, in relabelled block order.
        let mut per_block: Vec<(usize, [u8; 4])> = (0..blocks)
            .map(|b| {
                let block = BlockAddr::new(b as u64);
                let entry = s.dir.entry(block);
                let me = ringsim_types::NodeId::new(i);
                (
                    bm[b],
                    [
                        crate::model::state_code(s.caches[i].state_of(block)),
                        u8::from(entry.sharers & (1 << i) != 0),
                        u8::from(entry.owner == Some(me)),
                        u8::from(s.wb_buffer[i][b]),
                    ],
                )
            })
            .collect();
        per_block.sort_unstable_by_key(|&(new_b, _)| new_b);
        for (_, bytes) in per_block {
            sig.extend_from_slice(&bytes);
        }
        match &s.txns[i] {
            None => sig.push(0xFF),
            Some(t) => {
                sig.push(crate::model::txn_code(t));
                sig.push(bm[t.block.raw() as usize] as u8);
            }
        }
        // Every message that references the node, abstracted and sorted.
        let mut refs: Vec<[u8; 8]> = Vec::new();
        let mut push_ref = |container: u8, extra: u8, m: &RingMessage| {
            if m.src.index() == i || m.dst.index() == i || m.requester.index() == i {
                refs.push([
                    container,
                    extra,
                    crate::model::kind_code(m.kind),
                    bm[m.block.raw() as usize] as u8,
                    abs(m.src.index()),
                    abs(m.dst.index()),
                    abs(m.requester.index()),
                    u8::from(m.retained) | (u8::from(m.from_dirty) << 1),
                ]);
            }
        };
        for m in &s.net {
            push_ref(0, 0, m);
        }
        for (b, q) in s.queue.iter().enumerate() {
            for (pos, m) in q.iter().enumerate() {
                push_ref(1, (bm[b] << 4 | pos.min(15)) as u8, m);
            }
        }
        for (b, a) in s.active.iter().enumerate() {
            if let Some(a) = a {
                push_ref(2, bm[b] as u8, &a.req);
            }
        }
        for (j, row) in s.pending_fwds.iter().enumerate() {
            for m in row {
                push_ref(3, abs(j), m);
            }
        }
        refs.sort_unstable();
        sig.push(refs.len() as u8);
        for r in refs {
            sig.extend_from_slice(&r);
        }
        sig
    }
}

/// Calls `f` with every permutation of `items[at..]` (Heap-style recursive
/// enumeration; `items` is restored on return).
fn permutations<T: Copy>(items: &mut [T], at: usize, f: &mut impl FnMut(&[T])) {
    if at + 1 >= items.len() {
        f(items);
        return;
    }
    for k in at..items.len() {
        items.swap(at, k);
        permutations(items, at + 1, f);
        items.swap(at, k);
    }
}

/// Calls `f` with `order` under every combination of permutations of the
/// tie-group ranges `groups[from..]` (each `(start, end)` half-open).
fn for_each_tie_order(
    order: &mut [usize],
    groups: &[(usize, usize)],
    from: usize,
    f: &mut impl FnMut(&[usize]),
) {
    match groups.get(from) {
        None => f(order),
        Some(&(start, end)) => {
            // Permute the group in place, recursing into later groups for
            // each arrangement.
            fn rec(
                order: &mut [usize],
                end: usize,
                at: usize,
                groups: &[(usize, usize)],
                from: usize,
                f: &mut impl FnMut(&[usize]),
            ) {
                if at + 1 >= end {
                    for_each_tie_order(order, groups, from + 1, f);
                    return;
                }
                for k in at..end {
                    order.swap(at, k);
                    rec(order, end, at + 1, groups, from, f);
                    order.swap(at, k);
                }
            }
            rec(order, end, start, groups, from, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use proptest::TestRng;
    use ringsim_proto::ProtocolKind;

    use super::Symmetry;
    use crate::model::Model;
    use crate::Fault;

    /// A pseudo-random reachable state: `steps` uniformly-drawn moves from
    /// the initial state. Reachable states are the only ones the checker
    /// ever canonicalizes, so properties are quantified over walks rather
    /// than arbitrary byte soup.
    fn walk(model: &Model, seed: u64, steps: usize) -> crate::model::State {
        let mut rng = TestRng::new(seed);
        let mut s = model.initial();
        for _ in 0..steps {
            let moves = model.enumerate(&s);
            if moves.is_empty() {
                break;
            }
            let mv = moves[rng.below(moves.len() as u64) as usize];
            model.apply(&mut s, mv);
        }
        s
    }

    /// A uniformly-drawn group element as an `(node_map, block_map)` pair:
    /// one of the precomputed block permutations plus a random order of the
    /// free nodes.
    fn random_element(sym: &Symmetry, rng: &mut TestRng) -> (Vec<usize>, Vec<usize>) {
        let sigma = &sym.sigmas[rng.below(sym.sigmas.len() as u64) as usize];
        let mut node_map = sigma.node_base.clone();
        // Fisher–Yates over the free slots.
        let mut slots = sym.free.clone();
        for k in (1..slots.len()).rev() {
            slots.swap(k, rng.below(k as u64 + 1) as usize);
        }
        for (&node, &slot) in sym.free.iter().zip(&slots) {
            node_map[node] = slot;
        }
        (node_map, sigma.block_map.clone())
    }

    fn model_of(directory: bool) -> Model {
        let protocol = if directory { ProtocolKind::Directory } else { ProtocolKind::Snooping };
        // 5 nodes / 2 blocks: 3 free nodes and (with both homes distinct)
        // a non-trivial block group is exercised at 4n/2b below.
        Model::new(protocol, 5, 2, Fault::None, true)
    }

    proptest! {
        /// `canonical` is idempotent: canonicalizing the decoded
        /// representative returns the representative itself.
        #[test]
        fn canonicalization_is_idempotent(
            seed in any::<u64>(),
            steps in 0usize..48,
            directory in any::<bool>(),
        ) {
            let model = model_of(directory);
            let sym = Symmetry::new(&model);
            let s = walk(&model, seed, steps);
            let canon = sym.canonical_encode(&model, &s);
            let rep = model.decode(&canon);
            prop_assert_eq!(
                sym.canonical_encode(&model, &rep),
                canon,
                "canonical form must be a fixed point"
            );
        }

        /// `canonical(g · s) == canonical(s)` for every group element `g`:
        /// relabelling a state never changes its orbit representative, so
        /// symmetry reduction can only merge true orbit members, never
        /// split them (splitting would silently prune reachable states).
        #[test]
        fn canonicalization_is_invariant(
            seed in any::<u64>(),
            perm_seed in any::<u64>(),
            steps in 0usize..48,
            directory in any::<bool>(),
        ) {
            let model = model_of(directory);
            let sym = Symmetry::new(&model);
            let s = walk(&model, seed, steps);
            let mut rng = TestRng::new(perm_seed);
            let (node_map, block_map) = random_element(&sym, &mut rng);
            let mut permuted = Vec::new();
            model.encode_under(&s, &node_map, &block_map, &mut permuted);
            let g_s = model.decode(&permuted);
            prop_assert_eq!(
                sym.canonical_encode(&model, &g_s),
                sym.canonical_encode(&model, &s),
                "orbit members must share one representative \
                 (node_map {:?}, block_map {:?})",
                node_map,
                block_map
            );
        }

        /// Same invariance on a 4n/2b configuration, where blocks 0 and 1
        /// have different homes and block swaps drag the homes with them.
        #[test]
        fn canonicalization_is_invariant_with_block_swaps(
            seed in any::<u64>(),
            perm_seed in any::<u64>(),
            steps in 0usize..48,
            directory in any::<bool>(),
        ) {
            let protocol =
                if directory { ProtocolKind::Directory } else { ProtocolKind::Snooping };
            let model = Model::new(protocol, 4, 2, Fault::None, true);
            let sym = Symmetry::new(&model);
            prop_assert!(sym.sigmas.len() > 1, "block swap must be in the group");
            let s = walk(&model, seed, steps);
            let mut rng = TestRng::new(perm_seed);
            let (node_map, block_map) = random_element(&sym, &mut rng);
            let mut permuted = Vec::new();
            model.encode_under(&s, &node_map, &block_map, &mut permuted);
            let g_s = model.decode(&permuted);
            prop_assert_eq!(
                sym.canonical_encode(&model, &g_s),
                sym.canonical_encode(&model, &s)
            );
        }
    }
}
