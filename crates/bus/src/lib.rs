//! The split-transaction shared-bus interconnect (paper §4.3).
//!
//! The paper's baseline is a FutureBus+-like 64-bit split-transaction bus
//! clocked at 50 or 100 MHz, with a 3-state write-invalidate snooping
//! protocol and the shared memory partitioned among the processing nodes. A
//! remote miss needs a minimum of **six bus cycles** — a 2-cycle
//! request/address phase and a 4-cycle response phase (header + two 8-byte
//! data beats + turnaround for a 16-byte block) — excluding arbitration and
//! the 140 ns fetch, exactly as the paper states.
//!
//! [`Bus`] models the shared medium as a FIFO-arbitrated exclusive
//! resource: every phase reserves the bus for a number of cycles, grants
//! are back-to-back in request order, and the busy time yields the bus
//! utilisation metric. The coherence semantics that ride on it live in
//! `ringsim-core`'s bus system simulator.
//!
//! # Examples
//!
//! ```
//! use ringsim_bus::{Bus, BusConfig};
//! use ringsim_types::Time;
//!
//! let cfg = BusConfig::bus_100mhz(16);
//! assert_eq!(cfg.min_remote_miss_cycles(), 6);
//! let mut bus = Bus::new(cfg).unwrap();
//! let (start, end) = bus.acquire(Time::ZERO, cfg.request_cycles);
//! assert_eq!(start, Time::ZERO);
//! assert_eq!(end, Time::from_ns(20)); // 2 cycles at 10 ns
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use ringsim_types::{ConfigError, Time};

/// Physical and structural parameters of the split-transaction bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Number of processing nodes attached.
    pub nodes: usize,
    /// Bus clock period (20 ns at 50 MHz, 10 ns at 100 MHz).
    pub clock_period: Time,
    /// Data path width in bytes (8 for the paper's 64-bit buses).
    pub width_bytes: u64,
    /// Cache block size in bytes.
    pub block_bytes: u64,
    /// Bus cycles of the request (address/snoop) phase.
    pub request_cycles: u64,
    /// Bus cycles of response-phase overhead (header/turnaround) on top of
    /// the data beats.
    pub response_overhead_cycles: u64,
    /// Bus cycles of an address-only invalidation transaction.
    pub inval_cycles: u64,
}

impl BusConfig {
    /// The paper's 50 MHz 64-bit split-transaction bus.
    #[must_use]
    pub fn bus_50mhz(nodes: usize) -> Self {
        Self {
            nodes,
            clock_period: Time::from_ns(20),
            width_bytes: 8,
            block_bytes: 16,
            request_cycles: 2,
            response_overhead_cycles: 2,
            inval_cycles: 2,
        }
    }

    /// The paper's 100 MHz 64-bit split-transaction bus.
    #[must_use]
    pub fn bus_100mhz(nodes: usize) -> Self {
        Self { clock_period: Time::from_ns(10), ..Self::bus_50mhz(nodes) }
    }

    /// A bus with an arbitrary clock period (used by the Table 4 match
    /// solver).
    #[must_use]
    pub fn with_period(mut self, period: Time) -> Self {
        self.clock_period = period;
        self
    }

    /// Data beats needed to move one cache block.
    #[must_use]
    pub fn data_cycles(&self) -> u64 {
        self.block_bytes.div_ceil(self.width_bytes)
    }

    /// Bus cycles of a response phase (overhead + data beats).
    #[must_use]
    pub fn response_cycles(&self) -> u64 {
        self.response_overhead_cycles + self.data_cycles()
    }

    /// Minimum bus cycles to satisfy a remote miss, excluding arbitration
    /// and the memory fetch — the paper's "minimum of six".
    #[must_use]
    pub fn min_remote_miss_cycles(&self) -> u64 {
        self.request_cycles + self.response_cycles()
    }

    /// Duration of `cycles` bus cycles.
    #[must_use]
    pub fn cycles_time(&self, cycles: u64) -> Time {
        self.clock_period * cycles
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 2 {
            return Err(ConfigError::new("nodes", "need at least 2 nodes"));
        }
        if self.clock_period.is_zero() {
            return Err(ConfigError::new("clock_period", "must be non-zero"));
        }
        if self.width_bytes == 0 || !self.width_bytes.is_power_of_two() {
            return Err(ConfigError::new("width_bytes", "must be a non-zero power of two"));
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block_bytes", "must be a non-zero power of two"));
        }
        if self.request_cycles == 0 || self.inval_cycles == 0 {
            return Err(ConfigError::new("request_cycles", "phases must be non-zero"));
        }
        Ok(())
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self::bus_100mhz(16)
    }
}

/// Occupancy counters of the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Total time the bus was granted.
    pub busy: Time,
    /// Time granted to request/invalidation (address) phases.
    pub address_busy: Time,
    /// Time granted to response (data) phases.
    pub data_busy: Time,
    /// Number of grants.
    pub grants: u64,
}

impl BusStats {
    /// Bus utilisation over a window of length `window`.
    #[must_use]
    pub fn utilization(&self, window: Time) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            (self.busy.as_ps() as f64 / window.as_ps() as f64).min(1.0)
        }
    }
}

/// Which kind of phase a grant pays for (metrics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Address/request/invalidation phase.
    Address,
    /// Data response phase.
    Data,
}

/// The FIFO-arbitrated exclusive bus resource.
///
/// Callers ask for the bus at a given simulated time; the bus grants the
/// earliest slot at or after that time, back to back with earlier grants.
/// This models a pipelined central arbiter with FIFO fairness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    cfg: BusConfig,
    free_at: Time,
    stats: BusStats,
}

impl Bus {
    /// Creates an idle bus.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: BusConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self { cfg, free_at: Time::ZERO, stats: BusStats::default() })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> BusConfig {
        self.cfg
    }

    /// Earliest time a new grant could start.
    #[must_use]
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Occupancy counters.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Reserves the bus for `cycles` bus cycles at the earliest opportunity
    /// at or after `now`; returns `(start, end)` of the grant.
    pub fn acquire(&mut self, now: Time, cycles: u64) -> (Time, Time) {
        self.acquire_kind(now, cycles, PhaseKind::Address)
    }

    /// Like [`Bus::acquire`] with an explicit phase kind for the
    /// address/data utilisation split.
    pub fn acquire_kind(&mut self, now: Time, cycles: u64, kind: PhaseKind) -> (Time, Time) {
        let start = self.free_at.max(now);
        let dur = self.cfg.cycles_time(cycles);
        let end = start + dur;
        self.free_at = end;
        self.stats.busy += dur;
        self.stats.grants += 1;
        match kind {
            PhaseKind::Address => self.stats.address_busy += dur,
            PhaseKind::Data => self.stats.data_busy += dur,
        }
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cycle_counts() {
        let cfg = BusConfig::bus_50mhz(8);
        assert_eq!(cfg.data_cycles(), 2);
        assert_eq!(cfg.response_cycles(), 4);
        assert_eq!(cfg.min_remote_miss_cycles(), 6);
        // 6 cycles at 50 MHz = 120 ns of pure bus time per remote miss.
        assert_eq!(cfg.cycles_time(cfg.min_remote_miss_cycles()), Time::from_ns(120));
    }

    #[test]
    fn grants_are_fifo_back_to_back() {
        let mut bus = Bus::new(BusConfig::bus_100mhz(4)).unwrap();
        let (s1, e1) = bus.acquire(Time::from_ns(5), 2);
        assert_eq!(s1, Time::from_ns(5));
        assert_eq!(e1, Time::from_ns(25));
        // A request arriving earlier than the bus frees queues behind.
        let (s2, e2) = bus.acquire(Time::from_ns(10), 4);
        assert_eq!(s2, Time::from_ns(25));
        assert_eq!(e2, Time::from_ns(65));
        // An idle gap is preserved.
        let (s3, _) = bus.acquire(Time::from_ns(100), 1);
        assert_eq!(s3, Time::from_ns(100));
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = Bus::new(BusConfig::bus_100mhz(4)).unwrap();
        bus.acquire_kind(Time::ZERO, 2, PhaseKind::Address);
        bus.acquire_kind(Time::ZERO, 4, PhaseKind::Data);
        let st = bus.stats();
        assert_eq!(st.grants, 2);
        assert_eq!(st.busy, Time::from_ns(60));
        assert_eq!(st.address_busy, Time::from_ns(20));
        assert_eq!(st.data_busy, Time::from_ns(40));
        assert!((st.utilization(Time::from_ns(120)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(BusConfig::bus_50mhz(8).validate().is_ok());
        assert!(BusConfig { nodes: 1, ..BusConfig::bus_50mhz(8) }.validate().is_err());
        assert!(BusConfig { width_bytes: 3, ..BusConfig::bus_50mhz(8) }.validate().is_err());
        assert!(BusConfig { clock_period: Time::ZERO, ..BusConfig::bus_50mhz(8) }
            .validate()
            .is_err());
    }

    #[test]
    fn larger_blocks_need_more_beats() {
        let cfg = BusConfig { block_bytes: 64, ..BusConfig::bus_50mhz(8) };
        assert_eq!(cfg.data_cycles(), 8);
        assert_eq!(cfg.min_remote_miss_cycles(), 12);
    }
}
