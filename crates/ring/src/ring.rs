use core::fmt;

use serde::{Deserialize, Serialize};

use ringsim_types::{NodeId, Time};

use crate::config::RingConfig;
use crate::layout::{RingLayout, SlotId, SlotKind};

/// Why a transmission attempt into a slot was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertError {
    /// The slot already carries a message.
    Occupied,
    /// The slot header is not at this node's interface this cycle.
    NotAtNode,
    /// The node removed a message from this slot this very cycle and the
    /// anti-starvation rule forbids immediate reuse.
    JustFreed,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InsertError::Occupied => "slot occupied",
            InsertError::NotAtNode => "slot header not at node",
            InsertError::JustFreed => "slot just freed by this node (anti-starvation)",
        })
    }
}

impl std::error::Error for InsertError {}

/// Aggregate ring activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingStats {
    /// Ring cycles simulated.
    pub cycles: u64,
    /// Messages inserted into slots.
    pub inserted: u64,
    /// Messages removed from slots.
    pub removed: u64,
    /// Sum over cycles of occupied slots (all kinds).
    pub occupied_slot_cycles: u64,
    /// Sum over cycles of occupied probe slots.
    pub occupied_probe_cycles: u64,
    /// Sum over cycles of occupied block slots.
    pub occupied_block_cycles: u64,
}

impl RingStats {
    /// Average fraction of occupied slots — the paper's "ring slot
    /// utilization".
    #[must_use]
    pub fn slot_utilization(&self, total_slots: usize) -> f64 {
        if self.cycles == 0 || total_slots == 0 {
            0.0
        } else {
            self.occupied_slot_cycles as f64 / (self.cycles as f64 * total_slots as f64)
        }
    }

    /// Average fraction of occupied probe slots.
    #[must_use]
    pub fn probe_utilization(&self, probe_slots: usize) -> f64 {
        if self.cycles == 0 || probe_slots == 0 {
            0.0
        } else {
            self.occupied_probe_cycles as f64 / (self.cycles as f64 * probe_slots as f64)
        }
    }

    /// Average fraction of occupied block slots.
    #[must_use]
    pub fn block_utilization(&self, block_slots: usize) -> f64 {
        if self.cycles == 0 || block_slots == 0 {
            0.0
        } else {
            self.occupied_block_cycles as f64 / (self.cycles as f64 * block_slots as f64)
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SlotState<M> {
    msg: Option<M>,
    /// Set when a node removed a message this cycle; blocks immediate reuse
    /// by the same node when the anti-starvation rule is active.
    just_freed: Option<(u64, NodeId)>,
}

impl<M> Default for SlotState<M> {
    fn default() -> Self {
        Self { msg: None, just_freed: None }
    }
}

/// The cycle-stepped slotted ring.
///
/// Driving protocol (per ring cycle):
///
/// 1. for each node, call [`SlotRing::arrival`]; if a slot header is at the
///    node, inspect it with [`SlotRing::peek`], optionally
///    [`SlotRing::remove`] the message, snoop it, or
///    [`SlotRing::try_insert`] a pending message into an empty slot;
/// 2. call [`SlotRing::advance`] to move every slot one stage downstream.
///
/// The ring records occupancy statistics on every `advance`, which yield the
/// paper's ring-utilisation metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRing<M> {
    cfg: RingConfig,
    layout: RingLayout,
    slots: Vec<SlotState<M>>,
    cycle: u64,
    occupied_probe: usize,
    occupied_block: usize,
    stats: RingStats,
}

impl<M> SlotRing<M> {
    /// Builds an empty ring from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a [`ringsim_types::ConfigError`] when the configuration is
    /// invalid.
    pub fn new(cfg: RingConfig) -> Result<Self, ringsim_types::ConfigError> {
        let layout = cfg.layout()?;
        let slots = (0..layout.slot_count()).map(|_| SlotState::default()).collect();
        Ok(Self {
            cfg,
            layout,
            slots,
            cycle: 0,
            occupied_probe: 0,
            occupied_block: 0,
            stats: RingStats::default(),
        })
    }

    /// The ring geometry.
    #[must_use]
    pub fn layout(&self) -> &RingLayout {
        &self.layout
    }

    /// The configuration the ring was built from.
    #[must_use]
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Current ring cycle (number of `advance` calls so far).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current simulated time (`cycle × clock period`).
    #[must_use]
    pub fn now(&self) -> Time {
        self.cfg.clock_period * self.cycle
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Messages currently circulating.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.occupied_probe + self.occupied_block
    }

    /// Probe messages currently circulating (instantaneous occupancy, for
    /// utilization gauges).
    #[must_use]
    pub fn in_flight_probe(&self) -> usize {
        self.occupied_probe
    }

    /// Block messages currently circulating (instantaneous occupancy, for
    /// utilization gauges).
    #[must_use]
    pub fn in_flight_block(&self) -> usize {
        self.occupied_block
    }

    /// The kind of slot `id`.
    #[must_use]
    pub fn kind_of(&self, id: SlotId) -> SlotKind {
        self.layout.slot_spec(id).kind
    }

    /// Which slot header (if any) is at node `n`'s interface this cycle.
    #[must_use]
    pub fn arrival(&self, n: NodeId) -> Option<SlotId> {
        self.layout.arrival_at(n, self.cycle)
    }

    /// The message currently in slot `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn peek(&self, id: SlotId) -> Option<&M> {
        self.slots[id.index()].msg.as_ref()
    }

    /// Mutable access to the message in slot `id`, if any — used by snooping
    /// nodes to set the acknowledgment field of a passing probe.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn peek_mut(&mut self, id: SlotId) -> Option<&mut M> {
        self.slots[id.index()].msg.as_mut()
    }

    /// Removes and returns the message in slot `id`; the caller must be the
    /// node at whose interface the slot header currently sits.
    ///
    /// Under the anti-starvation rule the slot cannot be reused by `node`
    /// during this same cycle.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or its header is not at `node` this
    /// cycle — both are protocol bugs in the caller.
    pub fn remove(&mut self, id: SlotId, node: NodeId) -> M {
        assert_eq!(self.arrival(node), Some(id), "slot {id:?} header is not at {node}");
        let slot = &mut self.slots[id.index()];
        let msg = slot.msg.take().expect("removing from empty slot");
        slot.just_freed = Some((self.cycle, node));
        if self.layout.slot_spec(id).kind.is_probe() {
            self.occupied_probe -= 1;
        } else {
            self.occupied_block -= 1;
        }
        self.stats.removed += 1;
        msg
    }

    /// Attempts to claim slot `id` for a message from `node`.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::NotAtNode`] when the slot header is not at
    /// `node`'s interface this cycle, [`InsertError::Occupied`] when the
    /// slot is full, and [`InsertError::JustFreed`] when `node` removed a
    /// message from this slot this cycle and the anti-starvation rule is
    /// active.
    pub fn try_insert(&mut self, id: SlotId, node: NodeId, msg: M) -> Result<(), InsertError> {
        if self.arrival(node) != Some(id) {
            return Err(InsertError::NotAtNode);
        }
        let reuse_ok = self.cfg.reuse_after_remove;
        let slot = &mut self.slots[id.index()];
        if slot.msg.is_some() {
            return Err(InsertError::Occupied);
        }
        if !reuse_ok {
            if let Some((cycle, freer)) = slot.just_freed {
                if cycle == self.cycle && freer == node {
                    return Err(InsertError::JustFreed);
                }
            }
        }
        slot.msg = Some(msg);
        if self.layout.slot_spec(id).kind.is_probe() {
            self.occupied_probe += 1;
        } else {
            self.occupied_block += 1;
        }
        self.stats.inserted += 1;
        Ok(())
    }

    /// Advances every slot one stage downstream and accumulates occupancy
    /// statistics for the cycle that just completed.
    pub fn advance(&mut self) {
        self.stats.cycles += 1;
        self.stats.occupied_probe_cycles += self.occupied_probe as u64;
        self.stats.occupied_block_cycles += self.occupied_block as u64;
        self.stats.occupied_slot_cycles += (self.occupied_probe + self.occupied_block) as u64;
        self.cycle += 1;
    }

    /// Probe-slot count (all parities).
    #[must_use]
    pub fn probe_slots(&self) -> usize {
        self.layout.slot_count() - self.block_slots()
    }

    /// Block-slot count.
    #[must_use]
    pub fn block_slots(&self) -> usize {
        self.layout.slots_of_kind(SlotKind::Block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> SlotRing<u32> {
        SlotRing::new(RingConfig::standard_500mhz(8)).unwrap()
    }

    /// Runs the ring until a slot satisfying `want` arrives at `node`,
    /// returning the slot id. Panics after a full revolution without one.
    fn wait_for(
        r: &mut SlotRing<u32>,
        node: NodeId,
        want: impl Fn(&SlotRing<u32>, SlotId) -> bool,
    ) -> SlotId {
        for _ in 0..=r.layout().stages() {
            if let Some(id) = r.arrival(node) {
                if want(r, id) {
                    return id;
                }
            }
            r.advance();
        }
        panic!("no matching slot within one revolution");
    }

    #[test]
    fn message_travels_to_downstream_node() {
        let mut r = ring();
        let src = NodeId::new(1);
        let dst = NodeId::new(5);
        let id =
            wait_for(&mut r, src, |r, id| r.kind_of(id) == SlotKind::Block && r.peek(id).is_none());
        r.try_insert(id, src, 42).unwrap();
        let sent_at = r.cycle();
        // The message reaches dst exactly stage_distance(src,dst) cycles later.
        let dist = r.layout().stage_distance(src, dst) as u64;
        while r.cycle() < sent_at + dist {
            r.advance();
        }
        assert_eq!(r.arrival(dst), Some(id));
        assert_eq!(r.peek(id), Some(&42));
        assert_eq!(r.remove(id, dst), 42);
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn full_revolution_returns_to_sender() {
        let mut r = ring();
        let src = NodeId::new(3);
        let id = wait_for(&mut r, src, |r, id| r.kind_of(id).is_probe() && r.peek(id).is_none());
        r.try_insert(id, src, 7).unwrap();
        let sent_at = r.cycle();
        let s = r.layout().stages() as u64;
        while r.cycle() < sent_at + s {
            r.advance();
        }
        assert_eq!(r.arrival(src), Some(id));
        assert_eq!(r.remove(id, src), 7);
    }

    #[test]
    fn insert_requires_header_at_node() {
        let mut r = ring();
        let src = NodeId::new(0);
        let id = wait_for(&mut r, src, |r, id| r.peek(id).is_none());
        // Another node cannot claim the slot this cycle.
        let other = NodeId::new(4);
        assert_eq!(r.try_insert(id, other, 1), Err(InsertError::NotAtNode));
        r.try_insert(id, src, 1).unwrap();
    }

    #[test]
    fn occupied_slot_rejects_insert() {
        let mut r = ring();
        let src = NodeId::new(0);
        let id = wait_for(&mut r, src, |r, id| r.peek(id).is_none());
        r.try_insert(id, src, 1).unwrap();
        // Move to the next node that sees this slot: it must not claim it.
        let s = r.layout().stage_distance(src, NodeId::new(1)) as u64;
        let start = r.cycle();
        while r.cycle() < start + s {
            r.advance();
        }
        assert_eq!(r.arrival(NodeId::new(1)), Some(id));
        assert_eq!(r.try_insert(id, NodeId::new(1), 2), Err(InsertError::Occupied));
    }

    #[test]
    fn anti_starvation_blocks_immediate_reuse() {
        let mut r = ring();
        let src = NodeId::new(2);
        let id = wait_for(&mut r, src, |r, id| r.peek(id).is_none());
        r.try_insert(id, src, 9).unwrap();
        // One full revolution later the sender removes it...
        let start = r.cycle();
        let s = r.layout().stages() as u64;
        while r.cycle() < start + s {
            r.advance();
        }
        assert_eq!(r.remove(id, src), 9);
        // ...and may not immediately refill the same slot.
        assert_eq!(r.try_insert(id, src, 10), Err(InsertError::JustFreed));
        // The next node downstream may use it, though.
        let d = r.layout().stage_distance(src, NodeId::new(3)) as u64;
        let start = r.cycle();
        while r.cycle() < start + d {
            r.advance();
        }
        r.try_insert(id, NodeId::new(3), 11).unwrap();
    }

    #[test]
    fn reuse_allowed_when_rule_disabled() {
        let cfg = RingConfig { reuse_after_remove: true, ..RingConfig::standard_500mhz(8) };
        let mut r: SlotRing<u32> = SlotRing::new(cfg).unwrap();
        let src = NodeId::new(2);
        let id = wait_for(&mut r, src, |r, id| r.peek(id).is_none());
        r.try_insert(id, src, 9).unwrap();
        let start = r.cycle();
        let s = r.layout().stages() as u64;
        while r.cycle() < start + s {
            r.advance();
        }
        assert_eq!(r.remove(id, src), 9);
        r.try_insert(id, src, 10).unwrap();
    }

    #[test]
    fn utilization_accounting() {
        let mut r = ring();
        let src = NodeId::new(0);
        let id =
            wait_for(&mut r, src, |r, id| r.kind_of(id) == SlotKind::Block && r.peek(id).is_none());
        let warmup = r.stats().cycles;
        r.try_insert(id, src, 1).unwrap();
        for _ in 0..100 {
            r.advance();
        }
        let st = r.stats();
        assert_eq!(st.cycles, warmup + 100);
        assert_eq!(st.occupied_block_cycles, 100);
        assert_eq!(st.occupied_probe_cycles, 0);
        let util = st.block_utilization(r.block_slots());
        // One of three block slots occupied during the non-warmup cycles.
        assert!(util > 0.0 && util <= 1.0 / 3.0 + 1e-9, "util = {util}");
    }

    #[test]
    fn now_tracks_clock() {
        let mut r = ring();
        for _ in 0..5 {
            r.advance();
        }
        assert_eq!(r.now(), Time::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "not at")]
    fn remove_requires_header_at_node() {
        let mut r = ring();
        let src = NodeId::new(0);
        let id = wait_for(&mut r, src, |r, id| r.peek(id).is_none());
        r.try_insert(id, src, 1).unwrap();
        r.advance();
        let _ = r.remove(id, src);
    }
}
