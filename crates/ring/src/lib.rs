//! The unidirectional slotted ring interconnect (paper §2).
//!
//! A slotted ring divides its circulating pipeline stages into fixed-size
//! message slots grouped into *frames*. The paper's frame holds one probe
//! slot for even-numbered blocks, one probe slot for odd-numbered blocks and
//! one block slot; with 32-bit links and 16-byte cache blocks a frame is 10
//! stages — 20 ns at 500 MHz — which is exactly the snooping inter-arrival
//! constraint of Table 3.
//!
//! The crate is split into:
//!
//! * [`RingConfig`] — physical parameters (link width, clock, slot mix),
//! * [`RingLayout`] — derived geometry: stage counts, slot positions, node
//!   positions, distance and traversal arithmetic,
//! * [`SlotRing`] — the cycle-stepped slot machine that the system simulator
//!   drives: per ring cycle, each node may observe the slot header arriving
//!   at its interface, snoop it, remove it, or claim it for transmission.
//!
//! The ring is generic over the message payload `M`; coherence semantics
//! live in `ringsim-proto`.
//!
//! # Examples
//!
//! ```
//! use ringsim_ring::{RingConfig, SlotRing, SlotKind};
//! use ringsim_types::NodeId;
//!
//! let cfg = RingConfig::standard_500mhz(8);
//! let layout = cfg.layout().unwrap();
//! assert_eq!(layout.stages(), 30);             // 24 node stages padded to 3 frames
//! assert_eq!(layout.round_trip_cycles(), 30);  // 60 ns at 2 ns/cycle
//!
//! let mut ring: SlotRing<&'static str> = SlotRing::new(cfg).unwrap();
//! // Find the first cycle at which a probe slot header reaches node 0 and use it.
//! let node = NodeId::new(0);
//! loop {
//!     if let Some(slot) = ring.arrival(node) {
//!         if ring.kind_of(slot) != SlotKind::Block && ring.try_insert(slot, node, "probe").is_ok() {
//!             break;
//!         }
//!     }
//!     ring.advance();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod hierarchy;
mod layout;
mod ring;
pub mod topology;

pub use config::{Parity, RingConfig};
pub use hierarchy::RingHierarchy;
pub use layout::{RingLayout, SlotId, SlotKind, SlotSpec};
pub use ring::{InsertError, RingStats, SlotRing};
pub use topology::RingTopology;
