//! Two-level hierarchies of slotted rings (paper §5 related work: Hector
//! and the KSR1 connect clusters of unidirectional slotted rings with a
//! global ring).
//!
//! A [`RingHierarchy`] is `k` local rings of `m` processing nodes each; one
//! extra interface position per local ring hosts the *inter-ring interface*
//! (IRI), which also occupies one position on the global ring. It is the
//! two-level special case of the recursive [`RingTopology`] tree and is
//! kept as a convenience facade: the hierarchical analytic model and the
//! hierarchy experiment read stage counts per level, round-trip times and
//! transaction path lengths for intra- and inter-ring coherence
//! transactions under KSR1-style directory filters at the IRIs (a probe
//! circulates its local ring; only unresolved probes ascend). Deeper trees
//! and flat baselines are built directly through [`RingTopology`].

use serde::{Deserialize, Serialize};

use ringsim_types::{ConfigError, NodeId, Time};

use crate::config::RingConfig;
use crate::layout::RingLayout;
use crate::topology::RingTopology;

/// Configuration of a two-level ring hierarchy.
///
/// # Examples
///
/// ```
/// use ringsim_ring::RingHierarchy;
///
/// // 64 processors as 8 local rings of 8 nodes.
/// let h = RingHierarchy::new(8, 8).unwrap();
/// assert_eq!(h.total_nodes(), 64);
/// // A local round trip is much shorter than the flat 64-node ring's.
/// assert!(h.local_round_trip() < h.flat_equivalent_round_trip());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingHierarchy {
    topo: RingTopology,
}

impl RingHierarchy {
    /// Builds a hierarchy of `local_rings` rings with `nodes_per_ring`
    /// processors each, using the paper's standard 500 MHz 32-bit link
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when either dimension is smaller than 2 or
    /// the total exceeds 64 processors (the workspace-wide sharer-mask
    /// limit).
    pub fn new(local_rings: usize, nodes_per_ring: usize) -> Result<Self, ConfigError> {
        Self::with_base(local_rings, nodes_per_ring, RingConfig::standard_500mhz(2))
    }

    /// Builds the hierarchy with custom link parameters (node counts in
    /// `base` are ignored).
    ///
    /// # Errors
    ///
    /// See [`RingHierarchy::new`].
    pub fn with_base(
        local_rings: usize,
        nodes_per_ring: usize,
        base: RingConfig,
    ) -> Result<Self, ConfigError> {
        if local_rings < 2 {
            return Err(ConfigError::new("local_rings", "need at least 2 local rings"));
        }
        if nodes_per_ring < 2 {
            return Err(ConfigError::new("nodes_per_ring", "need at least 2 nodes per ring"));
        }
        let topo = RingTopology::from_shape(&[nodes_per_ring, local_rings], base)?;
        Ok(Self { topo })
    }

    /// The underlying topology tree (always two levels).
    #[must_use]
    pub fn topology(&self) -> &RingTopology {
        &self.topo
    }

    /// Consumes the facade, yielding the topology tree.
    #[must_use]
    pub fn into_topology(self) -> RingTopology {
        self.topo
    }

    /// Number of local rings.
    #[must_use]
    pub fn local_rings(&self) -> usize {
        self.topo.leaf_rings()
    }

    /// Processors per local ring.
    #[must_use]
    pub fn nodes_per_ring(&self) -> usize {
        self.topo.leaf_procs()
    }

    /// Total processors.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.topo.total_nodes()
    }

    /// The link/slot parameters the hierarchy was built from.
    #[must_use]
    pub fn base(&self) -> &RingConfig {
        self.topo.base()
    }

    /// The local-ring geometry (processors + IRI).
    #[must_use]
    pub fn local_layout(&self) -> &RingLayout {
        self.topo.layout(0)
    }

    /// The global-ring geometry (one position per IRI).
    #[must_use]
    pub fn global_layout(&self) -> &RingLayout {
        self.topo.layout(1)
    }

    /// Which local ring hosts `node` (nodes are numbered ring-major).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn ring_of(&self, node: NodeId) -> usize {
        self.topo.ring_of(node)
    }

    /// Whether two nodes share a local ring.
    #[must_use]
    pub fn same_ring(&self, a: NodeId, b: NodeId) -> bool {
        self.topo.same_ring(a, b)
    }

    /// Round-trip time of one local ring.
    #[must_use]
    pub fn local_round_trip(&self) -> Time {
        self.topo.round_trip(0)
    }

    /// Round-trip time of the global ring.
    #[must_use]
    pub fn global_round_trip(&self) -> Time {
        self.topo.round_trip(1)
    }

    /// Round-trip time of the equivalent flat ring with the same total
    /// processor count (the baseline the hierarchy competes against).
    #[must_use]
    pub fn flat_equivalent_round_trip(&self) -> Time {
        self.topo.flat_equivalent_round_trip()
    }

    /// Contention-free time for a snooping probe to resolve an
    /// **intra-ring** transaction: one local revolution.
    #[must_use]
    pub fn intra_ring_probe_time(&self) -> Time {
        self.topo.intra_ring_probe_time()
    }

    /// Contention-free time for a probe to resolve an **inter-ring**
    /// transaction under KSR1-style IRI filters: a full local revolution
    /// (which delivers it to the IRI and back), a full global revolution
    /// (snooped by every IRI), and a full revolution of the responding
    /// ring.
    #[must_use]
    pub fn inter_ring_probe_time(&self) -> Time {
        self.topo.inter_ring_probe_time()
    }

    /// Expected contention-free travel time of a data reply for an
    /// inter-ring transaction: half of each traversed ring.
    #[must_use]
    pub fn inter_ring_reply_time(&self) -> Time {
        self.topo.inter_ring_reply_time()
    }

    /// Expected contention-free travel time of a data reply that stays
    /// within one ring: half a local revolution.
    #[must_use]
    pub fn intra_ring_reply_time(&self) -> Time {
        self.topo.intra_ring_reply_time()
    }

    /// Probability that a uniformly placed home lands in the requester's
    /// local ring.
    #[must_use]
    pub fn uniform_locality(&self) -> f64 {
        self.topo.uniform_locality()
    }
}

impl From<RingHierarchy> for RingTopology {
    fn from(h: RingHierarchy) -> Self {
        h.topo
    }
}

impl TryFrom<RingTopology> for RingHierarchy {
    type Error = ConfigError;

    fn try_from(topo: RingTopology) -> Result<Self, Self::Error> {
        if topo.levels() != 2 {
            return Err(ConfigError::new("levels", "a RingHierarchy is exactly two levels"));
        }
        Ok(Self { topo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_8x8() {
        let h = RingHierarchy::new(8, 8).unwrap();
        assert_eq!(h.total_nodes(), 64);
        // Local rings: 9 interfaces -> 27 stages -> 30 (3 frames).
        assert_eq!(h.local_layout().stages(), 30);
        // Global ring: 8 IRIs -> 24 stages -> 30.
        assert_eq!(h.global_layout().stages(), 30);
        // Flat 64-node ring: 200 stages.
        assert_eq!(h.flat_equivalent_round_trip(), Time::from_ns(400));
        assert_eq!(h.local_round_trip(), Time::from_ns(60));
        assert_eq!(h.inter_ring_probe_time(), Time::from_ns(180));
    }

    #[test]
    fn ring_membership() {
        let h = RingHierarchy::new(4, 4).unwrap();
        assert_eq!(h.ring_of(NodeId::new(0)), 0);
        assert_eq!(h.ring_of(NodeId::new(3)), 0);
        assert_eq!(h.ring_of(NodeId::new(4)), 1);
        assert_eq!(h.ring_of(NodeId::new(15)), 3);
        assert!(h.same_ring(NodeId::new(5), NodeId::new(6)));
        assert!(!h.same_ring(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn intra_beats_flat_inter_beats_nothing() {
        // The whole point of the hierarchy: local transactions are much
        // faster than on the flat ring; even remote ones can be faster
        // because three small revolutions can beat one big one.
        let h = RingHierarchy::new(8, 8).unwrap();
        assert!(h.intra_ring_probe_time() < h.flat_equivalent_round_trip());
        assert!(h.inter_ring_probe_time() < h.flat_equivalent_round_trip());
    }

    #[test]
    fn validation() {
        assert!(RingHierarchy::new(1, 8).is_err());
        assert!(RingHierarchy::new(8, 1).is_err());
        assert!(RingHierarchy::new(9, 8).is_err()); // 72 > 64
        assert!(RingHierarchy::new(2, 2).is_ok());
    }

    #[test]
    fn uniform_locality_is_one_over_rings() {
        let h = RingHierarchy::new(4, 16).unwrap();
        assert!((h.uniform_locality() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn facade_round_trips_through_topology() {
        let h = RingHierarchy::new(4, 8).unwrap();
        let topo = h.clone().into_topology();
        assert_eq!(topo.shape(), &[8, 4]);
        let back = RingHierarchy::try_from(topo).unwrap();
        assert_eq!(back, h);
        // Deeper trees do not squeeze into the facade.
        let three = RingTopology::three_level(2, 2, 2).unwrap();
        assert!(RingHierarchy::try_from(three).is_err());
    }
}
