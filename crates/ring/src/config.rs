use serde::{Deserialize, Serialize};

use ringsim_types::{ConfigError, Time};

use crate::layout::RingLayout;

/// Block-address parity class served by a probe slot.
///
/// With the standard two-probe frame, one probe slot carries requests for
/// even-numbered blocks and the other for odd-numbered blocks, so a 2-way
/// interleaved dual snooping directory sees at most one probe per bank per
/// frame (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parity {
    /// Serves even-numbered blocks only.
    Even,
    /// Serves odd-numbered blocks only.
    Odd,
    /// Serves any block (used when a frame carries a single probe slot).
    Any,
}

impl Parity {
    /// Whether a probe for a block with the given evenness may use a slot of
    /// this parity class.
    #[must_use]
    pub const fn accepts(self, block_is_even: bool) -> bool {
        match self {
            Parity::Even => block_is_even,
            Parity::Odd => !block_is_even,
            Parity::Any => true,
        }
    }
}

/// Physical and structural parameters of the slotted ring.
///
/// # Examples
///
/// ```
/// use ringsim_ring::RingConfig;
/// use ringsim_types::Time;
///
/// let cfg = RingConfig::standard_500mhz(16);
/// assert_eq!(cfg.clock_period, Time::from_ns(2));
/// assert_eq!(cfg.probe_stages(), 2);
/// assert_eq!(cfg.block_slot_stages(), 6);
/// assert_eq!(cfg.frame_stages(), 10);
/// assert_eq!(cfg.snoop_interarrival(), Time::from_ns(20)); // Table 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Number of nodes on the ring.
    pub nodes: usize,
    /// Ring clock period (2 ns for the paper's 500 MHz links).
    pub clock_period: Time,
    /// Link width in bytes (4 for the paper's 32-bit rings).
    pub link_bytes: u64,
    /// Cache block size in bytes.
    pub block_bytes: u64,
    /// Size of a probe message and of a block-message header, in bytes.
    pub header_bytes: u64,
    /// Pipeline stages contributed by each node interface (3 minimum in the
    /// paper).
    pub stages_per_node: usize,
    /// Probe slots per frame (2 in the paper: one even, one odd).
    pub probe_slots_per_frame: usize,
    /// Block slots per frame (1 in the paper).
    pub block_slots_per_frame: usize,
    /// When `false` (the default and the paper's anti-starvation rule), a
    /// node that removes a message from a slot may not immediately reuse
    /// that slot for its own transmission.
    pub reuse_after_remove: bool,
}

impl RingConfig {
    /// The paper's baseline ring: 500 MHz (2 ns), 32-bit links, 16-byte
    /// blocks, 8-byte probes/headers, 3 stages per node, 2 probe slots + 1
    /// block slot per frame, anti-starvation rule on.
    #[must_use]
    pub fn standard_500mhz(nodes: usize) -> Self {
        Self {
            nodes,
            clock_period: Time::from_ns(2),
            link_bytes: 4,
            block_bytes: 16,
            header_bytes: 8,
            stages_per_node: 3,
            probe_slots_per_frame: 2,
            block_slots_per_frame: 1,
            reuse_after_remove: false,
        }
    }

    /// The paper's slower ring variant: identical except clocked at 250 MHz
    /// (4 ns).
    #[must_use]
    pub fn standard_250mhz(nodes: usize) -> Self {
        Self { clock_period: Time::from_ns(4), ..Self::standard_500mhz(nodes) }
    }

    /// A 64-bit-wide 500 MHz ring (paper §4.2 mentions 64-bit parallel
    /// rings whose utilisation never exceeds 50%).
    #[must_use]
    pub fn wide_64bit_500mhz(nodes: usize) -> Self {
        Self { link_bytes: 8, ..Self::standard_500mhz(nodes) }
    }

    /// Stages occupied by one probe slot: ⌈header bytes / link width⌉.
    #[must_use]
    pub fn probe_stages(&self) -> usize {
        (self.header_bytes.div_ceil(self.link_bytes)) as usize
    }

    /// Stages occupied by one block slot: ⌈(header + block) / link width⌉.
    #[must_use]
    pub fn block_slot_stages(&self) -> usize {
        ((self.header_bytes + self.block_bytes).div_ceil(self.link_bytes)) as usize
    }

    /// Stages in one frame.
    #[must_use]
    pub fn frame_stages(&self) -> usize {
        self.probe_slots_per_frame * self.probe_stages()
            + self.block_slots_per_frame * self.block_slot_stages()
    }

    /// Minimum time between probes destined to the same dual-directory bank
    /// (one probe of each parity per frame): the snooping-rate constraint
    /// reproduced in Table 3.
    #[must_use]
    pub fn snoop_interarrival(&self) -> Time {
        self.clock_period * self.frame_stages() as u64
    }

    /// Derives the full ring geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is out of range (fewer
    /// than 2 nodes, zero-width links, no slots, ...).
    pub fn layout(&self) -> Result<RingLayout, ConfigError> {
        self.validate()?;
        Ok(RingLayout::from_config(self))
    }

    /// Validates the configuration without building a layout.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 2 {
            return Err(ConfigError::new("nodes", "need at least 2 nodes"));
        }
        if self.clock_period.is_zero() {
            return Err(ConfigError::new("clock_period", "must be non-zero"));
        }
        if self.link_bytes == 0 || !self.link_bytes.is_power_of_two() {
            return Err(ConfigError::new("link_bytes", "must be a non-zero power of two"));
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block_bytes", "must be a non-zero power of two"));
        }
        if self.header_bytes == 0 {
            return Err(ConfigError::new("header_bytes", "must be non-zero"));
        }
        if self.stages_per_node == 0 {
            return Err(ConfigError::new("stages_per_node", "must be non-zero"));
        }
        if self.probe_slots_per_frame == 0 {
            return Err(ConfigError::new("probe_slots_per_frame", "need at least one probe slot"));
        }
        if self.block_slots_per_frame == 0 {
            return Err(ConfigError::new("block_slots_per_frame", "need at least one block slot"));
        }
        Ok(())
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::standard_500mhz(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_all_entries() {
        // Paper Table 3: probe inter-arrival (ns) for 500 MHz links.
        let cases = [
            // (block bytes, link bytes, expected ns)
            (16, 2, 40),
            (32, 2, 56),
            (64, 2, 88),
            (128, 2, 152),
            (16, 4, 20),
            (32, 4, 28),
            (64, 4, 44),
            (128, 4, 76),
            (16, 8, 10),
            (32, 8, 14),
            (64, 8, 22),
            (128, 8, 38),
        ];
        for (block, link, ns) in cases {
            let cfg = RingConfig {
                block_bytes: block,
                link_bytes: link,
                ..RingConfig::standard_500mhz(16)
            };
            assert_eq!(cfg.snoop_interarrival(), Time::from_ns(ns), "block={block} link={link}");
        }
    }

    #[test]
    fn paper_frame_is_ten_stages() {
        let cfg = RingConfig::standard_500mhz(8);
        assert_eq!(cfg.probe_stages(), 2);
        assert_eq!(cfg.block_slot_stages(), 6);
        assert_eq!(cfg.frame_stages(), 10);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let ok = RingConfig::standard_500mhz(8);
        assert!(ok.validate().is_ok());
        assert!(RingConfig { nodes: 1, ..ok }.validate().is_err());
        assert!(RingConfig { link_bytes: 3, ..ok }.validate().is_err());
        assert!(RingConfig { block_bytes: 0, ..ok }.validate().is_err());
        assert!(RingConfig { stages_per_node: 0, ..ok }.validate().is_err());
        assert!(RingConfig { probe_slots_per_frame: 0, ..ok }.validate().is_err());
        assert!(RingConfig { block_slots_per_frame: 0, ..ok }.validate().is_err());
        assert!(RingConfig { clock_period: Time::ZERO, ..ok }.validate().is_err());
    }

    #[test]
    fn parity_acceptance() {
        assert!(Parity::Even.accepts(true));
        assert!(!Parity::Even.accepts(false));
        assert!(Parity::Odd.accepts(false));
        assert!(!Parity::Odd.accepts(true));
        assert!(Parity::Any.accepts(true) && Parity::Any.accepts(false));
    }

    #[test]
    fn variants_share_structure() {
        let slow = RingConfig::standard_250mhz(8);
        assert_eq!(slow.clock_period, Time::from_ns(4));
        assert_eq!(slow.frame_stages(), 10);
        let wide = RingConfig::wide_64bit_500mhz(8);
        assert_eq!(wide.frame_stages(), 5);
    }
}
